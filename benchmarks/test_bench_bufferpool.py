"""Buffer-pool wall-clock benchmark — warm decoded blocks vs re-decoding.

The buffer pool (:mod:`repro.storage.bufferpool`) promises the same
bit-identical charged costs with or without it; what it buys is
*wall-clock*: a block's rows are materialized and its columns decoded once
per residency instead of once per read. This benchmark measures both
halves of that promise:

* **decode path** — the same batched ``read_blocks_decoded`` + full-column
  access loop is timed cold (no pool: every pass re-materializes rows and
  re-decodes every column) and warm (shared pool: passes after the first
  reuse the pooled decode-once arrays). Acceptance bar: the warm-pool
  path is **≥2× faster**.
* **cross-request sharing** — a :class:`~repro.server.QueryServer` serves
  a repeated five-shape workload; later rounds sample blocks earlier
  rounds admitted, so the server's metrics must report a **nonzero
  cross-request hit ratio**.

Results land in ``BENCH_bufferpool.json`` at the repo root (uploaded as a
CI artifact by the ``bufferpool-bench`` job).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.estimation.aggregates import sum_of
from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import And, cmp
from repro.server.admission import DegradeInfeasible
from repro.server.request import QueryRequest
from repro.server.scheduler import QueryServer
from repro.server.workload import demo_database
from repro import caches
from repro.storage.bufferpool import BufferPool
from repro.storage.heapfile import HeapFile
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile

TUPLES = 40_000
PASSES = 20
SERVER_TUPLES = 4_000
ROUNDS = 4
SEED = 13
REPORT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_bufferpool.json"
)


def build_heap() -> HeapFile:
    schema = Schema.of(
        a=AttributeType.INT,
        b=AttributeType.INT,
        c=AttributeType.INT,
        tag=AttributeType.STR,
    )
    heap = HeapFile("bench", schema)
    heap.load((i, i % 97, i % 11, f"row-{i % 1000:03d}") for i in range(TUPLES))
    return heap


def time_decode_passes(pool: BufferPool | None) -> float:
    """Wall-time PASSES full read+decode sweeps over every block."""
    heap = build_heap()
    charger = CostCharger(MachineProfile.uniform(0.0))
    block_ids = list(range(heap.block_count))
    positions = range(len(heap.schema.attributes))
    if pool is not None:  # warm the pool: the bar is *warm*-pool speed
        rows, batch = heap.read_blocks_decoded(block_ids, charger, pool=pool)
        for position in positions:
            batch.column(position)
    start = time.perf_counter()
    for _ in range(PASSES):
        rows, batch = heap.read_blocks_decoded(block_ids, charger, pool=pool)
        for position in positions:
            batch.column(position)
    elapsed = time.perf_counter() - start
    assert len(rows) == TUPLES
    return elapsed


def server_workload() -> list[QueryRequest]:
    """ROUNDS repeats of five query shapes over the demo database."""
    half = SERVER_TUPLES // 2
    shapes = [
        select(rel("r1"), cmp("a", "<", half)),
        select(rel("r2"), cmp("a", ">", 40)),
        select(rel("r1"), And((cmp("a", "<", half), cmp("a", ">", 10)))),
        rel("r1"),
        intersect(rel("r1"), rel("r2")),
    ]
    aggregates = [None, None, None, sum_of("b"), None]
    requests = []
    for round_no in range(ROUNDS):
        for i, (expr, aggregate) in enumerate(zip(shapes, aggregates)):
            requests.append(
                QueryRequest(
                    expr=expr,
                    quota=3.0,
                    aggregate=aggregate,
                    seed=100 * round_no + i,
                    # Arrivals spaced past the quota: each request runs on
                    # an idle server and really samples (a queued request
                    # would degrade without reading, starving the pool).
                    arrival=float((round_no * len(shapes) + i) * 4),
                    request_id=f"r{round_no}/s{i}",
                )
            )
    return requests


def test_warm_pool_decode_path_speedup_and_server_sharing():
    cold_seconds = time_decode_passes(pool=None)
    warm_seconds = time_decode_passes(pool=BufferPool(capacity=8192))
    speedup = (
        cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    )

    caches.get("bufferpool").clear()
    db = demo_database(seed=SEED, tuples=SERVER_TUPLES)
    server = QueryServer(db, policy=DegradeInfeasible(), bufferpool=True)
    outcomes = server.process(server_workload())
    metrics = server.metrics
    ratio = metrics.buffer_hit_ratio

    report = {
        "settings": {
            "tuples": TUPLES,
            "passes": PASSES,
            "server_tuples": SERVER_TUPLES,
            "rounds": ROUNDS,
            "seed": SEED,
        },
        "decode_path": {
            "no_pool_seconds": cold_seconds,
            "warm_pool_seconds": warm_seconds,
            "speedup": speedup,
        },
        "server": {
            "requests": len(outcomes),
            "outcomes": {
                outcome.outcome.value: sum(
                    1 for o in outcomes if o.outcome is outcome.outcome
                )
                for outcome in outcomes
            },
            "buffer_hits": metrics.buffer_hits,
            "buffer_misses": metrics.buffer_misses,
            "buffer_evictions": metrics.buffer_evictions,
            "hit_ratio": ratio,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"  decode path: {cold_seconds*1e3:8.1f} ms cold -> "
        f"{warm_seconds*1e3:7.1f} ms warm ({speedup:.1f}x)"
    )
    print(
        f"  server: {metrics.buffer_hits} hits / {metrics.buffer_misses} "
        f"misses (ratio {ratio:.3f})" if ratio is not None else "  server: no reads"
    )
    print(f"  report: {REPORT_PATH}")

    # Acceptance bar 1: warm-pool decode path is >=2x faster on wall-clock.
    assert speedup >= 2.0, (
        f"warm buffer pool must make the decode path >=2x faster; "
        f"measured {speedup:.2f}x"
    )
    # Acceptance bar 2: requests really share blocks across the stream.
    assert metrics.buffer_hits > 0
    assert ratio is not None and ratio > 0.0, (
        f"expected a nonzero cross-request hit ratio, got {ratio}"
    )
