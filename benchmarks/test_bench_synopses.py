"""Synopsis-catalog benchmark — repeated workload, blocks per answer.

The acceptance experiment for ``repro.synopses``: a workload of query
shapes, each arriving ``REPEATS`` times, is driven to the same
error-constrained answer quality twice —

* **synopses off** — every arrival pays the full staged-sampling price;
* **synopses on** — the first arrival of each shape samples and deposits
  an answer synopsis; later arrivals whose recorded confidence interval
  already meets the target are answered from the catalog at zero block
  reads (the honest CI comes from the recorded sample variance), exactly
  the zero-sampling path ``repro.server`` uses for degraded answers.

Headline claim: for the same confidence target on the repeated workload,
the catalog cuts sampled blocks per answer by at least 1.5x. The measured
arms land in ``BENCH_synopses.json`` at the repo root (CI artifact).
"""

from __future__ import annotations

import json
import pathlib

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro import caches
from repro.relational import cmp, rel
from repro.server import synopsis_degraded_estimate
from repro.timecontrol import ErrorConstrained

TUPLES = 20_000
SHAPES = 5
REPEATS = 6
TARGET = 0.15  # relative halfwidth
CONFIDENCE = 0.95
QUOTA = 30.0
SEED = 7
REPORT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_synopses.json"
)


def make_db() -> Database:
    db = Database(seed=SEED)
    db.create_relation(
        "orders",
        [("id", "int"), ("qty", "int")],
        rows=[(i, (i * 7919) % 200) for i in range(TUPLES)],
    )
    return db


def workload():
    """SHAPES x REPEATS arrivals, round-robin (the repeated-query mix)."""
    shapes = [
        rel("orders").where(cmp("qty", "<", 10 * (s + 1)))
        for s in range(SHAPES)
    ]
    return [shapes[i % SHAPES] for i in range(SHAPES * REPEATS)]


def run_arm(synopses: bool) -> dict:
    caches.get("plans").clear()
    db = make_db()
    options = QueryOptions(
        stopping=ErrorConstrained(
            target_relative_halfwidth=TARGET, confidence=CONFIDENCE
        ),
        synopses=synopses,
    )
    blocks = 0
    answered = 0
    catalog_answers = 0
    for index, expr in enumerate(workload()):
        if synopses:
            recorded = synopsis_degraded_estimate(db, expr)
            if (
                recorded is not None
                and recorded.relative_error_bound(CONFIDENCE) <= TARGET
            ):
                # Zero-sampling answer, honest CI from recorded variance.
                catalog_answers += 1
                answered += 1
                continue
        result = db.estimate(
            expr, quota=QUOTA, seed=SEED + index, options=options
        )
        report = result.report
        assert report.estimate is not None, "arm failed to answer"
        blocks += sum(s.blocks_read for s in report.stages)
        answered += 1
    return {
        "answers": answered,
        "sampled_blocks": blocks,
        "catalog_answers": catalog_answers,
        "blocks_per_answer": blocks / answered,
    }


def test_synopses_cut_blocks_per_answer_on_repeated_workload():
    off = run_arm(synopses=False)
    on = run_arm(synopses=True)

    speedup = off["blocks_per_answer"] / on["blocks_per_answer"]
    report = {
        "settings": {
            "tuples": TUPLES,
            "shapes": SHAPES,
            "repeats": REPEATS,
            "target_relative_halfwidth": TARGET,
            "confidence": CONFIDENCE,
            "quota_seconds": QUOTA,
            "seed": SEED,
        },
        "synopses_off": off,
        "synopses_on": on,
        "blocks_per_answer_ratio": speedup,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"repeated workload, {SHAPES} shapes x {REPEATS} arrivals:")
    print(
        f"  synopses off: {off['sampled_blocks']} blocks, "
        f"{off['blocks_per_answer']:.1f} per answer"
    )
    print(
        f"  synopses on : {on['sampled_blocks']} blocks, "
        f"{on['blocks_per_answer']:.1f} per answer "
        f"({on['catalog_answers']} catalog answers)"
    )
    print(f"  ratio: {speedup:.2f}x  report: {REPORT_PATH}")

    # Both arms answered the whole workload to the same target.
    assert off["answers"] == on["answers"] == SHAPES * REPEATS
    # The catalog really served the repeats...
    assert on["catalog_answers"] >= SHAPES * (REPEATS - 2)
    # ...and the acceptance floor from the issue: >=1.5x fewer blocks.
    assert speedup >= 1.5, (
        f"synopsis catalog must cut blocks per answer by >=1.5x on the "
        f"repeated workload; measured {speedup:.2f}x"
    )
