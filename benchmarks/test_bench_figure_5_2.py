"""Figure 5.2 — time-control performance for the Intersection operator.

Two identical-content 10 000-tuple relations, quota 2.5 s, initial
selectivity 1/max(|r1|,|r2|). Pinned shape: risk falls with d_β; the number
of evaluated blocks falls as the margins grow (the paper's 25.9 → 22.1);
and at large d_β the run terminates for lack of time before a further
full-fulfillment stage (the phenomenon Section 5.B reports at d_β = 72).
"""

from benchmarks.conftest import column, render
from repro.experiments.tables import figure_5_2


def test_figure_5_2_intersection(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: figure_5_2(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    risk = column(table, "risk%")
    blocks = column(table, "blocks")
    stages = column(table, "stages")
    assert risk[-1] <= risk[0], "risk must not grow with d_beta"
    assert risk[-1] < 5.0, "large d_beta nearly eliminates overspending"
    assert blocks[-1] < blocks[0], (
        "per the paper, growing margins shrink the evaluated sample"
    )
    # Section 5.B: at d_beta=72 the time left was not enough for a further
    # stage — stage counts at the top of the sweep stay low.
    assert stages[-1] <= stages[0] + 1.0
