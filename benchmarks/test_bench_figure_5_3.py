"""Figure 5.3 — time-control performance for the Join operator.

Two 10 000-tuple relations whose single-attribute equi-join has ≈70 000
output tuples; initial join selectivity 0.1 as in Section 5.C. Pinned
shape: risk falls to zero with d_β, stages grow, utilization declines
gently as conservatism leaves tail time unused, blocks decline with the
growing overhead (the cross-stage merge cost of the full-fulfillment plan).
"""

from benchmarks.conftest import column, render
from repro.experiments.tables import figure_5_3


def test_figure_5_3_join(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: figure_5_3(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    risk = column(table, "risk%")
    stages = column(table, "stages")
    blocks = column(table, "blocks")
    errors = column(table, "rel.err")
    assert risk[-1] <= risk[0]
    assert risk[-1] < 5.0
    assert stages[-1] > stages[0]
    assert blocks[-1] < blocks[0], "cross-stage merge overhead costs blocks"
    assert max(errors) < 0.5, "join estimates stay in the right ballpark"
