"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artifacts and
prints it next to the published numbers. ``REPRO_BENCH_RUNS`` controls the
independent runs per table cell (the paper uses 200; the default here is 60
so the full suite stays under a couple of minutes — set it to 200 to match
the paper exactly).
"""

from __future__ import annotations

import os

import pytest

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "60"))


@pytest.fixture(scope="session")
def bench_runs() -> int:
    return BENCH_RUNS


def render(table) -> None:
    print()
    print(table.render())


def column(table, name: str) -> list[float]:
    """Extract a numeric column from a rendered experiment table."""
    idx = table.columns.index(name)
    return [float(row[idx]) for row in table.rows]
