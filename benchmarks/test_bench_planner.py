"""Planner benchmark — what predicate pushdown buys under a hard quota.

The optimizer cannot change what a query *means*, so its value under a
time constraint is throughput: cheaper stages let the Figure 3.4 bisection
afford larger sample fractions inside the same quota. This benchmark runs
the canonical pushdown workload — a selective predicate written *above* a
join — with the optimizer on and off, same data, same seeds, same quota,
and measures

* **blocks drawn in-quota** (the sample the estimator actually got),
* **charged cost per block** (how much simulated time each block of
  sample costs end to end),
* the cost model's **predicted cheapest-stage speedup** from
  ``Database.explain``.

Acceptance floor: the optimized arm must draw ≥1.5× the blocks of the
verbatim arm on every seed (measured ratios sit around 2.1–2.5×). A
second scenario pins the qualitative claim: at a quota where the verbatim
plan cannot finish even one stage, the optimized plan returns an answer.
Results land in ``BENCH_planner.json`` (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import pathlib

from repro.core.database import Database
from repro.relational.expression import join, rel, select
from repro.relational.predicate import cmp

ORDERS = 200_000
PARTS = 800
QUOTA = 1_200.0
TIGHT_QUOTA = 300.0
SEEDS = (0, 1, 2, 3, 4)
BLOCKS_FLOOR = 1.5
REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_planner.json"


def build_database() -> Database:
    db = Database(seed=11)
    db.create_relation(
        "orders",
        [("oid", "int"), ("qty", "int"), ("pid", "int")],
        rows=((i, i % 50, i % 40) for i in range(ORDERS)),
    )
    db.create_relation(
        "parts",
        [("part", "int"), ("w", "int")],
        rows=((i, i % 7) for i in range(PARTS)),
    )
    return db


def pushdown_query():
    return select(
        join(rel("orders"), rel("parts"), on=[("pid", "part")]),
        cmp("qty", ">", 44),
    )


def run_arm(db: Database, seed: int, optimize: bool, quota: float) -> dict:
    session = db.open_session(
        pushdown_query(), quota=quota, seed=seed, optimize=optimize
    )
    result = session.run()
    blocks = session.plan.blocks_drawn()
    charged = session.charger.clock.now()
    return {
        "blocks_drawn": blocks,
        "charged_seconds": charged,
        "cost_per_block": charged / blocks if blocks else None,
        "stages": len(result.report.stages),
        "estimate": (
            None if result.estimate is None else result.estimate.value
        ),
        "variance": (
            None if result.estimate is None else result.estimate.variance
        ),
    }


def test_pushdown_buys_blocks_within_fixed_quota():
    db = build_database()
    explanation = db.explain(pushdown_query())
    assert explanation.optimized

    runs = []
    for seed in SEEDS:
        on = run_arm(db, seed, optimize=True, quota=QUOTA)
        off = run_arm(db, seed, optimize=False, quota=QUOTA)
        blocks_ratio = on["blocks_drawn"] / max(off["blocks_drawn"], 1)
        cost_reduction = (
            off["cost_per_block"] / on["cost_per_block"]
            if on["cost_per_block"] and off["cost_per_block"]
            else None
        )
        runs.append(
            {
                "seed": seed,
                "optimized": on,
                "verbatim": off,
                "blocks_ratio": blocks_ratio,
                "cost_per_block_reduction": cost_reduction,
            }
        )

    ratios = [r["blocks_ratio"] for r in runs]
    mean_ratio = sum(ratios) / len(ratios)

    # Tight-quota scenario: verbatim infeasible, optimized answers.
    tight_on = run_arm(db, SEEDS[0], optimize=True, quota=TIGHT_QUOTA)
    tight_off = run_arm(db, SEEDS[0], optimize=False, quota=TIGHT_QUOTA)

    report = {
        "settings": {
            "orders": ORDERS,
            "parts": PARTS,
            "quota": QUOTA,
            "tight_quota": TIGHT_QUOTA,
            "seeds": list(SEEDS),
            "blocks_floor": BLOCKS_FLOOR,
        },
        "predicted_cheapest_stage_speedup": explanation.predicted_speedup,
        "rules_applied": [a.rule for a in explanation.applications],
        "runs": runs,
        "blocks_ratio_mean": mean_ratio,
        "blocks_ratio_min": min(ratios),
        "tight_quota": {"optimized": tight_on, "verbatim": tight_off},
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"  predicted cheapest-stage speedup: "
        f"{explanation.predicted_speedup:.2f}x"
    )
    for r in runs:
        print(
            f"  seed {r['seed']}: {r['verbatim']['blocks_drawn']:5d} -> "
            f"{r['optimized']['blocks_drawn']:5d} blocks "
            f"({r['blocks_ratio']:.2f}x); cost/block reduction "
            f"{r['cost_per_block_reduction']:.2f}x"
        )
    print(
        f"  mean blocks ratio {mean_ratio:.2f}x (floor {BLOCKS_FLOOR:g}x); "
        f"tight quota: verbatim estimate={tight_off['estimate']}, "
        f"optimized estimate={tight_on['estimate']}"
    )

    # The acceptance floor — every seed, not just the mean.
    assert min(ratios) >= BLOCKS_FLOOR
    assert mean_ratio >= BLOCKS_FLOOR
    assert explanation.predicted_speedup > 1.0
    # Same query semantics: both arms estimate the same quantity when they
    # produce an answer at all (full equality is property-tested).
    assert tight_off["estimate"] is None  # verbatim can't afford stage 1
    assert tight_on["estimate"] is not None
