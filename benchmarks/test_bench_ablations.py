"""Ablation benches A1–A4 and A6–A9 — design decisions and substitutions.

Each bench regenerates one comparison table (see DESIGN.md §4) and pins the
qualitative conclusion the paper argues for in prose.
"""

from benchmarks.conftest import render
from repro.experiments.ablations import (
    ablation_adaptive_cost,
    ablation_fulfillment,
    ablation_memory_resident,
    ablation_selectivity_sources,
    ablation_stopping,
    ablation_strategies,
    ablation_variance_formula,
    ablation_zero_fix,
)


def test_ablation_a1_strategies(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: ablation_strategies(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    rows = {r[0]: r for r in table.rows}
    risk = {k: float(v[2]) for k, v in rows.items()}
    # Statistical strategies with margins beat their own zero-margin
    # variants on risk.
    assert risk["one-at-a-time d_b=24"] <= risk["one-at-a-time d_b=0"]
    # Single-Interval's reservation only has covariance data to work with
    # from stage 3 on, so allow small-sample noise around the comparison.
    assert risk["single-interval d_a=2"] <= risk["single-interval d_a=0"] + 5.0
    # Both statistical strategies beat the aggressive heuristic on risk.
    assert risk["one-at-a-time d_b=24"] < risk["heuristic g=0.9"]
    assert risk["single-interval d_a=2"] < risk["heuristic g=0.9"]


def test_ablation_a2_fulfillment(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: ablation_fulfillment(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    rows = {r[0]: r for r in table.rows}
    # "The full fulfillment approach has the advantage of making the most
    # use of the sampled data" (Section 4): more points per drawn block —
    # visible as equal-or-better estimate error at similar block budgets,
    # and the partial plan squeezing in at least as many stages.
    assert float(rows["partial"][1]) >= float(rows["full"][1])  # stages


def test_ablation_a3_adaptive_cost(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: ablation_adaptive_cost(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    rows = {r[0]: r for r in table.rows}
    blocks_adaptive = float(rows["adaptive"][5])
    blocks_fixed = float(rows["fixed-form"][5])
    # Frozen worst-case priors oversize the safety margins: the adaptive
    # model evaluates more of the sample in the same quota (Section 4's
    # motivation for adaptive formulas).
    assert blocks_adaptive > blocks_fixed


def test_ablation_a4_variance(benchmark):
    table = benchmark.pedantic(
        lambda: ablation_variance_formula(samples=300, blocks_per_draw=20),
        rounds=1,
        iterations=1,
    )
    render(table)
    rows = {r[0]: r for r in table.rows}
    assert float(rows["clustered"][4]) < 0.5
    assert 0.5 < float(rows["random"][4]) < 1.5


def test_ablation_a7_selectivity_sources(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: ablation_selectivity_sources(runs=bench_runs),
        rounds=1,
        iterations=1,
    )
    render(table)
    rows = {r[0]: r for r in table.rows}
    # Hybrid's informed stage-1 sizing needs no extra probing stages
    # relative to the run-time maximum-selectivity start.
    assert float(rows["hybrid"][1]) <= float(rows["runtime"][1])
    # Pure prestored pins selectivities and never refines: mis-sized stages
    # evaluate fewer blocks and yield a worse estimate than the hybrid —
    # the inflexibility that made the paper reject the prestored approach.
    assert float(rows["prestored"][5]) < float(rows["hybrid"][5])
    assert float(rows["prestored"][6]) >= float(rows["hybrid"][6])


def test_ablation_a6_stopping(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: ablation_stopping(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    rows = {r[0]: r for r in table.rows}
    # The error-constrained criterion stops before the quota is exhausted:
    # lower utilization and no more risk than the pure deadline criteria.
    assert float(rows["error<=35% @95"][4]) < float(rows["hard deadline"][4])
    assert float(rows["error<=35% @95"][2]) <= float(rows["hard deadline"][2])


def test_ablation_a8_memory_resident(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: ablation_memory_resident(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    rows = {r[0]: r for r in table.rows}
    # Section 4's prediction: with sample processing in main memory, the
    # same quota buys a larger evaluated sample (and no extra risk).
    assert float(rows["main-memory"][5]) > float(rows["disk"][5])
    assert float(rows["main-memory"][2]) <= float(rows["disk"][2]) + 5.0


def test_ablation_a9_zero_fix(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: ablation_zero_fix(runs=bench_runs), rounds=1, iterations=1
    )
    render(table)
    util = [float(r[4]) for r in table.rows]
    risk = [float(r[2]) for r in table.rows]
    # Loosening the bound buys utilization and eventually re-admits risk:
    # the conservative end must not be riskier than the aggressive end.
    assert util[-1] >= util[0]
    assert risk[0] <= risk[-1] + 3.0
