"""Preemption benchmark — stage-granular EDF preemption on vs off.

The acceptance experiment for ``repro.server.preempt``: an open-loop
mixed-deadline stream — a loose intersection query (10s window) arriving
every period with a tight selection (4.5s window) landing half a second
behind it — is served twice on the same simulated clock:

* **preempt on** — ``REPRO_PREEMPT`` behaviour: when the tight request
  arrives, the scheduler checkpoints the loose runner at its next stage
  boundary, serves the tight request inside its own window, then resumes
  the loose run from its banked snapshot with its residual budget;
* **preempt off** — run-to-completion: the tight request queues behind
  the loose runner's whole budget and its deadline expires in the queue.

Every request in both arms gets an answer attempt (``AdmitAll``), so the
deadline hit-ratio differences are pure scheduling. Stages are sized by
``FixedFractionHeuristic`` so boundaries stay frequent (γ of the residual
budget per stage) no matter how the adaptive cost model calibrates — the
preemption point only exists at stage boundaries, which makes boundary
cadence the lever that decides whether a tight window is reachable at all.

The headline claim: preempt-on strictly improves the overall deadline
hit-ratio (floor asserted below) and rescues the tight class outright,
without costing the loose class its answers. Both arms' metrics land in
``BENCH_preempt.json`` at the repo root (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import pathlib
import random

from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import cmp
from repro.server.admission import AdmitAll
from repro.server.request import QueryRequest, RequestOutcome
from repro.server.scheduler import QueryServer
from repro.server.workload import demo_database
from repro.timecontrol.strategies import FixedFractionHeuristic

from .conftest import BENCH_RUNS

TUPLES = 1_000
DB_SEED = 5
WORKLOAD_SEED = 7
PERIOD = 12.0  # seconds between loose arrivals (one pair per period)
LOOSE_QUOTA = 10.0
TIGHT_QUOTA = 4.5
TIGHT_LAG = 0.5  # tight request lands this long after the loose one
PAIRS = max(6, BENCH_RUNS // 8)
REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_preempt.json"

# Asserted floors: the improvement must survive seed jitter with margin.
MIN_HIT_RATIO_GAIN = 0.3
MIN_TIGHT_CLASS_GAIN = 0.5


def mixed_deadline_stream() -> list[QueryRequest]:
    """One loose + one tight request per period, jittered per pair.

    Open-loop: every arrival time is fixed up front, independent of how
    the server is doing — pressure does not politely wait for the runner.
    """
    rng = random.Random(WORKLOAD_SEED)
    requests = []
    for i in range(PAIRS):
        base = PERIOD * i
        requests.append(
            QueryRequest(
                expr=intersect(rel("r1"), rel("r2")),
                quota=LOOSE_QUOTA,
                arrival=base,
                seed=rng.randrange(1, 10_000),
                client_id="loose",
                request_id=f"loose/{i}",
            )
        )
        requests.append(
            QueryRequest(
                expr=select(rel("r1"), cmp("a", "<", rng.randrange(450, 750))),
                quota=TIGHT_QUOTA,
                arrival=base + TIGHT_LAG,
                seed=rng.randrange(1, 10_000),
                client_id="tight",
                request_id=f"tight/{i}",
            )
        )
    return requests


def serve_stream(preempt: bool) -> QueryServer:
    """Serve the identical mixed-deadline stream with preemption on/off."""
    database = demo_database(seed=DB_SEED, tuples=TUPLES)
    server = QueryServer(
        database,
        policy=AdmitAll(),
        preempt=preempt,
        strategy_factory=lambda: FixedFractionHeuristic(),
    )
    server.process(mixed_deadline_stream())
    return server


def class_hit_ratio(outcomes: list[RequestOutcome], client_id: str) -> float:
    mine = [o for o in outcomes if o.request.client_id == client_id]
    return sum(1 for o in mine if o.answered) / len(mine)


def arm_report(server: QueryServer) -> dict:
    return {
        "metrics": server.metrics.as_dict(),
        "hit_ratio_admitted": server.metrics.hit_ratio_admitted,
        "tight_hit_ratio": class_hit_ratio(server.outcomes, "tight"),
        "loose_hit_ratio": class_hit_ratio(server.outcomes, "loose"),
        "simulated_span_seconds": server.clock.now(),
    }


def test_preemption_improves_deadline_hit_ratio():
    on = serve_stream(preempt=True)
    off = serve_stream(preempt=False)

    hit_on = on.metrics.hit_ratio_admitted
    hit_off = off.metrics.hit_ratio_admitted
    tight_on = class_hit_ratio(on.outcomes, "tight")
    tight_off = class_hit_ratio(off.outcomes, "tight")
    loose_on = class_hit_ratio(on.outcomes, "loose")
    loose_off = class_hit_ratio(off.outcomes, "loose")

    report = {
        "settings": {
            "pairs": PAIRS,
            "period_seconds": PERIOD,
            "loose_quota_seconds": LOOSE_QUOTA,
            "tight_quota_seconds": TIGHT_QUOTA,
            "tight_lag_seconds": TIGHT_LAG,
            "tuples": TUPLES,
            "db_seed": DB_SEED,
            "workload_seed": WORKLOAD_SEED,
            "strategy": FixedFractionHeuristic().describe(),
            "min_hit_ratio_gain": MIN_HIT_RATIO_GAIN,
            "min_tight_class_gain": MIN_TIGHT_CLASS_GAIN,
        },
        "preempt_on": arm_report(on),
        "preempt_off": arm_report(off),
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"{PAIRS} loose/tight pairs, period {PERIOD:g}s:")
    print(
        f"  preempt on : hit-ratio {hit_on:.3f} "
        f"(tight {tight_on:.3f}, loose {loose_on:.3f}), "
        f"{on.metrics.preempted} preempted / {on.metrics.resumed} resumed"
    )
    print(
        f"  preempt off: hit-ratio {hit_off:.3f} "
        f"(tight {tight_off:.3f}, loose {loose_off:.3f})"
    )
    print(f"  report: {REPORT_PATH}")

    # The mechanism really fired: this is a preemption benchmark, not a
    # lucky schedule.
    assert on.metrics.preempted > 0
    assert on.metrics.resumed == on.metrics.preempted
    assert off.metrics.preempted == 0
    # The acceptance bar: preemption buys a real hit-ratio improvement...
    assert hit_on is not None and hit_off is not None
    assert hit_on - hit_off >= MIN_HIT_RATIO_GAIN, (
        f"preempt-on must beat run-to-completion by >= {MIN_HIT_RATIO_GAIN}; "
        f"measured on {hit_on:.3f} vs off {hit_off:.3f}"
    )
    # ...concentrated where it should be: the tight class is rescued...
    assert tight_on - tight_off >= MIN_TIGHT_CLASS_GAIN, (
        f"tight-deadline class must gain >= {MIN_TIGHT_CLASS_GAIN}; "
        f"measured on {tight_on:.3f} vs off {tight_off:.3f}"
    )
    # ...without sacrificing the loose class it suspends.
    assert loose_on >= loose_off
    # Every request ended in a typed outcome in both arms.
    assert on.metrics.completed == 2 * PAIRS
    assert off.metrics.completed == 2 * PAIRS
