"""Serving-layer overload benchmark — admission control on vs off.

The acceptance experiment for ``repro.server``: one Poisson request stream
arriving at ≥2× the service capacity (on the simulated clock, so the run is
deterministic and hardware-independent) is served twice —

* **admission on** — ``RejectInfeasible``: infeasible work is turned away
  at the door and doomed queued work is shed, so every admitted request
  still has a budget that covers at least one useful stage;
* **admission off** — ``AdmitAll``: the uncontrolled baseline burns server
  time on requests whose budgets evaporated in the queue.

The headline claim: with admission on, the deadline hit-ratio among
*admitted* requests stays ≥ 0.95, while the uncontrolled baseline measures
strictly worse. Both arms' metrics land in ``BENCH_server.json`` at the
repo root (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import pathlib

from repro.server.admission import AdmitAll, RejectInfeasible
from repro.server.scheduler import QueryServer
from repro.server.workload import (
    demo_database,
    open_loop_requests,
    selection_mix,
)

from .conftest import BENCH_RUNS

TUPLES = 2_000
QUOTA = 2.0
OVERLOAD = 2.0  # arrival rate = 2x service capacity
SEED = 7
REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_server.json"


def serve_stream(policy) -> QueryServer:
    """Serve the identical request stream under ``policy``."""
    database = demo_database(seed=SEED, tuples=TUPLES)
    server = QueryServer(database, policy=policy)
    requests = open_loop_requests(
        count=max(BENCH_RUNS, 40),
        quota=QUOTA,
        overload=OVERLOAD,
        make_query=selection_mix(TUPLES),
        tuples=TUPLES,
        seed=SEED,
    )
    server.process(requests)
    return server


def useful_throughput(server: QueryServer) -> float:
    span = server.clock.now()
    answered = sum(1 for o in server.outcomes if o.answered)
    return answered / span if span else 0.0


def test_admission_control_protects_deadlines_under_overload():
    on = serve_stream(RejectInfeasible())
    off = serve_stream(AdmitAll())

    hit_on = on.metrics.hit_ratio_admitted
    hit_off = off.metrics.hit_ratio_admitted

    report = {
        "settings": {
            "requests": max(BENCH_RUNS, 40),
            "quota_seconds": QUOTA,
            "overload": OVERLOAD,
            "tuples": TUPLES,
            "seed": SEED,
            "policy_on": RejectInfeasible().describe(),
            "policy_off": AdmitAll().describe(),
        },
        "admission_on": {
            "metrics": on.metrics.as_dict(),
            "hit_ratio_admitted": hit_on,
            "useful_throughput": useful_throughput(on),
            "simulated_span_seconds": on.clock.now(),
        },
        "admission_off": {
            "metrics": off.metrics.as_dict(),
            "hit_ratio_admitted": hit_off,
            "useful_throughput": useful_throughput(off),
            "simulated_span_seconds": off.clock.now(),
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"overload {OVERLOAD:g}x, {report['settings']['requests']} requests:")
    on_outcomes = {
        o.value: n for o, n in on.metrics.outcomes.items() if n
    }
    print(
        f"  admission on : hit-ratio {hit_on:.3f}, "
        f"{useful_throughput(on):.3f} answers/s, outcomes {on_outcomes}"
    )
    print(
        f"  admission off: hit-ratio {hit_off:.3f}, "
        f"{useful_throughput(off):.3f} answers/s"
    )
    print(f"  report: {REPORT_PATH}")

    # The acceptance bar: admitted requests are protected...
    assert hit_on is not None and hit_on >= 0.95, (
        f"admission on must keep >=95% of admitted requests on deadline; "
        f"measured {hit_on}"
    )
    # ...and the uncontrolled baseline is measurably worse.
    assert hit_off is not None and hit_off < hit_on, (
        f"AdmitAll baseline should miss deadlines under overload: "
        f"off {hit_off} vs on {hit_on}"
    )
    # Every request ended in a typed outcome in both arms.
    assert on.metrics.completed == report["settings"]["requests"]
    assert off.metrics.completed == report["settings"]["requests"]
