"""Parallel experiment runner — wall-clock speedup and bit-identity.

``run_cell(workers=N)`` fans a cell's seed range over forked worker
processes. The contract is twofold: the results must be bit-identical to
the serial path (asserted unconditionally), and on a multi-core machine the
fan-out must actually pay — ≥2× on a 50-run Figure 5.1 cell with 4 workers.
The speedup assertion is hardware-dependent and is skipped when fewer CPU
cores are visible than it needs (cgroup-limited CI runners, single-core
containers).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.runner import run_cell
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.workloads.paper import make_selection_setup


def visible_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def strategy_factory():
    return OneAtATimeInterval(d_beta=24.0)


def signature(result) -> tuple:
    report = result.report
    return (
        None if report.estimate is None else report.estimate.value,
        report.termination,
        len(report.stages),
        report.total_blocks,
    )


def test_parallel_figure_5_1_cell_speedup():
    setup = make_selection_setup(output_tuples=1_000)
    runs = 50

    start = time.perf_counter()
    serial = run_cell(setup, strategy_factory, runs, seed0=10_000, workers=0)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_cell(setup, strategy_factory, runs, seed0=10_000, workers=4)
    parallel_seconds = time.perf_counter() - start

    # Bit-identity holds on any hardware — assert it before timing claims.
    assert [signature(r) for r in parallel] == [signature(r) for r in serial]

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    cores = visible_cores()
    print(
        f"\nrun_cell 50×Figure-5.1: serial {serial_seconds:.2f}s, "
        f"workers=4 {parallel_seconds:.2f}s, speedup {speedup:.2f}× "
        f"({cores} core(s) visible)"
    )
    if cores < 4:
        pytest.skip(
            f"only {cores} CPU core(s) visible; the >=2x speedup target "
            "needs 4 (results verified bit-identical above)"
        )
    assert speedup >= 2.0, (
        f"workers=4 should halve a 50-run cell on {cores} cores; "
        f"got {speedup:.2f}x"
    )
