"""Figure 5.1 — time-control performance for the Selection operator.

Regenerates both published panels (1 000 and 5 000 output tuples) of the
paper's selection table: quota 10 s, d_β ∈ {0, 12, 24, 48, 72}, columns
stages / risk / ovsp / utilization / blocks. The assertions pin the *shape*
the paper reports: risk falls from the d_β = 0 coin flip to (near) zero,
stages and utilization rise, mean overspend stays a small fraction of the
quota.
"""

from benchmarks.conftest import column, render
from repro.experiments.tables import figure_5_1


def test_figure_5_1_selection_1000(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: figure_5_1(runs=bench_runs, output_tuples=1_000),
        rounds=1,
        iterations=1,
    )
    render(table)
    risk = column(table, "risk%")
    stages = column(table, "stages")
    util = column(table, "util%")
    ovsp = column(table, "ovsp")
    assert risk[0] > 25.0, "d_beta=0 should gamble near-even odds"
    assert risk[-1] < risk[0] / 2, "large d_beta must cut the risk"
    assert stages[-1] > stages[0], "conservative selectivities add stages"
    assert util[-1] > util[0], "less waste at larger d_beta"
    # Mean overspend stays a modest fraction of the 10 s quota (individual
    # cells can carry one rare large-noise outlier at small run counts).
    assert max(ovsp) < 0.15 * 10.0, "adaptive formulas keep overspend small"


def test_figure_5_1_selection_5000(benchmark, bench_runs):
    table = benchmark.pedantic(
        lambda: figure_5_1(runs=bench_runs, output_tuples=5_000),
        rounds=1,
        iterations=1,
    )
    render(table)
    risk = column(table, "risk%")
    assert risk[-1] < max(risk[0], 10.0)
    errors = column(table, "rel.err")
    assert max(errors) < 0.3, "selection estimates stay accurate"
