"""Partitioned-scan benchmark — shard workers overlap block-fetch latency.

Parallel shard execution (:mod:`repro.storage.partitioned`) promises the
same bit-identical estimates and charged costs partitions on or off
(invariant 10); what ``workers > 1`` buys is *wall-clock*: each shard's
drawn blocks are materialized by its own worker thread, so per-block
fetch latency is paid once per shard instead of once per block. This
benchmark measures the three halves of that promise:

* **bit-identity** — ``read_sharded`` (serial and parallel) returns the
  same rows and charges the same simulated cost as the reference
  ``read_blocks`` path. Asserted unconditionally, before any timing
  claim, like ``test_bench_parallel_runner.py``.
* **work partitioning** — a partitioned session's ``shard_scan_started``
  events must show every shard doing its share: all K shards appear, the
  per-shard block counts sum to the merged totals, and round-robin keeps
  the spread within one block of fair. Holds on any hardware, 1 CPU
  included: it is a property of the deterministic assignment, not of
  thread scheduling.
* **multi-shard speedup** — the blocks of this repro live in memory, so
  the benchmark emulates per-block device latency in the shard-worker
  fetch (a sleep sized per block, released with the GIL, as a real read
  syscall would be). ``workers=8`` over 8 shards must beat ``workers=1``
  by ≥2×; overlap needs only scheduler concurrency, so that floor holds
  even on 1 CPU. On ≥4 visible cores the bar rises to 4× (the
  core-count-gated claim, mirroring ``test_bench_parallel_runner.py``).

Results land in ``BENCH_partitions.json`` at the repo root (uploaded as
a CI artifact by the ``partitions-bench`` job).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.core.database import Database
from repro.core.options import QueryOptions
from repro.observability import RecordingSink
from repro.relational.expression import rel
from repro.relational.predicate import cmp
from repro.storage.partitioned import PartitionedHeapFile
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile

TUPLES = 24_000
PARTITIONS = 8
WORKERS = 8
PASSES = 5
BLOCK_LATENCY = 0.0005  # emulated device seconds per block fetch
SEED = 17
REPORT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_partitions.json"
)


def visible_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


class EmulatedLatencyHeap(PartitionedHeapFile):
    """A partitioned heap whose shard fetches carry emulated device latency.

    The in-memory blocks make the fetch itself nearly free; real storage
    charges a per-block read latency that a blocked worker thread does not
    hold the GIL through. One sleep per shard group, sized per block,
    models exactly that — serial fetches pay the full sum, K workers pay
    roughly the per-shard share.
    """

    latency = 0.0

    def _fetch_shard(self, shard, shard_blocks, pool):
        if self.latency:
            time.sleep(self.latency * len(shard_blocks))
        return super()._fetch_shard(shard, shard_blocks, pool)


def build_heap(latency: float = 0.0) -> EmulatedLatencyHeap:
    schema = Schema.of(a=AttributeType.INT, b=AttributeType.INT)
    heap = EmulatedLatencyHeap("bench", schema, partitions=PARTITIONS)
    heap.latency = latency
    heap.load((i, i % 97) for i in range(TUPLES))
    return heap


def free_charger() -> CostCharger:
    return CostCharger(MachineProfile.uniform(0.0))


def time_full_scans(heap: EmulatedLatencyHeap, workers: int) -> float:
    """Wall-time PASSES full ``read_sharded`` sweeps over every block."""
    block_ids = list(range(heap.block_count))
    heap.read_sharded(block_ids, free_charger(), workers=workers)  # warm
    start = time.perf_counter()
    for _ in range(PASSES):
        rows, _, _ = heap.read_sharded(block_ids, free_charger(), workers=workers)
    elapsed = (time.perf_counter() - start) / PASSES
    assert len(rows) == TUPLES
    return elapsed


def assert_bit_identity(heap: EmulatedLatencyHeap) -> None:
    """Sharded reads match the reference path element for element."""
    block_ids = list(range(heap.block_count))
    ref_charger = free_charger()
    reference = heap.read_blocks(block_ids, ref_charger)
    for workers in (1, WORKERS):
        charger = free_charger()
        rows, _, stats = heap.read_sharded(block_ids, charger, workers=workers)
        assert rows == reference
        assert charger.total_charged() == ref_charger.total_charged()
        assert sum(s.blocks for s in stats) == len(block_ids)


def partitioned_session_events() -> tuple[dict[int, int], int, int]:
    """Run one partitioned query; tally per-shard blocks from its trace.

    Returns ``(blocks_by_shard, merged_blocks, merged_tuples)`` summed
    over the session's ``shard_scan_started`` / ``shard_merged`` events.
    """
    db = Database(seed=SEED)
    db.create_relation(
        "bench",
        [("a", "int"), ("b", "int")],
        rows=[(i, i % 97) for i in range(TUPLES)],
        partitions=PARTITIONS,
    )
    sink = RecordingSink()
    db.estimate(
        rel("bench").where(cmp("b", "<", 40)),
        quota=120.0,
        seed=1,
        options=QueryOptions(partitions=WORKERS, sink=sink),
    )
    blocks_by_shard: dict[int, int] = {}
    for event in sink.of_kind("shard_scan_started"):
        blocks_by_shard[event.shard] = (
            blocks_by_shard.get(event.shard, 0) + event.blocks
        )
    merged_blocks = sum(e.blocks for e in sink.of_kind("shard_merged"))
    merged_tuples = sum(e.tuples for e in sink.of_kind("shard_merged"))
    return blocks_by_shard, merged_blocks, merged_tuples


def test_sharded_scan_latency_overlap_and_work_partitioning():
    # --- Bit-identity holds on any hardware; assert before timing claims.
    assert_bit_identity(build_heap(latency=0.0))

    # --- Work partitioning: every shard pulls its fair share of blocks.
    # A property of the deterministic assignment — holds even on 1 CPU.
    blocks_by_shard, merged_blocks, merged_tuples = partitioned_session_events()
    assert set(blocks_by_shard) == set(range(PARTITIONS)), (
        f"every shard must appear in shard_scan_started events; "
        f"saw {sorted(blocks_by_shard)}"
    )
    assert sum(blocks_by_shard.values()) == merged_blocks
    spread = max(blocks_by_shard.values()) - min(blocks_by_shard.values())
    fair = merged_blocks / PARTITIONS
    assert spread <= max(2, fair), (
        f"round-robin shards should stay near fair share {fair:.1f} "
        f"blocks; per-shard loads {blocks_by_shard}"
    )

    # --- Speedup: shard workers overlap emulated per-block fetch latency.
    heap = build_heap(latency=BLOCK_LATENCY)
    serial_seconds = time_full_scans(heap, workers=1)
    parallel_seconds = time_full_scans(heap, workers=WORKERS)
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    cores = visible_cores()

    report = {
        "settings": {
            "tuples": TUPLES,
            "blocks": heap.block_count,
            "partitions": PARTITIONS,
            "workers": WORKERS,
            "passes": PASSES,
            "block_latency_seconds": BLOCK_LATENCY,
            "seed": SEED,
            "visible_cores": cores,
        },
        "work_partitioning": {
            "blocks_by_shard": {str(k): v for k, v in sorted(blocks_by_shard.items())},
            "merged_blocks": merged_blocks,
            "merged_tuples": merged_tuples,
        },
        "scan": {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
        },
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(
        f"  sharded scan ({heap.block_count} blocks, {PARTITIONS} shards, "
        f"{BLOCK_LATENCY*1e3:.2f} ms/block latency): "
        f"workers=1 {serial_seconds*1e3:.1f} ms -> "
        f"workers={WORKERS} {parallel_seconds*1e3:.1f} ms "
        f"({speedup:.1f}x, {cores} core(s) visible)"
    )
    print(f"  per-shard blocks: {dict(sorted(blocks_by_shard.items()))}")
    print(f"  report: {REPORT_PATH}")

    # Latency overlap needs only scheduler concurrency, not cores: the
    # sleeping fetch releases the GIL exactly as a real read would.
    assert speedup >= 2.0, (
        f"{WORKERS} shard workers must overlap fetch latency >=2x; "
        f"measured {speedup:.2f}x"
    )
    # On a genuinely multi-core machine the Python-side shard work runs
    # concurrently too; hold the fan-out to a higher bar there.
    if cores >= 4:
        assert speedup >= 4.0, (
            f"workers={WORKERS} should reach >=4x on {cores} cores; "
            f"measured {speedup:.2f}x"
        )
