"""Kernel-layer wall-clock benchmark — vectorized vs row-at-a-time.

The kernel layer (:mod:`repro.kernels`) promises that charged simulated
costs are bit-identical on both execution paths while *wall-clock* time
drops. This benchmark measures exactly that: the same staged plans are
driven stage by stage under ``vectorized=True`` and ``vectorized=False``,
timing each ``advance_stage`` with ``perf_counter``. Three shapes cover the
engine's hot paths —

* **select** — whole-stage predicate masks vs per-row predicate calls;
* **join** — the full-fulfillment new×old merge path, where the reference
  loops one pairwise merge per prior stage while the kernels answer all
  pairs from one consolidated sorted run;
* **intersect** — the same machinery over whole-row keys.

Results (per-stage times, totals, speedups) land in ``BENCH_kernels.json``
at the repo root (uploaded as a CI artifact). The acceptance bars: the
join benchmark must show a ≥3× total speedup, and the vectorized per-stage
time must grow across stages strictly slower than the reference path's
(the stage-count scaling the consolidated run removes).
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core.database import Database
from repro.relational.expression import intersect, join, rel, select
from repro.relational.predicate import And, cmp

TUPLES = 24_000
KEY_SPACE = 3_000
STAGES = 12
FRACTION = 0.04
SEED = 11
REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def build_database() -> Database:
    db = Database(seed=SEED)
    rng = np.random.default_rng(5)
    db.create_relation(
        "big_r",
        [("a", "int"), ("b", "int")],
        rows=(
            (int(rng.integers(0, KEY_SPACE)), int(rng.integers(0, 100)))
            for _ in range(TUPLES)
        ),
    )
    rng = np.random.default_rng(6)
    db.create_relation(
        "big_s",
        [("a", "int"), ("b", "int")],
        rows=(
            (int(rng.integers(0, KEY_SPACE)), int(rng.integers(0, 100)))
            for _ in range(TUPLES)
        ),
    )
    return db


BENCH_EXPRS = {
    "select": select(
        rel("big_r"),
        And((cmp("b", "<", 80), cmp("a", ">", 200), cmp("b", "!=", 40))),
    ),
    "join": join(rel("big_r"), rel("big_s"), on=[("a", "a")]),
    "intersect": intersect(rel("big_r"), rel("big_s")),
}


def time_stages(expr, vectorized: bool) -> dict:
    """Drive one staged plan to STAGES stages; wall-time each advance."""
    session = build_database().open_session(
        expr, quota=1e12, seed=3, vectorized=vectorized
    )
    stage_seconds = []
    for _ in range(STAGES):
        start = time.perf_counter()
        session.plan.advance_stage(FRACTION)
        stage_seconds.append(time.perf_counter() - start)
    return {
        "stage_seconds": stage_seconds,
        "total_seconds": sum(stage_seconds),
        "estimate": session.plan.estimate().value,
        "charged_seconds": session.charger.clock.now(),
    }


def growth_ratio(stage_seconds: list[float]) -> float:
    """Late-stage over early-stage mean advance time (stage-count scaling)."""
    early = sum(stage_seconds[:3]) / 3
    late = sum(stage_seconds[-3:]) / 3
    return late / early if early > 0 else float("inf")


def test_kernels_speed_up_stage_advance_without_changing_charges():
    report = {
        "settings": {
            "tuples": TUPLES,
            "key_space": KEY_SPACE,
            "stages": STAGES,
            "fraction": FRACTION,
            "seed": SEED,
        },
        "benchmarks": {},
    }
    for name, expr in BENCH_EXPRS.items():
        vec = time_stages(expr, vectorized=True)
        ref = time_stages(expr, vectorized=False)
        speedup = (
            ref["total_seconds"] / vec["total_seconds"]
            if vec["total_seconds"] > 0
            else float("inf")
        )
        report["benchmarks"][name] = {
            "vectorized": vec,
            "rowwise": ref,
            "speedup": speedup,
            "growth_vectorized": growth_ratio(vec["stage_seconds"]),
            "growth_rowwise": growth_ratio(ref["stage_seconds"]),
        }
        # The two paths must agree on everything the controller observes.
        assert vec["estimate"] == ref["estimate"]
        assert vec["charged_seconds"] == ref["charged_seconds"]

    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    for name, bench in report["benchmarks"].items():
        print(
            f"  {name:9s}: {bench['rowwise']['total_seconds']*1e3:8.1f} ms row "
            f"-> {bench['vectorized']['total_seconds']*1e3:7.1f} ms vec "
            f"({bench['speedup']:.1f}x); per-stage growth "
            f"{bench['growth_rowwise']:.1f}x -> {bench['growth_vectorized']:.1f}x"
        )
    print(f"  report: {REPORT_PATH}")

    join_bench = report["benchmarks"]["join"]
    # Acceptance bar 1: the join stage-advance path is ≥3x faster in total.
    assert join_bench["speedup"] >= 3.0, (
        f"join kernels must be >=3x faster than the row-at-a-time path; "
        f"measured {join_bench['speedup']:.2f}x"
    )
    # Acceptance bar 2: per-stage time stops scaling with the stage count —
    # the reference's late stages slow down (one pairwise merge per prior
    # run) much more than the consolidated-run path's.
    assert (
        join_bench["growth_vectorized"] < join_bench["growth_rowwise"]
    ), (
        f"vectorized per-stage growth {join_bench['growth_vectorized']:.2f}x "
        f"should stay below the reference's "
        f"{join_bench['growth_rowwise']:.2f}x"
    )
