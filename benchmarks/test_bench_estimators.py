"""A5 — estimator-quality benches.

The paper defers estimator accuracy to [HoOT 88]/[HouO 88]; these benches
reproduce the claims the time-control work rests on: the point-space COUNT
estimator is consistent (error shrinks with the sample fraction) across all
three workloads, and the revised Goodman estimator beats the raw observed
distinct count on a skewed projection.
"""

from benchmarks.conftest import render
from repro.experiments.ablations import (
    ablation_distinct_estimators,
    ablation_estimator_quality,
)


def test_estimator_consistency(benchmark):
    table = benchmark.pedantic(
        lambda: ablation_estimator_quality(
            fractions=(0.01, 0.02, 0.05, 0.1, 0.2), runs=40
        ),
        rounds=1,
        iterations=1,
    )
    render(table)
    selection = [float(r[1]) for r in table.rows]
    join = [float(r[2]) for r in table.rows]
    # Consistency: the largest sample fraction must beat the smallest.
    assert selection[-1] < selection[0]
    assert join[-1] < join[0]
    assert selection[-1] < 0.1
    assert join[-1] < 0.2


def test_distinct_count_estimators(benchmark):
    table = benchmark.pedantic(
        lambda: ablation_distinct_estimators(fraction=0.1, runs=40),
        rounds=1,
        iterations=1,
    )
    render(table)
    bias = {r[0]: abs(float(r[3])) for r in table.rows}
    # Any real estimator must improve on "just report what you saw".
    assert bias["goodman"] < bias["observed"]
    assert bias["chao1"] < bias["observed"]
    assert bias["jackknife1"] < bias["observed"]
