"""Session-isolation stress: many interleaved sessions = serial sessions.

The session refactor's core promise is that a ``QuerySession`` owns *all*
per-run mutable state. This stress test opens ≥50 sessions up front on one
``Database`` — so their plans, trackers, chargers, and RNG streams coexist
— then runs them in a shuffled order, and requires every run to be
bit-identical to opening and running one session at a time on an identical
database. Any hidden shared state (a leaked tracker, a shared clock, a
global RNG) shows up as a signature mismatch.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import Database
from repro.estimation.aggregates import sum_of
from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import cmp
from repro.server.workload import demo_database

SESSIONS = 50
TUPLES = 1_200


def make_db() -> Database:
    return demo_database(seed=29, tuples=TUPLES, analyze=False)


def spec(i: int) -> dict:
    """Session ``i``'s query mix: selections, a SUM, and intersections."""
    kind = i % 4
    if kind == 0:
        expr = select(rel("r1"), cmp("a", "<", 100 + 20 * i))
        aggregate = None
    elif kind == 1:
        expr = select(rel("r2"), cmp("a", ">", 10 * i))
        aggregate = None
    elif kind == 2:
        expr = rel("r1")
        aggregate = sum_of("b")
    else:
        expr = intersect(rel("r1"), rel("r2"))
        aggregate = None
    return {
        "expr": expr,
        "quota": 0.5 + (i % 5) * 0.5,
        "seed": 1_000 + i,
        "aggregate": aggregate,
    }


def signature(result) -> tuple:
    """Everything observable about one run, for bit-identity comparison."""
    report = result.report
    estimate = report.estimate
    return (
        None if estimate is None else estimate.value,
        None if estimate is None else estimate.variance,
        report.termination,
        len(report.stages),
        report.total_blocks,
        tuple((s.fraction, s.duration, s.blocks_read) for s in report.stages),
    )


@pytest.fixture(scope="module")
def serial_signatures():
    """Open + run one session at a time on a fresh database."""
    db = make_db()
    signatures = {}
    for i in range(SESSIONS):
        session = db.open_session(**spec(i))
        signatures[i] = signature(session.run())
    return signatures


def test_interleaved_sessions_match_serial(serial_signatures):
    db = make_db()
    sessions = {i: db.open_session(**spec(i)) for i in range(SESSIONS)}
    order = list(range(SESSIONS))
    random.Random(7).shuffle(order)
    interleaved = {i: signature(sessions[i].run()) for i in order}
    assert interleaved == serial_signatures


def test_reversed_execution_order_matches_too(serial_signatures):
    db = make_db()
    sessions = [db.open_session(**spec(i)) for i in range(SESSIONS)]
    reversed_sigs = {}
    for i in reversed(range(SESSIONS)):
        reversed_sigs[i] = signature(sessions[i].run())
    assert reversed_sigs == serial_signatures
