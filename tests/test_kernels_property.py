"""Property-based bit-identity: vectorized kernels vs row-at-a-time path.

The kernel layer's contract is absolute: for ANY SJIP expression, ANY stage
schedule, and ANY seed, running the staged plan with ``vectorized=True``
must produce byte-for-byte the same observable behaviour as the
row-at-a-time reference — the same output rows in the same order, the same
estimates (value *and* variance), and the same charged simulated time down
to every per-kind total. The noisy ``sun3_60`` profile makes this stringent:
cost jitter draws from the same RNG stream as the block sampler, so even
one extra or re-ordered charge on either path would desynchronise all
subsequent sampling and show up here.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.relational.expression import intersect, join, project, rel, select
from repro.relational.predicate import And, cmp
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


def build_catalog() -> Catalog:
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", schema, [(i, i % 7) for i in range(80)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", schema, [(i, i % 7) for i in range(40, 120)], block_size=16
        ),
    )
    return catalog


# Random SJIP trees over r1/r2, each relation used at most once per term.
@st.composite
def sjip_expression(draw):
    def maybe_select(node):
        choice = draw(st.sampled_from(["none", "one", "and"]))
        if choice == "none":
            return node
        threshold = draw(st.integers(0, 7))
        op = draw(st.sampled_from(["<", ">=", "==", "!="]))
        predicate = cmp("a", op, threshold)
        if choice == "and":
            predicate = And((predicate, cmp("id", ">", draw(st.integers(0, 60)))))
        return select(node, predicate)

    left = maybe_select(rel("r1"))
    shape = draw(st.sampled_from(["single", "join", "intersect", "project"]))
    if shape == "single":
        return left
    if shape == "project":
        return project(left, ["a"])
    right = maybe_select(rel("r2"))
    if shape == "join":
        node = maybe_select(join(left, right, on=["a"]))
    else:
        node = maybe_select(intersect(left, right))
    if draw(st.booleans()):
        return project(node, ["a"])
    return node


def run_plan(expr, fractions, seed, vectorized):
    """One full staged run; returns everything observable about it."""
    catalog = build_catalog()
    rng = np.random.default_rng(seed)
    # The charger shares the sampler's RNG stream (as sessions do), so the
    # charge sequence itself is under test, not just the charge totals.
    charger = CostCharger(MachineProfile.sun3_60(), rng=rng)
    plan = StagedPlan(
        expr, catalog, charger, CostModel(), rng, vectorized=vectorized
    )
    assert plan.vectorized is vectorized
    stage_rows: list[list] = []
    stage_stats: list[tuple] = []
    for stage, fraction in enumerate(fractions, start=1):
        for scan in plan.scans:
            scan.advance(stage, fraction)
        for term in plan.terms:
            stage_rows.append(term.root.advance(stage))
        plan.stages_completed = stage
        estimate = plan.estimate()
        stage_stats.append(
            (estimate.value, estimate.variance, charger.clock.now())
        )
    return (
        stage_rows,
        stage_stats,
        tuple(sorted((k.name, v) for k, v in charger.totals.items())),
        tuple(sorted((k.name, v) for k, v in charger.counts.items())),
    )


@settings(max_examples=25, deadline=None)
@given(
    expr=sjip_expression(),
    fractions=st.lists(st.floats(0.05, 0.4), min_size=1, max_size=4),
    seed=st.integers(0, 2**16),
)
def test_vectorized_run_is_bit_identical_to_rowwise(expr, fractions, seed):
    vec_rows, vec_stats, vec_totals, vec_counts = run_plan(
        expr, fractions, seed, vectorized=True
    )
    ref_rows, ref_stats, ref_totals, ref_counts = run_plan(
        expr, fractions, seed, vectorized=False
    )
    # Identical rows, in identical order, at every operator stage.
    assert vec_rows == ref_rows
    # Identical estimates and identical simulated clock after every stage.
    assert vec_stats == ref_stats
    # Identical charged time and charge volume per cost kind.
    assert vec_totals == ref_totals
    assert vec_counts == ref_counts


@settings(max_examples=15, deadline=None)
@given(
    expr=sjip_expression(),
    seed=st.integers(0, 2**12),
)
def test_partial_fulfillment_paths_also_identical(expr, seed):
    def run(vectorized):
        catalog = build_catalog()
        rng = np.random.default_rng(seed)
        charger = CostCharger(MachineProfile.sun3_60(), rng=rng)
        plan = StagedPlan(
            expr,
            catalog,
            charger,
            CostModel(),
            rng,
            full_fulfillment=False,
            vectorized=vectorized,
        )
        plan.advance_stage(0.2)
        plan.advance_stage(0.2)
        estimate = plan.estimate()
        return (estimate.value, estimate.variance, charger.clock.now())

    assert run(True) == run(False)
