"""Cross-cutting accounting invariants (docs/architecture.md §Invariants).

These tie the layers together: on the simulated clock, charged work *is*
elapsed time, stage durations partition the run, and the paper's derived
columns are pure functions of the stage reports.
"""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.relational.expression import join, rel, select
from repro.relational.predicate import cmp
from repro.timecontrol.executor import TimeConstrainedExecutor
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


@pytest.fixture
def catalog(int_schema):
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", int_schema, [(i, i % 10) for i in range(300)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", int_schema, [(i, i % 10) for i in range(150, 450)], block_size=16
        ),
    )
    return catalog


def run_one(catalog, expr, quota, seed=0):
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.sun3_60(noise_sigma=0.15).scaled(0.1), rng=rng)
    plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
    executor = TimeConstrainedExecutor(plan, OneAtATimeInterval(d_beta=12.0))
    report = executor.run(quota)
    return report, charger


class TestChargedEqualsElapsed:
    def test_total_charges_equal_clock_advance(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        report, charger = run_one(catalog, expr, quota=3.0)
        assert charger.total_charged() == pytest.approx(
            charger.clock.now(), rel=1e-9
        )

    def test_stage_durations_partition_the_run(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 4))
        report, charger = run_one(catalog, expr, quota=2.0)
        # The clock only moves inside stages: their durations sum to the
        # total elapsed time (strategy decisions are folded into the
        # charged stage overhead).
        assert sum(s.duration for s in report.stages) == pytest.approx(
            charger.clock.now() - report.started_at, rel=1e-9
        )

    def test_no_work_after_termination(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 4))
        report, charger = run_one(catalog, expr, quota=2.0)
        end = charger.clock.now()
        _ = report.utilization, report.overspend_seconds  # derived only
        assert charger.clock.now() == end


class TestDerivedColumnsAreFunctionsOfStages:
    def test_overspend_matches_stage_arithmetic(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 4))
        for seed in range(12):
            report, _ = run_one(catalog, expr, quota=1.5, seed=seed)
            total = sum(s.duration for s in report.stages)
            expected = max(total - report.quota, 0.0)
            assert report.overspend_seconds == pytest.approx(expected)

    def test_blocks_columns_consistent_with_scans(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        report, charger = run_one(catalog, expr, quota=3.0)
        assert report.total_blocks == sum(
            s.blocks_read for s in report.stages
        )
        assert report.blocks_within_quota <= report.total_blocks

    def test_utilization_bounds(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 4))
        for seed in range(8):
            report, _ = run_one(catalog, expr, quota=1.5, seed=seed)
            assert 0.0 <= report.utilization <= 1.0


class TestSpoolAccounting:
    def test_peak_temp_usage_reported(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        report, _ = run_one(catalog, expr, quota=3.0)
        assert report.peak_temp_tuples > 0

    def test_partial_fulfillment_releases_runs(self, catalog):
        """Under partial fulfillment old runs are never reused, so the
        spool's live footprint stays bounded while full fulfillment's
        grows with the sample."""
        from repro.relational.expression import intersect

        expr = intersect(rel("r1"), rel("r2"))

        def live_after(full: bool) -> int:
            rng = np.random.default_rng(4)
            charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
            plan = StagedPlan(
                expr, catalog, charger, CostModel(), rng, full_fulfillment=full
            )
            plan.advance_stage(0.2)
            plan.advance_stage(0.2)
            return plan.spool.live_tuples

        assert live_after(False) < live_after(True)

    def test_temp_writes_match_spooled_tuples(self, catalog):
        from repro.timekeeping.profile import CostKind

        expr = join(rel("r1"), rel("r2"), on=["a"])
        rng = np.random.default_rng(5)
        charger = CostCharger(MachineProfile.uniform(0.001), rng=rng)
        plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
        plan.advance_stage(0.2)
        # Every tuple entering the join was spooled exactly once.
        inputs = sum(scan.cum_tuples for scan in plan.scans)
        assert charger.counts[CostKind.TEMP_WRITE] == inputs


class TestBlockReadAccounting:
    def test_every_drawn_block_charged_exactly_once(self, catalog):
        from repro.timekeeping.profile import CostKind

        expr = join(rel("r1"), rel("r2"), on=["a"])
        rng = np.random.default_rng(3)
        charger = CostCharger(MachineProfile.uniform(0.001), rng=rng)
        plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
        plan.advance_stage(0.2)
        plan.advance_stage(0.3)
        drawn = sum(scan.blocks_drawn for scan in plan.scans)
        assert charger.counts[CostKind.BLOCK_READ] == drawn
