"""Tests for block samplers and the point-space model."""

import numpy as np
import pytest

from repro.errors import EstimationError, SamplingExhausted
from repro.sampling.point_space import PointSpace, SampledRegion
from repro.sampling.sampler import BlockSampler, blocks_for_fraction
from tests.conftest import make_relation


@pytest.fixture
def relation(int_schema):
    # block_size 16 → blocking factor 2 → 40 tuples occupy 20 blocks
    return make_relation("r", int_schema, [(i, i) for i in range(40)], block_size=16)


class TestBlockSampler:
    def test_draws_without_replacement(self, relation, rng):
        sampler = BlockSampler(relation, rng)
        seen = []
        for _ in range(4):
            seen.extend(sampler.draw(5))
        assert sorted(seen) == list(range(20))
        assert sampler.exhausted

    def test_draw_counts_tracked(self, relation, rng):
        sampler = BlockSampler(relation, rng)
        sampler.draw(3)
        assert sampler.drawn_blocks == 3
        assert sampler.remaining_blocks == 17
        assert sampler.drawn_fraction == pytest.approx(3 / 20)

    def test_overdraw_raises(self, relation, rng):
        sampler = BlockSampler(relation, rng)
        with pytest.raises(SamplingExhausted):
            sampler.draw(21)

    def test_negative_draw_raises(self, relation, rng):
        with pytest.raises(SamplingExhausted):
            BlockSampler(relation, rng).draw(-1)

    def test_permutation_is_seeded(self, relation):
        a = BlockSampler(relation, np.random.default_rng(1)).draw(20)
        b = BlockSampler(relation, np.random.default_rng(1)).draw(20)
        assert a == b

    def test_different_seeds_differ(self, relation):
        a = BlockSampler(relation, np.random.default_rng(1)).draw(20)
        b = BlockSampler(relation, np.random.default_rng(2)).draw(20)
        assert a != b

    def test_uniformity_over_first_draw(self, relation):
        counts = np.zeros(20)
        for seed in range(400):
            sampler = BlockSampler(relation, np.random.default_rng(seed))
            counts[sampler.draw(1)[0]] += 1
        # Each block should appear roughly 20 times as the first draw.
        assert counts.min() > 5
        assert counts.max() < 45


class TestBlocksForFraction:
    def test_zero_fraction_is_zero_blocks(self, relation):
        assert blocks_for_fraction(relation, 0.0) == 0

    def test_small_positive_fraction_gives_one_block(self, relation):
        assert blocks_for_fraction(relation, 1e-6) == 1

    def test_rounding(self, relation):
        assert blocks_for_fraction(relation, 0.5) == 10
        assert blocks_for_fraction(relation, 0.524) == 10
        assert blocks_for_fraction(relation, 0.56) == 11


class TestPointSpace:
    def test_totals(self):
        space = PointSpace(("r1", "r2"), (100, 200), (20, 40))
        assert space.total_points == 20_000
        assert space.total_space_blocks == 800
        assert space.dimensions == 2

    def test_duplicate_relations_rejected(self):
        with pytest.raises(EstimationError, match="distinct"):
            PointSpace(("r1", "r1"), (10, 10), (2, 2))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EstimationError):
            PointSpace(("r1",), (10, 20), (2,))

    def test_empty_relation_rejected(self):
        with pytest.raises(EstimationError):
            PointSpace(("r1",), (0,), (1,))


class TestSampledRegionFull:
    def test_growth_is_cross_product(self):
        space = PointSpace(("r1", "r2"), (100, 100), (20, 20))
        region = SampledRegion(space, full_fulfillment=True)
        assert region.record_stage([10, 10]) == 100
        assert region.record_stage([5, 5]) == 15 * 15 - 100
        assert region.points_evaluated == 225
        assert region.cumulative_tuples == (15, 15)

    def test_predicted_matches_recorded(self):
        space = PointSpace(("r1", "r2"), (100, 100), (20, 20))
        region = SampledRegion(space, full_fulfillment=True)
        region.record_stage([10, 10])
        assert region.predicted_new_points([5, 5]) == 125
        assert region.record_stage([5, 5]) == 125

    def test_one_sided_growth(self):
        space = PointSpace(("r1", "r2"), (100, 100), (20, 20))
        region = SampledRegion(space, full_fulfillment=True)
        region.record_stage([10, 10])
        assert region.record_stage([5, 0]) == 50

    def test_coverage_reaches_one(self):
        space = PointSpace(("r1",), (100,), (20,))
        region = SampledRegion(space)
        region.record_stage([100])
        assert region.coverage == pytest.approx(1.0)


class TestSampledRegionPartial:
    def test_growth_is_per_stage_product(self):
        space = PointSpace(("r1", "r2"), (100, 100), (20, 20))
        region = SampledRegion(space, full_fulfillment=False)
        assert region.record_stage([10, 10]) == 100
        assert region.record_stage([5, 5]) == 25
        assert region.points_evaluated == 125

    def test_partial_never_covers_cross_stage(self):
        space = PointSpace(("r1", "r2"), (100, 100), (20, 20))
        full = SampledRegion(space, full_fulfillment=True)
        partial = SampledRegion(space, full_fulfillment=False)
        for stage in ([10, 10], [5, 5], [3, 3]):
            full.record_stage(stage)
            partial.record_stage(stage)
        assert partial.points_evaluated < full.points_evaluated

    def test_dimension_mismatch_raises(self):
        space = PointSpace(("r1", "r2"), (100, 100), (20, 20))
        with pytest.raises(EstimationError):
            SampledRegion(space).record_stage([1])

    def test_negative_stage_raises(self):
        space = PointSpace(("r1",), (100,), (20,))
        with pytest.raises(EstimationError):
            SampledRegion(space).record_stage([-1])
