"""Tests of run_cell's opt-in process parallelism (repro.experiments.runner).

The regression guard the refactor demands: fanning a cell's seed range over
worker processes must be invisible in the results — same seeds, same order,
bit-identical estimates and aggregates as the serial path.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import CellRunError
from repro.experiments.runner import _chunk_seeds, aggregate, run_cell
from repro.observability import RecordingSink
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.workloads.paper import make_selection_setup

RUNS = 20
SEED0 = 10_000


def has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


needs_fork = pytest.mark.skipif(
    not has_fork(), reason="fork start method unavailable on this platform"
)


@pytest.fixture(scope="module")
def setup():
    """A small Figure 5.1 selection cell (fast enough for 3 full sweeps)."""
    return make_selection_setup(output_tuples=100, tuples=1_000)


def strategy_factory():
    return OneAtATimeInterval(d_beta=24.0)


def run_signature(result) -> tuple:
    """Everything observable about one run, for bit-identity comparison."""
    report = result.report
    return (
        None if report.estimate is None else report.estimate.value,
        None if report.estimate is None else report.estimate.variance,
        report.termination,
        len(report.stages),
        report.stages_completed_in_time,
        report.total_blocks,
        tuple((s.fraction, s.duration, s.blocks_read) for s in report.stages),
    )


class TestChunking:
    @pytest.mark.parametrize("runs,workers", [(1, 4), (7, 2), (20, 4), (50, 3)])
    def test_chunks_partition_the_seed_range(self, runs, workers):
        chunks = _chunk_seeds(runs, SEED0, workers)
        flattened = [seed for chunk in chunks for seed in chunk]
        assert flattened == list(range(SEED0, SEED0 + runs))
        assert all(chunk for chunk in chunks)

    def test_chunk_count_balances_workers(self):
        chunks = _chunk_seeds(100, 0, 4)
        assert len(chunks) == 16  # ~4 chunks per worker
        sizes = {len(c) for c in chunks}
        assert max(sizes) - min(sizes) <= 1


@needs_fork
class TestParallelMatchesSerial:
    @pytest.fixture(scope="class")
    def serial_results(self, setup):
        return run_cell(setup, strategy_factory, RUNS, seed0=SEED0, workers=0)

    def test_parallel_runs_are_bit_identical(self, setup, serial_results):
        parallel = run_cell(setup, strategy_factory, RUNS, seed0=SEED0, workers=4)
        assert len(parallel) == len(serial_results) == RUNS
        for serial_run, parallel_run in zip(serial_results, parallel):
            assert run_signature(serial_run) == run_signature(parallel_run)

    def test_parallel_aggregates_are_identical(self, setup, serial_results):
        parallel = run_cell(setup, strategy_factory, RUNS, seed0=SEED0, workers=4)
        serial_cell = aggregate("cell", serial_results, setup.exact_count)
        parallel_cell = aggregate("cell", parallel, setup.exact_count)
        assert serial_cell == parallel_cell

    def test_worker_count_does_not_matter(self, setup, serial_results):
        two = run_cell(setup, strategy_factory, RUNS, seed0=SEED0, workers=2)
        assert [run_signature(r) for r in two] == [
            run_signature(r) for r in serial_results
        ]

    def test_single_run_stays_serial(self, setup):
        serial = run_cell(setup, strategy_factory, 1, seed0=SEED0, workers=0)
        parallel = run_cell(setup, strategy_factory, 1, seed0=SEED0, workers=4)
        assert run_signature(serial[0]) == run_signature(parallel[0])


class ExplodingStrategy(OneAtATimeInterval):
    """Raises mid-run, deep inside the session (picklable for workers)."""

    def choose_fraction(self, *args, **kwargs):
        raise RuntimeError("boom: injected strategy failure")


def exploding_factory():
    return ExplodingStrategy(d_beta=24.0)


class TestFailureNaming:
    """A worker failure must name the seed and cell that died."""

    def test_serial_failure_names_the_seed(self, setup):
        with pytest.raises(CellRunError) as err:
            run_cell(setup, exploding_factory, 3, seed0=SEED0, workers=0)
        assert err.value.seed == SEED0
        assert f"seed {SEED0}" in str(err.value)
        assert "boom" in str(err.value)
        assert "RuntimeError" in str(err.value)
        # The original exception rides along for debugging.
        assert isinstance(err.value.__cause__, RuntimeError)

    @needs_fork
    def test_worker_failure_names_the_seed_across_processes(self, setup):
        with pytest.raises(CellRunError) as err:
            run_cell(setup, exploding_factory, 4, seed0=SEED0, workers=2)
        assert err.value.seed >= SEED0
        assert f"seed {err.value.seed}" in str(err.value)
        assert "boom" in str(err.value)


class TestParallelGuards:
    def test_rejects_shared_cost_model(self, setup):
        from repro.costmodel.model import CostModel

        with pytest.raises(ValueError, match="cost_model"):
            run_cell(
                setup,
                strategy_factory,
                4,
                workers=2,
                cost_model=CostModel(),
            )

    def test_rejects_trace_sink(self, setup):
        with pytest.raises(ValueError, match="sink"):
            run_cell(
                setup,
                strategy_factory,
                4,
                workers=2,
                sink=RecordingSink(),
            )

    def test_serial_mode_accepts_sink(self, setup):
        sink = RecordingSink()
        results = run_cell(
            setup, strategy_factory, 2, seed0=SEED0, workers=0, sink=sink
        )
        assert len(results) == 2
        assert sink.of_kind("query_start")
