"""Transactions through the serving layer (repro.realtime.adapter) and the
feedback allocator's budget-conservation property.

The property test pins the heart of the [AbMo 88] use case: the feedback
allocator donates *all* leftover budget forward — under full consumption
the granted quotas sum exactly to the transaction budget, and whatever the
earlier queries leave unused is handed, to the last cent, to the final
pending query.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TimeControlError
from repro.realtime import (
    FeedbackAllocator,
    QueryTask,
    TransactionScheduler,
    run_transaction,
)
from repro.relational.expression import rel, select
from repro.relational.predicate import cmp
from repro.server import AdmitAll, DegradeInfeasible, QueryServer
from repro.server.request import Outcome
from repro.server.workload import demo_database

TUPLES = 1_000


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=17, tuples=TUPLES)


def tasks():
    return [
        QueryTask("narrow", select(rel("r1"), cmp("a", "<", 200))),
        QueryTask(
            "wide", select(rel("r1"), cmp("a", "<", 800)), weight=2.0
        ),
        QueryTask("half", select(rel("r2"), cmp("a", "<", TUPLES // 2))),
    ]


class TestRunTransaction:
    def test_meets_a_comfortable_deadline(self, db):
        server = QueryServer(db, policy=AdmitAll())
        result = run_transaction(server, tasks(), deadline=9.0, seed=3)
        assert result.met_deadline
        assert result.completed_queries == 3
        assert set(result.results) == {"narrow", "wide", "half"}
        assert result.elapsed <= 9.0
        # Every transaction query flowed through the server's bookkeeping.
        assert len(server.outcomes) == 3
        assert all(o.outcome is Outcome.ANSWERED for o in server.outcomes)

    def test_quotas_follow_the_feedback_identity(self, db):
        server = QueryServer(db, policy=AdmitAll())
        deadline = 9.0
        result = run_transaction(
            server, tasks(), deadline=deadline, seed=3
        )
        # First grant is exactly remaining * w0 / W = 9 * 1/4.
        assert result.quotas["narrow"] == pytest.approx(deadline / 4)
        # Each later grant re-splits whatever actually remained.
        elapsed_before_wide = server.outcomes[0].finished_at
        assert result.quotas["wide"] == pytest.approx(
            (deadline - elapsed_before_wide) * 2 / 3
        )

    def test_rejected_query_aborts_the_transaction(self, db):
        server = QueryServer(db, policy=DegradeInfeasible())
        # Tight deadline: the first query gets an infeasible sliver.
        result = run_transaction(server, tasks(), deadline=0.01, seed=3)
        assert not result.met_deadline
        assert result.aborted_after == "narrow"
        assert result.completed_queries <= 1
        # The server still recorded a typed outcome for the attempt.
        assert server.outcomes[-1].outcome in (
            Outcome.DEGRADED,
            Outcome.REJECTED,
        )

    def test_validation_matches_the_scheduler(self, db):
        server = QueryServer(db)
        with pytest.raises(TimeControlError):
            run_transaction(server, tasks(), deadline=0.0)
        with pytest.raises(TimeControlError):
            run_transaction(server, [], deadline=1.0)
        twins = [tasks()[0], tasks()[0]]
        with pytest.raises(TimeControlError, match="duplicate"):
            run_transaction(server, twins, deadline=1.0)

    def test_agrees_with_the_standalone_scheduler(self, db):
        """Same allocator discipline as TransactionScheduler.run."""
        server = QueryServer(db, policy=AdmitAll())
        via_server = run_transaction(server, tasks(), deadline=9.0, seed=3)
        direct_db = demo_database(seed=17, tuples=TUPLES)
        direct = TransactionScheduler(direct_db).run(
            tasks(), deadline=9.0, seed=3
        )
        assert via_server.met_deadline and direct.met_deadline
        # Both grant the same opening quota from the same identity.
        assert via_server.quotas["narrow"] == pytest.approx(
            direct.quotas["narrow"]
        )


def weights(n):
    return st.lists(
        st.floats(
            min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False
        ),
        min_size=n,
        max_size=n,
    )


@st.composite
def allocation_cases(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    ws = draw(weights(n))
    budget = draw(
        st.floats(min_value=0.1, max_value=1_000.0, allow_nan=False)
    )
    # Per-query consumption as a fraction of its granted quota.
    use = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    return ws, budget, use


def fake_tasks(ws):
    return [
        QueryTask(f"t{i}", rel("r1"), weight=w) for i, w in enumerate(ws)
    ]


class TestFeedbackConservation:
    @given(allocation_cases())
    @settings(max_examples=200, deadline=None)
    def test_full_consumption_sums_to_the_budget(self, case):
        """When every query burns its whole quota, nothing is lost:
        the granted quotas sum exactly to the transaction budget."""
        ws, budget, _ = case
        allocator = FeedbackAllocator()
        batch = fake_tasks(ws)
        remaining = budget
        granted = []
        for index in range(len(batch)):
            quota = allocator.allocate(batch, index, remaining)
            granted.append(quota)
            remaining -= quota  # full consumption
        assert sum(granted) == pytest.approx(budget, rel=1e-9, abs=1e-9)

    @given(allocation_cases())
    @settings(max_examples=200, deadline=None)
    def test_leftover_is_donated_all_the_way_to_the_last_query(self, case):
        """Under arbitrary under-consumption the final pending query is
        granted exactly the whole remaining budget — no time is stranded."""
        ws, budget, use = case
        allocator = FeedbackAllocator()
        batch = fake_tasks(ws)
        remaining = budget
        for index in range(len(batch)):
            quota = allocator.allocate(batch, index, remaining)
            assert quota <= remaining * (1 + 1e-12)
            if index == len(batch) - 1:
                assert quota == pytest.approx(remaining, rel=1e-9, abs=1e-12)
            remaining -= quota * use[index]  # partial consumption

    @given(weights(5), st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_grants_keep_weight_proportions_among_pending(self, ws, budget):
        allocator = FeedbackAllocator()
        batch = fake_tasks(ws)
        first = allocator.allocate(batch, 0, budget)
        total_weight = sum(ws)
        assert first == pytest.approx(budget * ws[0] / total_weight, rel=1e-9)
