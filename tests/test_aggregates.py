"""Tests for the SUM/AVG extension of the COUNT framework."""

import itertools

import numpy as np
import pytest

from repro.core.database import Database
from repro.errors import EstimationError
from repro.estimation.aggregates import (
    COUNT,
    AggregateSpec,
    StreamingMoments,
    avg_from_sum_count,
    avg_of,
    srs_sum_estimate,
    sum_of,
)
from repro.estimation.count_estimators import srs_count_estimate
from repro.relational.expression import join, project, rel, select, union
from repro.relational.predicate import cmp
from repro.timekeeping.profile import MachineProfile


class TestAggregateSpec:
    def test_count_constant(self):
        assert COUNT.kind == "count"
        assert not COUNT.needs_values

    def test_sum_and_avg_need_attribute(self):
        assert sum_of("v").needs_values
        assert avg_of("v").attribute == "v"
        with pytest.raises(EstimationError):
            AggregateSpec("sum")
        with pytest.raises(EstimationError):
            AggregateSpec("count", "v")

    def test_unknown_kind_rejected(self):
        with pytest.raises(EstimationError):
            AggregateSpec("median", "v")


class TestStreamingMoments:
    def test_accumulates(self):
        m = StreamingMoments()
        m.add_many([1.0, 2.0, 3.0])
        assert m.ones == 3
        assert m.total == 6.0
        assert m.total_sq == 14.0

    def test_merge_and_scaled(self):
        a = StreamingMoments()
        a.add_many([1.0, 2.0])
        b = a.scaled(-1)
        assert b.total == -3.0
        assert b.total_sq == 5.0
        a.merge(b)
        assert a.total == 0.0


class TestSrsSumEstimate:
    def test_scales_up(self):
        m = StreamingMoments()
        m.add_many([5.0, 7.0])
        est = srs_sum_estimate(population=100, sampled=10, moments=m)
        assert est.value == pytest.approx(120.0)

    def test_full_sample_exact(self):
        m = StreamingMoments()
        m.add_many([5.0, 7.0])
        est = srs_sum_estimate(population=2, sampled=2, moments=m)
        assert est.exact and est.value == 12.0 and est.variance == 0.0

    def test_unbiased_by_exhaustive_enumeration(self):
        """E[û_sum] over all C(N,m) samples equals the true total."""
        values = [0, 3, 0, 5, 2, 0]  # true total 10
        n = len(values)
        for m_size in (2, 3):
            estimates = []
            for sample in itertools.combinations(values, m_size):
                m = StreamingMoments()
                m.add_many(v for v in sample if v != 0)
                estimates.append(srs_sum_estimate(n, m_size, m).value)
            assert sum(estimates) / len(estimates) == pytest.approx(10.0)

    def test_zero_values_zero_variance(self):
        est = srs_sum_estimate(100, 10, StreamingMoments())
        assert est.value == 0.0 and est.variance == 0.0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(EstimationError):
            srs_sum_estimate(5, 10, StreamingMoments())
        m = StreamingMoments()
        m.add_many([1.0, 1.0, 1.0])
        with pytest.raises(EstimationError):
            srs_sum_estimate(100, 2, m)


class TestAvgFromSumCount:
    def test_ratio(self):
        m = StreamingMoments()
        m.add_many([4.0, 6.0])
        total = srs_sum_estimate(100, 10, m)
        count = srs_count_estimate(100, 10, 2)
        est = avg_from_sum_count(total, count, m)
        assert est.value == pytest.approx(5.0)
        assert est.variance >= 0.0

    def test_no_outputs_gives_zero(self):
        count = srs_count_estimate(100, 10, 0)
        total = srs_sum_estimate(100, 10, StreamingMoments())
        est = avg_from_sum_count(total, count, StreamingMoments())
        assert est.value == 0.0

    def test_exact_when_both_exact(self):
        m = StreamingMoments()
        m.add_many([4.0, 6.0])
        total = srs_sum_estimate(2, 2, m)
        count = srs_count_estimate(2, 2, 2)
        est = avg_from_sum_count(total, count, m)
        assert est.exact and est.variance == 0.0


@pytest.fixture
def db():
    database = Database(
        profile=MachineProfile.sun3_60(noise_sigma=0.1).scaled(0.1), seed=9
    )
    rng = np.random.default_rng(0)
    database.create_relation(
        "r1",
        [("id", "int"), ("a", "int"), ("v", "int")],
        rows=[(i, i % 10, int(rng.integers(0, 100))) for i in range(600)],
        block_size=24,
    )
    database.create_relation(
        "r2",
        [("id", "int"), ("a", "int"), ("v", "int")],
        rows=[(i, i % 10, int(rng.integers(0, 100))) for i in range(300, 900)],
        block_size=24,
    )
    return database


class TestDatabaseAggregates:
    def test_exact_sum_and_avg(self, db):
        expr = select(rel("r1"), cmp("a", "<", 5))
        rows = [r for r in db.relation("r1").all_rows() if r[1] < 5]
        assert db.aggregate(expr, sum_of("v")) == sum(r[2] for r in rows)
        assert db.aggregate(expr, avg_of("v")) == pytest.approx(
            sum(r[2] for r in rows) / len(rows)
        )
        assert db.aggregate(expr, COUNT) == len(rows)

    def test_exact_avg_of_empty_is_zero(self, db):
        expr = select(rel("r1"), cmp("a", "<", 0))
        assert db.aggregate(expr, avg_of("v")) == 0.0

    def test_sum_estimate_full_coverage_exact(self, db):
        expr = select(rel("r1"), cmp("a", "<", 5))
        result = db.estimate(expr, sum_of("v"), quota=1e9, seed=2)
        assert result.exact
        assert result.value == db.aggregate(expr, sum_of("v"))

    def test_avg_estimate_full_coverage_exact(self, db):
        expr = select(rel("r1"), cmp("a", "<", 5))
        result = db.estimate(expr, avg_of("v"), quota=1e9, seed=2)
        assert result.exact
        assert result.value == pytest.approx(db.aggregate(expr, avg_of("v")))

    def test_sum_estimate_statistically_consistent(self, db):
        expr = select(rel("r1"), cmp("a", "<", 5))
        true = db.aggregate(expr, sum_of("v"))
        values = [
            db.estimate(expr, sum_of("v"), quota=3.0, seed=100 + i).value
            for i in range(25)
        ]
        assert np.mean(values) == pytest.approx(true, rel=0.15)

    def test_avg_estimate_on_join(self, db):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        true = db.aggregate(expr, avg_of("v"))
        result = db.estimate(expr, avg_of("v"), quota=6.0, seed=4)
        assert result.estimate is not None
        assert result.value == pytest.approx(true, rel=0.35)

    def test_sum_over_union_terms_combine(self, db):
        expr = union(rel("r1"), rel("r2"))
        true = db.aggregate(expr, sum_of("v"))
        result = db.estimate(expr, sum_of("v"), quota=1e9, seed=5)
        assert result.value == pytest.approx(true)

    def test_sum_over_projection_rejected(self, db):
        expr = project(rel("r1"), ["a"])
        with pytest.raises(EstimationError, match="projection"):
            db.estimate(expr, sum_of("v"), quota=1.0)

    def test_unknown_attribute_rejected(self, db):
        with pytest.raises(Exception):
            db.estimate(rel("r1"), sum_of("ghost"), quota=1.0)

    def test_summary_labels_aggregate(self, db):
        expr = select(rel("r1"), cmp("a", "<", 5))
        result = db.estimate(expr, sum_of("v"), quota=3.0, seed=2)
        assert result.estimate is None or "SUM" in result.summary()
