"""Remaining coverage: QueryResult surfaces, runner edges, Database knobs."""

import math

import pytest

from repro.core.database import Database
from repro.experiments.runner import aggregate, run_cell
from repro.relational.expression import rel, select
from repro.relational.predicate import cmp
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.timekeeping.profile import MachineProfile
from repro.workloads.paper import make_selection_setup


@pytest.fixture
def db():
    database = Database(
        profile=MachineProfile.sun3_60(noise_sigma=0.1).scaled(0.1), seed=77
    )
    database.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 10) for i in range(400)],
        block_size=16,
    )
    return database


class TestQueryResultSurfaces:
    def test_quota_and_stages_attempted(self, db):
        result = db.estimate(
            select(rel("r1"), cmp("a", "<", 3)), quota=2.0, seed=1
        )
        assert result.quota == 2.0
        assert result.stages_attempted >= result.stages

    def test_estimate_with_overrun_defaults_to_estimate(self, db):
        result = db.estimate(
            select(rel("r1"), cmp("a", "<", 3)), quota=2.0, seed=1
        )
        if not result.overspent:
            assert (
                result.report.estimate_with_overrun is result.report.estimate
            )

    def test_relative_error_infinite_for_zero_truth_nonzero_estimate(self, db):
        result = db.estimate(
            select(rel("r1"), cmp("a", "<", 5)), quota=2.0, seed=1
        )
        assert math.isinf(result.relative_error(0))


class TestDatabaseKnobs:
    def test_max_stages_respected(self, db):
        result = db.estimate(
            rel("r1"), quota=1e9, seed=1, max_stages=2
        )
        assert result.stages_attempted <= 2

    def test_custom_step_specs_accepted(self, db):
        from repro.costmodel.steps import default_step_specs

        result = db.estimate(
            select(rel("r1"), cmp("a", "<", 3)),
            quota=2.0,
            seed=1,
            step_specs=default_step_specs(prior_scale=0.1),
        )
        assert result.stages_attempted >= 1

    def test_prior_scale_validation(self):
        from repro.costmodel.steps import default_step_specs
        from repro.errors import CostModelError

        with pytest.raises(CostModelError):
            default_step_specs(prior_scale=0.0)

    def test_shared_cost_model_carries_learning(self, db):
        """Passing one CostModel across queries persists adaptation —
        query 2 starts with query 1's fitted coefficients."""
        from repro.costmodel.model import CostModel
        from repro.costmodel.steps import SCAN_READ

        model = CostModel()
        before = model.predict(SCAN_READ, [10.0, 1.0])
        db.estimate(
            select(rel("r1"), cmp("a", "<", 3)),
            quota=2.0,
            seed=1,
            cost_model=model,
        )
        after = model.predict(SCAN_READ, [10.0, 1.0])
        assert after != before
        assert model.observation_counts().get(SCAN_READ, 0) >= 1


class TestRunnerEdges:
    def test_aggregate_without_truth_has_no_error_column(self):
        setup = make_selection_setup(output_tuples=100, tuples=1_000, seed=1)
        results = run_cell(
            setup, lambda: OneAtATimeInterval(d_beta=12.0), runs=3, seed0=1
        )
        cell = aggregate("x", results, true_count=None)
        assert cell.mean_relative_error is None
        assert cell.row()[-1] == "-"

    def test_run_cell_uses_setup_initial_selectivities(self):
        from repro.workloads.paper import make_join_setup

        setup = make_join_setup(tuples=700, seed=1)
        results = run_cell(
            setup, lambda: OneAtATimeInterval(d_beta=12.0), runs=2, seed0=5
        )
        assert len(results) == 2

    def test_explicit_kwargs_override_setup(self):
        setup = make_selection_setup(output_tuples=100, tuples=1_000, seed=1)
        results = run_cell(
            setup,
            lambda: OneAtATimeInterval(d_beta=12.0),
            runs=2,
            seed0=5,
            full_fulfillment=False,
        )
        assert len(results) == 2
