"""Tests for the staged engine.

The central correctness property of the **full fulfillment** plan: after any
number of stages, the staged tree's cumulative output count equals the exact
evaluation of the expression over the *sampled sub-database* (the relations
restricted to their sampled blocks), and the evaluated points equal the full
cross product of the sampled tuples. Partial fulfillment instead equals the
sum of per-stage new×new evaluations.
"""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.errors import EstimationError, TimeControlError
from repro.relational.evaluator import count_exact
from repro.relational.expression import (
    intersect,
    join,
    project,
    rel,
    select,
    union,
)
from repro.relational.predicate import cmp
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind, MachineProfile
from tests.conftest import make_relation


def free_plan(expr, catalog, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
    return StagedPlan(expr, catalog, charger, CostModel(), rng, **kwargs)


def restricted_catalog(plan) -> Catalog:
    """A catalog holding only the sampled blocks of each base relation."""
    sub = Catalog()
    for scan in plan.scans:
        relation = scan.relation
        rows = []
        for block_id in scan.sampler.drawn_block_ids:
            rows.extend(relation.block_rows_uncharged(block_id))
        sub.register(
            relation.name,
            make_relation(relation.name, relation.schema, rows, relation.block_size),
        )
    return sub


@pytest.fixture
def catalog(int_schema):
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", int_schema, [(i, i % 10) for i in range(100)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", int_schema, [(i, i % 10) for i in range(50, 150)], block_size=16
        ),
    )
    return catalog


class TestFullFulfillmentEquivalence:
    @pytest.mark.parametrize(
        "expr_factory",
        [
            lambda: select(rel("r1"), cmp("a", "<", 4)),
            lambda: join(rel("r1"), rel("r2"), on=["a"]),
            lambda: intersect(rel("r1"), rel("r2")),
            lambda: select(join(rel("r1"), rel("r2"), on=["a"]), cmp("a", "<", 3)),
            lambda: join(
                select(rel("r1"), cmp("a", "<", 6)),
                select(rel("r2"), cmp("a", ">", 1)),
                on=["a"],
            ),
        ],
        ids=["select", "join", "intersect", "select-over-join", "join-of-selects"],
    )
    def test_counts_match_sampled_subdatabase(self, catalog, expr_factory):
        expr = expr_factory()
        plan = free_plan(expr, catalog, seed=7)
        for stage, fraction in enumerate([0.1, 0.15, 0.2], start=1):
            plan.advance_stage(fraction)
            sub = restricted_catalog(plan)
            expected = count_exact(expr, sub)
            assert plan.terms[0].root.cum_out_tuples == expected, (
                f"stage {stage}: staged count != exact over sampled blocks"
            )

    def test_points_equal_cross_product(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        plan = free_plan(expr, catalog, seed=3)
        plan.advance_stage(0.1)
        plan.advance_stage(0.2)
        m = [scan.cum_tuples for scan in plan.scans]
        assert plan.terms[0].root.points_so_far == m[0] * m[1]

    def test_full_coverage_gives_exact_estimate(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 4))
        plan = free_plan(expr, catalog, seed=1)
        plan.advance_stage(1.0)
        assert plan.all_exhausted()
        est = plan.estimate()
        assert est.exact
        assert est.value == count_exact(expr, catalog)

    def test_full_coverage_join_exact(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        plan = free_plan(expr, catalog, seed=1)
        plan.advance_stage(0.5)
        plan.advance_stage(1.0)  # clamped to what remains
        est = plan.estimate()
        assert est.exact
        assert est.value == count_exact(expr, catalog)


class TestPartialFulfillment:
    def test_counts_are_new_times_new_only(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        full = free_plan(expr, catalog, seed=5, full_fulfillment=True)
        partial = free_plan(expr, catalog, seed=5, full_fulfillment=False)
        for fraction in (0.1, 0.15):
            full.advance_stage(fraction)
            partial.advance_stage(fraction)
        # Same drawn blocks (same seed), but partial evaluates fewer points.
        assert (
            partial.terms[0].root.points_so_far
            < full.terms[0].root.points_so_far
        )
        assert (
            partial.terms[0].root.cum_out_tuples
            <= full.terms[0].root.cum_out_tuples
        )

    def test_partial_estimate_still_consistent(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        true = count_exact(expr, catalog)
        values = []
        for seed in range(20):
            plan = free_plan(expr, catalog, seed=seed, full_fulfillment=False)
            plan.advance_stage(0.3)
            plan.advance_stage(0.3)
            values.append(plan.estimate().value)
        mean = sum(values) / len(values)
        assert mean == pytest.approx(true, rel=0.35)


class TestSharedScans:
    def test_union_terms_share_block_draws(self, catalog, unit_charger):
        rng = np.random.default_rng(0)
        charger = CostCharger(MachineProfile.uniform(1.0), rng=rng)
        plan = StagedPlan(
            union(rel("r1"), rel("r2")), catalog, charger, CostModel(), rng
        )
        # Terms: r1, r2, −(r1 ∩ r2); r1 and r2 each appear in two terms.
        assert len(plan.terms) == 3
        assert len(plan.scans) == 2
        plan.advance_stage(0.2)
        # Each relation's blocks were read exactly once despite two uses.
        expected_blocks = sum(
            min(
                max(1, round(0.2 * scan.relation.block_count)),
                scan.relation.block_count,
            )
            for scan in plan.scans
        )
        assert charger.counts[CostKind.BLOCK_READ] == expected_blocks

    def test_union_estimate_matches_subdatabase_count(self, catalog):
        expr = union(rel("r1"), rel("r2"))
        plan = free_plan(expr, catalog, seed=11)
        plan.advance_stage(0.3)
        # With shared samples, the combined signed counts must equal the
        # exact union count over the sampled sub-database when scaled at
        # full coverage; at partial coverage we check the raw counts.
        sub = restricted_catalog(plan)
        signed = sum(
            t.coefficient * t.root.cum_out_tuples for t in plan.terms
        )
        assert signed == count_exact(expr, sub)

    def test_full_coverage_union_exact(self, catalog):
        expr = union(rel("r1"), rel("r2"))
        plan = free_plan(expr, catalog, seed=2)
        plan.advance_stage(1.0)
        assert plan.estimate().value == pytest.approx(
            count_exact(expr, catalog)
        )


class TestProjectNode:
    def test_occupancy_accumulates_across_stages(self, catalog):
        expr = project(rel("r1"), ["a"])
        plan = free_plan(expr, catalog, seed=4)
        plan.advance_stage(0.3)
        plan.advance_stage(0.3)
        root = plan.terms[0].root
        sub = restricted_catalog(plan)
        assert root.cum_out_tuples == count_exact(expr, sub)
        assert sum(root.occupancy.values()) == root.observed_child_tuples

    def test_full_coverage_project_exact(self, catalog):
        expr = project(rel("r1"), ["a"])
        plan = free_plan(expr, catalog, seed=4)
        plan.advance_stage(1.0)
        assert plan.estimate().value == pytest.approx(10.0)

    def test_project_over_select(self, catalog):
        expr = project(select(rel("r1"), cmp("a", "<", 5)), ["a"])
        plan = free_plan(expr, catalog, seed=4)
        plan.advance_stage(0.5)
        sub = restricted_catalog(plan)
        assert plan.terms[0].root.cum_out_tuples == count_exact(expr, sub)


class TestPlanMechanics:
    def test_stage_indices_enforced(self, catalog):
        plan = free_plan(select(rel("r1"), cmp("a", "<", 4)), catalog)
        plan.advance_stage(0.1)
        root = plan.terms[0].root
        with pytest.raises(TimeControlError):
            root.advance(5)

    def test_nonpositive_fraction_rejected(self, catalog):
        plan = free_plan(rel("r1"), catalog)
        with pytest.raises(EstimationError):
            plan.advance_stage(0.0)

    def test_estimate_before_any_stage_raises(self, catalog):
        plan = free_plan(select(rel("r1"), cmp("a", "<", 4)), catalog)
        with pytest.raises(EstimationError):
            plan.estimate()

    def test_min_and_max_fractions(self, catalog):
        plan = free_plan(join(rel("r1"), rel("r2"), on=["a"]), catalog)
        assert plan.min_feasible_fraction() == pytest.approx(1 / 50)
        assert plan.max_remaining_fraction() == pytest.approx(1.0)
        plan.advance_stage(0.5)
        assert plan.max_remaining_fraction() == pytest.approx(0.5)

    def test_trackers_unique(self, catalog):
        plan = free_plan(
            select(join(rel("r1"), rel("r2"), on=["a"]), cmp("a", "<", 3)),
            catalog,
        )
        labels = [t.label for t in plan.trackers()]
        assert len(labels) == len(set(labels)) == 2  # select + join

    def test_history_recorded(self, catalog):
        plan = free_plan(rel("r1"), catalog)
        stats = plan.advance_stage(0.2)
        assert stats.stage == 1
        assert stats.blocks_read > 0
        assert plan.history == [stats]


class TestPrediction:
    def test_adaptation_improves_prediction(self, catalog):
        """After observing a few stages, the adaptive model predicts the
        next stage's charged cost better than the frozen designer priors
        (the paper's Section 4 claim), and lands in the right ballpark."""
        expr = select(rel("r1"), cmp("a", "<", 4))

        def sel_provider(tracker, points, space):
            return tracker.effective_sel_prev()

        def run(adaptive: bool) -> tuple[float, float]:
            rng = np.random.default_rng(0)
            charger = CostCharger(
                MachineProfile.sun3_60(noise_sigma=0.0), rng=rng
            )
            plan = StagedPlan(
                expr, catalog, charger, CostModel(adaptive=adaptive), rng
            )
            for fraction in (0.05, 0.05, 0.05):
                plan.advance_stage(fraction)
            predicted = plan.predict_stage(0.1, sel_provider)
            before = charger.clock.now()
            plan.advance_stage(0.1)
            return predicted, charger.clock.now() - before

        predicted_adaptive, actual = run(adaptive=True)
        predicted_frozen, actual_frozen = run(adaptive=False)
        assert actual == pytest.approx(actual_frozen, rel=1e-9)  # same seed
        err_adaptive = abs(predicted_adaptive - actual)
        err_frozen = abs(predicted_frozen - actual)
        assert err_adaptive < err_frozen
        assert predicted_adaptive == pytest.approx(actual, rel=0.6)

    def test_prediction_counts_shared_scans_once(self, catalog):
        plan = free_plan(union(rel("r1"), rel("r2")), catalog)

        def sel_provider(tracker, points, space):
            return tracker.initial

        single = free_plan(intersect(rel("r1"), rel("r2")), catalog)
        cost_union = plan.predict_stage(0.1, sel_provider)
        cost_intersect = single.predict_stage(0.1, sel_provider)
        # The union plan adds two bare-scan terms to the intersect term but
        # shares the scans; its predicted cost must not double the scan cost.
        assert cost_union < 2 * cost_intersect
