"""Tests for the COUNT estimators (û, Ŷ_b) and their variances.

The unbiasedness claims of [HoOT 88] are verified by *exhaustive
enumeration*: over every possible without-replacement sample of a tiny
population, the expectation of the estimator equals the true count exactly.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.estimation.count_estimators import (
    cluster_count_estimate,
    combine_term_estimates,
    required_sample_for_error,
    srs_count_estimate,
    srs_selectivity_variance,
)
from repro.estimation.estimate import Estimate


class TestSrsEstimate:
    def test_point_estimate_scales_up(self):
        est = srs_count_estimate(population=100, sampled=10, ones=3)
        assert est.value == pytest.approx(30.0)

    def test_full_sample_is_exact(self):
        est = srs_count_estimate(population=10, sampled=10, ones=4)
        assert est.exact
        assert est.value == 4.0
        assert est.variance == 0.0

    def test_zero_ones_zero_variance(self):
        est = srs_count_estimate(population=100, sampled=10, ones=0)
        assert est.value == 0.0
        assert est.variance == 0.0

    def test_single_point_sample_is_conservative(self):
        est = srs_count_estimate(population=100, sampled=1, ones=1)
        assert est.value == 100.0
        assert est.variance > 0.0

    @pytest.mark.parametrize(
        "population,sampled,ones",
        [(0, 1, 0), (10, 0, 0), (10, 11, 0), (10, 5, 6), (10, 5, -1)],
    )
    def test_invalid_inputs_rejected(self, population, sampled, ones):
        with pytest.raises(EstimationError):
            srs_count_estimate(population, sampled, ones)

    def test_unbiased_by_exhaustive_enumeration(self):
        """E[û] over all C(N, m) samples equals the true count."""
        population = [1, 0, 1, 1, 0, 0, 1, 0]  # N=8, true count 4
        n = len(population)
        for m in (2, 3, 5):
            values = [
                srs_count_estimate(n, m, sum(s)).value
                for s in itertools.combinations(population, m)
            ]
            assert sum(values) / len(values) == pytest.approx(4.0)

    def test_variance_formula_matches_enumeration(self):
        """E[V̂] over all samples equals the true Var(û) (unbiased form)."""
        population = [1, 0, 1, 0, 0, 1]
        n = len(population)
        m = 3
        samples = list(itertools.combinations(population, m))
        estimates = [srs_count_estimate(n, m, sum(s)) for s in samples]
        values = [e.value for e in estimates]
        true_var = float(np.var(values))  # population variance over samples
        mean_estimated_var = sum(e.variance for e in estimates) / len(samples)
        assert mean_estimated_var == pytest.approx(true_var, rel=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(
        population=st.integers(2, 10_000),
        data=st.data(),
    )
    def test_property_estimate_in_feasible_range(self, population, data):
        sampled = data.draw(st.integers(1, population))
        ones = data.draw(st.integers(0, sampled))
        est = srs_count_estimate(population, sampled, ones)
        assert 0.0 <= est.value <= population
        assert est.variance >= 0.0


class TestSelectivityVariance:
    def test_zero_when_population_exhausted(self):
        assert srs_selectivity_variance(0.5, 10, 10) == 0.0

    def test_decreases_with_sample_size(self):
        small = srs_selectivity_variance(0.3, 10, 1000)
        large = srs_selectivity_variance(0.3, 100, 1000)
        assert large < small

    def test_zero_at_extreme_selectivities(self):
        assert srs_selectivity_variance(0.0, 10, 1000) == 0.0
        assert srs_selectivity_variance(1.0, 10, 1000) == 0.0

    def test_requires_positive_sample(self):
        with pytest.raises(EstimationError):
            srs_selectivity_variance(0.5, 0, 100)


class TestClusterEstimate:
    def test_point_estimate(self):
        est = cluster_count_estimate(total_space_blocks=10, block_ones=[2, 4])
        assert est.value == pytest.approx(30.0)

    def test_full_census_exact(self):
        est = cluster_count_estimate(2, [3, 5])
        assert est.exact and est.value == 8.0 and est.variance == 0.0

    def test_unbiased_by_exhaustive_enumeration(self):
        """E[Ŷ_b] over all block samples equals the true total."""
        blocks = [3, 0, 2, 5, 1]  # B=5, total 11
        for b in (2, 3):
            values = [
                cluster_count_estimate(5, list(s)).value
                for s in itertools.combinations(blocks, b)
            ]
            assert sum(values) / len(values) == pytest.approx(11.0)

    def test_homogeneous_blocks_zero_variance(self):
        est = cluster_count_estimate(10, [4, 4, 4])
        assert est.variance == 0.0

    def test_single_block_flagged_uncertain(self):
        est = cluster_count_estimate(10, [4])
        assert est.variance > 0.0

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            cluster_count_estimate(1, [1, 2])
        with pytest.raises(EstimationError):
            cluster_count_estimate(5, [])
        with pytest.raises(EstimationError):
            cluster_count_estimate(5, [-1])


class TestCombineTerms:
    def test_signed_combination(self):
        a = Estimate(value=100.0, variance=4.0, sample_points=10, population_points=50)
        b = Estimate(value=30.0, variance=1.0, sample_points=10, population_points=50)
        combined = combine_term_estimates([(1, a), (-1, b)])
        assert combined.value == pytest.approx(70.0)
        assert combined.variance == pytest.approx(5.0)

    def test_coefficients_squared_in_variance(self):
        a = Estimate(value=10.0, variance=1.0)
        combined = combine_term_estimates([(2, a)])
        assert combined.value == 20.0
        assert combined.variance == 4.0

    def test_exact_only_when_all_exact(self):
        a = Estimate(value=1.0, variance=0.0, exact=True)
        b = Estimate(value=1.0, variance=0.5, exact=False)
        assert combine_term_estimates([(1, a)]).exact
        assert not combine_term_estimates([(1, a), (1, b)]).exact

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            combine_term_estimates([])


class TestRequiredSample:
    def test_tighter_target_needs_more(self):
        loose = required_sample_for_error(10_000, 0.1, 0.2)
        tight = required_sample_for_error(10_000, 0.1, 0.05)
        assert tight > loose

    def test_capped_by_population(self):
        assert required_sample_for_error(100, 0.001, 0.001) == 100

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            required_sample_for_error(100, 0.0, 0.1)
        with pytest.raises(EstimationError):
            required_sample_for_error(100, 0.5, 0.0)
