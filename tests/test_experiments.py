"""Tests for the experiment harness (small run counts)."""

import pytest

from repro.experiments.ablations import (
    ablation_zero_fix,
    ablation_adaptive_cost,
    ablation_distinct_estimators,
    ablation_estimator_quality,
    ablation_fulfillment,
    ablation_stopping,
    ablation_strategies,
    ablation_variance_formula,
)
from repro.experiments.formatting import PAPER_COLUMNS, Table
from repro.experiments.runner import aggregate, run_cell
from repro.experiments.tables import figure_5_1, figure_5_2, figure_5_3
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.workloads.paper import make_selection_setup


class TestTableFormatting:
    def test_render_aligns_columns(self):
        table = Table(title="T", columns=["a", "bb"])
        table.add(["1", "2"])
        text = table.render()
        assert "T" in text and "bb" in text

    def test_wrong_row_width_rejected(self):
        table = Table(title="T", columns=["a"])
        with pytest.raises(ValueError):
            table.add(["1", "2"])

    def test_notes_rendered(self):
        table = Table(title="T", columns=["a"], notes=["hello"])
        assert "hello" in table.render()


class TestRunnerAggregation:
    def test_aggregate_columns(self):
        setup = make_selection_setup(output_tuples=100, tuples=1_000, seed=1)
        results = run_cell(
            setup, lambda: OneAtATimeInterval(d_beta=12.0), runs=5, seed0=1
        )
        cell = aggregate("x", results, true_count=setup.exact_count)
        assert cell.runs == 5
        assert cell.stages >= 1
        assert 0 <= cell.risk_pct <= 100
        assert cell.mean_relative_error is not None
        assert len(cell.row()) == len(PAPER_COLUMNS)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate("x", [])


class TestFigureTables:
    @pytest.mark.parametrize(
        "figure", [figure_5_1, figure_5_2, figure_5_3], ids=["5.1", "5.2", "5.3"]
    )
    def test_figure_renders_with_five_rows(self, figure):
        table = figure(runs=3)
        assert len(table.rows) == 5
        assert table.columns == PAPER_COLUMNS
        assert "paper rows" in table.render() or "quota" in table.render()


class TestAblations:
    def test_strategies_table(self):
        table = ablation_strategies(runs=3)
        assert len(table.rows) == 6

    def test_fulfillment_table(self):
        table = ablation_fulfillment(runs=3)
        assert [r[0] for r in table.rows] == ["full", "partial"]

    def test_adaptive_cost_table(self):
        table = ablation_adaptive_cost(runs=3)
        assert [r[0] for r in table.rows] == ["adaptive", "fixed-form"]

    def test_variance_table_shows_underestimate_when_clustered(self):
        table = ablation_variance_formula(samples=120, blocks_per_draw=15)
        rows = {r[0]: r for r in table.rows}
        # Random layout (the paper's workload): SRS approximation is close.
        assert float(rows["random"][4]) == pytest.approx(1.0, abs=0.35)
        # Clustered layout: the approximation understates severely — the
        # paper's stated reason for its large d_beta values.
        assert float(rows["clustered"][4]) < 0.5

    def test_estimator_quality_errors_shrink(self):
        table = ablation_estimator_quality(
            fractions=(0.02, 0.2), runs=10
        )
        first = float(table.rows[0][1])
        last = float(table.rows[1][1])
        assert last <= first

    def test_distinct_estimators_table(self):
        table = ablation_distinct_estimators(fraction=0.2, runs=5)
        names = [r[0] for r in table.rows]
        assert names == ["observed", "goodman", "chao1", "jackknife1"]

    def test_zero_fix_table(self):
        table = ablation_zero_fix(runs=3)
        assert len(table.rows) == 5

    def test_stopping_table(self):
        table = ablation_stopping(runs=3)
        assert len(table.rows) == 5
