"""Property suite: warm-started runs stay unbiased.

The catalog's warm-start contract is that priors are *steering only*:
pseudo-counts feed ``sel_plus`` (stage sizing) and the zero-selectivity
bound, but the estimator itself sees exactly the run's own observed
sample. These properties pin that contract under hypothesis-generated
priors and observations, plus an empirical mean-over-seeds check that
warm-started end-to-end estimates still centre on the exact count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro.estimation.selectivity import SelectivityTracker
from repro import caches
from repro.relational import cmp, count_exact, rel


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    caches.get("plans").clear()
    yield
    caches.get("plans").clear()


priors = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
).filter(lambda tp: tp[0] <= tp[1])

stages = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 500)).filter(
        lambda tp: tp[0] <= tp[1]
    ),
    min_size=1,
    max_size=6,
)


class TestTrackerProperties:
    @given(prior=priors, observed=stages)
    @settings(max_examples=200, deadline=None)
    def test_observed_counts_never_include_prior(self, prior, observed):
        """The estimator-facing counts are the run's own sample, exactly."""
        warm = SelectivityTracker("s", initial=1.0)
        warm.warm_start(*prior)
        cold = SelectivityTracker("s", initial=1.0)
        for tuples, points in observed:
            warm.record_stage(tuples, points)
            cold.record_stage(tuples, points)
        assert warm.total_tuples == cold.total_tuples == sum(
            t for t, _ in observed
        )
        assert warm.total_points == cold.total_points == sum(
            p for _, p in observed
        )
        assert (
            warm.per_stage_selectivities() == cold.per_stage_selectivities()
        )

    @given(prior=priors, observed=stages)
    @settings(max_examples=200, deadline=None)
    def test_sel_prev_is_the_pooled_mean(self, prior, observed):
        warm = SelectivityTracker("s", initial=1.0)
        warm.warm_start(*prior)
        for tuples, points in observed:
            warm.record_stage(tuples, points)
        tuples = sum(t for t, _ in observed) + prior[0]
        points = sum(p for _, p in observed) + prior[1]
        assert warm.sel_prev == pytest.approx(tuples / points)
        assert 0.0 <= warm.sel_prev <= 1.0

    @given(prior=priors)
    @settings(max_examples=100, deadline=None)
    def test_prior_alone_sets_sel_prev_without_observation(self, prior):
        warm = SelectivityTracker("s", initial=1.0)
        warm.warm_start(*prior)
        assert warm.stages_observed == 0
        assert warm.sel_prev == pytest.approx(prior[0] / prior[1])
        if prior[0] == 0:
            # A zero-tuple prior still goes through the zero-selectivity
            # fix, so the stage sizing never divides by zero.
            assert warm.effective_sel_prev() > 0.0

    @given(prior=priors, observed=stages)
    @settings(max_examples=100, deadline=None)
    def test_salvage_restore_is_prior_preserving(self, prior, observed):
        warm = SelectivityTracker("s", initial=1.0)
        warm.warm_start(*prior)
        token = warm.snapshot()
        before = (warm.prior_tuples, warm.prior_points, warm.sel_prev)
        for tuples, points in observed:
            warm.record_stage(tuples, points)
        warm.restore(token)
        assert (warm.prior_tuples, warm.prior_points, warm.sel_prev) == before
        assert warm.total_points == 0


class TestEndToEndUnbiasedness:
    def test_warm_started_estimates_centre_on_exact_count(self):
        """Mean over seeds of warm-started runs ≈ exact count.

        Each seeded run first executes cold (populating the catalog), then
        we measure the warm replays only — the runs whose stage sizing was
        steered by the posterior. Their per-seed estimates vary, but the
        average must sit on the true count if priors never leak into the
        estimator.
        """
        db = Database(seed=23)
        db.create_relation(
            "bias",
            [("id", "int"), ("a", "int")],
            rows=[(i, i % 101) for i in range(30_000)],
        )
        expr = rel("bias").where(cmp("a", "<", 7))
        exact = count_exact(expr, db.catalog)
        warm = QueryOptions(synopses=True)
        db.estimate(expr, quota=3.0, seed=1, options=warm)  # cold fill

        values = []
        for seed in range(2, 42):
            result = db.estimate(expr, quota=3.0, seed=seed, options=warm)
            assert result.report.estimate is not None
            values.append(result.report.estimate.value)
        mean = sum(values) / len(values)
        # 40 seeds of a clustered estimator: allow a 10% band around truth.
        assert abs(mean - exact) / exact < 0.10
