"""The unified cache registry — ``repro.caches`` — and the legacy names.

One management surface for all four process-wide caches (kernels, plans,
bufferpool, shards): named handles with ``info()``/``clear()``, whole-
registry ``caches.info()``/``caches.clear()``, and the six pre-existing
module-level helpers demoted to ``DeprecationWarning``-emitting delegates
that still work. The suite's CI runs a ``-W error::DeprecationWarning``
leg, so everything internal goes through the registry; these tests are the
one sanctioned place the old names are still called.
"""

from __future__ import annotations

import pytest

import repro
from repro import caches
from repro.core.database import Database
from repro.errors import ReproError
from repro.relational.expression import rel
from repro.relational.predicate import cmp


@pytest.fixture(autouse=True)
def fresh_registry():
    caches.clear()
    yield
    caches.clear()


def populate_all_caches():
    """One estimate that touches kernels, plans, bufferpool, and shards."""
    db = Database(seed=17)
    db.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 7) for i in range(3_000)],
        partitions=2,
    )
    db.estimate(
        rel("r1").where(cmp("a", "<", 3)), quota=4.0, seed=1,
        vectorized=True, bufferpool=True, partitions=1,
    )


class TestRegistry:
    def test_names_cover_all_four_caches(self):
        assert caches.names() == ("kernels", "plans", "bufferpool", "shards")

    def test_get_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown cache"):
            caches.get("plans_cache")

    def test_handles_carry_descriptions(self):
        for handle in caches.handles():
            assert handle.description
            assert caches.get(handle.name) is handle

    def test_info_returns_counters_for_every_cache(self):
        populate_all_caches()
        info = caches.info()
        assert set(info) == set(caches.names())
        for counters in info.values():
            for field in ("hits", "misses", "maxsize", "currsize"):
                assert getattr(counters, field) >= 0
        assert info["plans"].currsize >= 1
        assert info["shards"].currsize >= 1
        assert info["kernels"].currsize >= 1

    def test_clear_one_cache_leaves_the_rest(self):
        populate_all_caches()
        assert caches.get("plans").info().currsize >= 1
        shards_before = caches.get("shards").info().currsize
        caches.clear("plans")
        assert caches.get("plans").info().currsize == 0
        assert caches.get("shards").info().currsize == shards_before

    def test_clear_all(self):
        populate_all_caches()
        caches.clear()
        for name, counters in caches.info().items():
            assert counters.currsize == 0, name
            assert counters.hits == 0, name


LEGACY = [
    ("kernels", "kernel_cache_info", "clear_kernel_cache"),
    ("plans", "plan_cache_info", "clear_plan_cache"),
    ("bufferpool", "bufferpool_cache_info", "clear_bufferpool_cache"),
]


class TestLegacyNames:
    @pytest.mark.parametrize("cache,info_name,clear_name", LEGACY)
    def test_old_info_warns_and_matches_registry(
        self, cache, info_name, clear_name
    ):
        populate_all_caches()
        with pytest.warns(DeprecationWarning, match=f"{info_name}.*repro.caches"):
            legacy = getattr(repro, info_name)()
        assert legacy == caches.get(cache).info()

    @pytest.mark.parametrize("cache,info_name,clear_name", LEGACY)
    def test_old_clear_warns_and_clears(self, cache, info_name, clear_name):
        populate_all_caches()
        with pytest.warns(DeprecationWarning, match=f"{clear_name}.*repro.caches"):
            getattr(repro, clear_name)()
        assert caches.get(cache).info().currsize == 0

    def test_all_six_still_exported_from_repro(self):
        for _, info_name, clear_name in LEGACY:
            assert callable(getattr(repro, info_name))
            assert callable(getattr(repro, clear_name))

    def test_relation_invalidation_hooks_do_not_warn(self, recwarn):
        """Mutation plumbing is not deprecated — only the management names."""
        from repro.planner.cache import invalidate_plan_cache_relation
        from repro.storage.bufferpool import invalidate_bufferpool_relation
        from repro.storage.partitioned import invalidate_shard_cache_relation

        invalidate_plan_cache_relation("nope")
        invalidate_bufferpool_relation("nope")
        invalidate_shard_cache_relation("nope")
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
