"""Chaos stress: ~50 interleaved faulted sessions stay total and replayable.

Extends the session-isolation stress (``test_session_stress.py``) with fault
injection: every session carries a different :class:`FaultPlan` drawn from a
small zoo of failure modes. The invariants under chaos:

* **totality** — no exception ever escapes ``QuerySession.run()``;
* **no overspend** — injected stalls and wasted retries never let in-time
  work exceed the quota;
* **replayability** — the same session seed + fault plan reproduces the run
  bit-for-bit, interleaved or serial;
* **zero-probability identity** — an inactive plan (or probability-0 plan)
  is byte-for-byte the unfaulted path.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import Database
from repro.estimation.aggregates import sum_of
from repro.faults.plan import FaultPlan
from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import cmp
from repro.server.workload import demo_database

SESSIONS = 50
TUPLES = 1_200

PLANS = (
    FaultPlan(read_error_prob=0.05),
    FaultPlan(slow_read_prob=0.10, slow_read_factor=3.0),
    FaultPlan(stage_overrun_prob=0.30, stage_overrun_seconds=0.05),
    FaultPlan(
        read_error_prob=0.03,
        slow_read_prob=0.05,
        stage_overrun_prob=0.20,
        stage_overrun_seconds=0.02,
        seed_salt=7,
    ),
    FaultPlan(fail_stages=(1,), salvage="continue"),
    FaultPlan(fail_stages=(2,), salvage="finish"),
    FaultPlan(read_error_prob=0.08, max_injections=2),
)


def make_db() -> Database:
    return demo_database(seed=29, tuples=TUPLES, analyze=False)


def spec(i: int, fault_plan: FaultPlan | None) -> dict:
    """Session ``i``'s query mix (mirrors the isolation stress test)."""
    kind = i % 4
    if kind == 0:
        expr = select(rel("r1"), cmp("a", "<", 100 + 20 * i))
        aggregate = None
    elif kind == 1:
        expr = select(rel("r2"), cmp("a", ">", 10 * i))
        aggregate = None
    elif kind == 2:
        expr = rel("r1")
        aggregate = sum_of("b")
    else:
        expr = intersect(rel("r1"), rel("r2"))
        aggregate = None
    return {
        "expr": expr,
        "quota": 0.5 + (i % 5) * 0.5,
        "seed": 1_000 + i,
        "aggregate": aggregate,
        "fault_plan": fault_plan,
    }


def signature(result) -> tuple:
    """Everything observable about one run, faults included."""
    report = result.report
    estimate = report.estimate
    return (
        None if estimate is None else estimate.value,
        None if estimate is None else estimate.variance,
        report.termination,
        len(report.stages),
        report.total_blocks,
        tuple((s.fraction, s.duration, s.blocks_read) for s in report.stages),
        tuple(
            (f.stage, f.fault_kind, f.wasted_seconds, f.action)
            for f in report.faults
        ),
        report.wasted_seconds,
    )


def run_batch(order=None) -> dict[int, tuple]:
    """Open all faulted sessions up front, run them in ``order``."""
    db = make_db()
    sessions = {
        i: db.open_session(**spec(i, PLANS[i % len(PLANS)]))
        for i in range(SESSIONS)
    }
    signatures = {}
    for i in order if order is not None else range(SESSIONS):
        signatures[i] = signature(sessions[i].run())
    return signatures


@pytest.fixture(scope="module")
def chaos_signatures():
    """The reference pass: interleaved in a shuffled order."""
    order = list(range(SESSIONS))
    random.Random(13).shuffle(order)
    return run_batch(order)


class TestTotalityUnderChaos:
    def test_no_fault_escapes_and_every_run_terminates(
        self, chaos_signatures
    ):
        # run_batch calling .run() bare is the assertion: any escaped
        # InjectedFault/StorageError would have failed the fixture.
        assert len(chaos_signatures) == SESSIONS
        terminations = {sig[2] for sig in chaos_signatures.values()}
        assert terminations <= {
            "deadline",
            "exhausted",
            "no_feasible_stage",
            "degraded",
            "interrupted",
            "max_stages",
        }

    def test_chaos_actually_injected_faults(self, chaos_signatures):
        faulted = [s for s in chaos_signatures.values() if s[6]]
        assert faulted, "the fault zoo injected nothing — chaos is a no-op"

    def test_no_overspend_of_in_time_work(self):
        db = make_db()
        for i in range(SESSIONS):
            arguments = spec(i, PLANS[i % len(PLANS)])
            result = db.open_session(**arguments).run()
            in_time = sum(
                s.duration
                for s in result.report.stages
                if s.completed_in_time
            )
            assert in_time <= arguments["quota"] + 1e-9, (
                f"session {i} overspent: {in_time} > {arguments['quota']}"
            )
            assert result.report.wasted_seconds >= 0.0


class TestFaultReplayability:
    def test_same_fault_seeds_replay_bit_identically(self, chaos_signatures):
        assert run_batch() == chaos_signatures

    def test_reversed_interleaving_matches_too(self, chaos_signatures):
        assert run_batch(reversed(range(SESSIONS))) == chaos_signatures


class TestZeroProbabilityIdentity:
    def test_inactive_plan_is_byte_identical_to_no_plan(self):
        db_plain = make_db()
        db_zero = make_db()
        for i in range(SESSIONS // 2):
            plain = db_plain.open_session(**spec(i, None)).run()
            zero = db_zero.open_session(**spec(i, FaultPlan())).run()
            assert signature(zero) == signature(plain)

    def test_exhausted_cap_still_replays_identically(self):
        plan = FaultPlan(read_error_prob=0.5, max_injections=1)
        first = make_db().open_session(**spec(3, plan)).run()
        second = make_db().open_session(**spec(3, plan)).run()
        assert signature(first) == signature(second)
