"""Unit tests for repro.faults: plans, derived RNG, injector, storage hook.

The subsystem's determinism contract is the focus: the fault stream derives
from the session RNG's *seed material* without consuming the session stream,
probability draws happen in a fixed order, and every injection either raises
a structured :class:`InjectedFault` or charges a raw penalty on the charger.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import (
    InjectedFault,
    QuotaExpired,
    ReproError,
    StorageError,
    TimeControlError,
)
from repro.faults.events import FaultInjected, FaultSalvaged
from repro.faults.injector import FaultInjector, derive_fault_rng
from repro.faults.plan import FaultPlan
from repro.observability import RecordingSink
from repro.observability.trace import event_from_dict
from repro.storage.heapfile import HeapFile
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile

from tests.conftest import make_relation


def unit_injector(plan: FaultPlan, seed: int = 3, sink=None) -> FaultInjector:
    return FaultInjector(plan, np.random.default_rng(seed), sink)


class TestFaultPlanValidation:
    @pytest.mark.parametrize(
        "field", ["read_error_prob", "slow_read_prob", "stage_overrun_prob"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probabilities_must_be_in_unit_interval(self, field, value):
        with pytest.raises(ReproError, match="must be in"):
            FaultPlan(**{field: value})

    def test_negative_slow_read_factor_rejected(self):
        with pytest.raises(ReproError, match="slow_read_factor"):
            FaultPlan(slow_read_factor=-1.0)

    def test_negative_overrun_seconds_rejected(self):
        with pytest.raises(ReproError, match="stage_overrun_seconds"):
            FaultPlan(stage_overrun_seconds=-0.5)

    def test_unknown_salvage_mode_rejected(self):
        with pytest.raises(ReproError, match="salvage"):
            FaultPlan(salvage="panic")

    def test_fail_stages_must_be_positive(self):
        with pytest.raises(ReproError, match="fail_stages"):
            FaultPlan(fail_stages=(0,))

    def test_negative_max_injections_rejected(self):
        with pytest.raises(ReproError, match="max_injections"):
            FaultPlan(max_injections=-1)

    def test_fail_stages_normalised_to_tuple(self):
        assert FaultPlan(fail_stages=[2, 3]).fail_stages == (2, 3)

    def test_default_plan_is_inactive(self):
        assert not FaultPlan().active

    def test_any_schedule_activates(self):
        assert FaultPlan(read_error_prob=0.01).active
        assert FaultPlan(slow_read_prob=0.01).active
        assert FaultPlan(stage_overrun_prob=0.01).active
        assert FaultPlan(fail_stages=(1,)).active

    def test_zero_injection_cap_deactivates(self):
        assert not FaultPlan(read_error_prob=1.0, max_injections=0).active


class TestDerivedFaultRng:
    def test_does_not_consume_the_session_stream(self):
        rng = np.random.default_rng(42)
        twin = np.random.default_rng(42)
        derive_fault_rng(rng, salt=5)
        assert rng.random() == twin.random()

    def test_deterministic_given_seed_and_salt(self):
        a = derive_fault_rng(np.random.default_rng(7), salt=3)
        b = derive_fault_rng(np.random.default_rng(7), salt=3)
        assert list(a.random(8)) == list(b.random(8))

    def test_salt_changes_the_stream(self):
        a = derive_fault_rng(np.random.default_rng(7), salt=0)
        b = derive_fault_rng(np.random.default_rng(7), salt=1)
        assert list(a.random(8)) != list(b.random(8))

    def test_independent_of_session_draws(self):
        rng = np.random.default_rng(9)
        before = derive_fault_rng(rng)
        rng.random(100)  # session does a lot of sampling
        after = derive_fault_rng(rng)
        assert list(before.random(4)) == list(after.random(4))


class TestInjectorProbabilisticFaults:
    def test_certain_read_error_raises_structured_fault(self, unit_charger):
        injector = unit_injector(FaultPlan(read_error_prob=1.0))
        injector.begin_stage(2)
        with pytest.raises(InjectedFault) as err:
            injector.on_block_read("r1", 4, unit_charger)
        fault = err.value
        assert fault.fault_kind == "read_error"
        assert fault.relation == "r1"
        assert fault.block_id == 4
        assert fault.stage == 2
        assert isinstance(fault, StorageError)
        assert isinstance(fault, ReproError)
        assert injector.injected_read_errors == 1

    def test_certain_slow_read_charges_factor_times_block_rate(
        self, unit_charger
    ):
        injector = unit_injector(
            FaultPlan(slow_read_prob=1.0, slow_read_factor=2.5)
        )
        injector.begin_stage(1)
        injector.on_block_read("r1", 0, unit_charger)
        # Unit profile: BLOCK_READ rate is 1 s, so the stall is 2.5 s.
        assert unit_charger.penalty_seconds == pytest.approx(2.5)
        assert unit_charger.clock.now() == pytest.approx(2.5)
        assert injector.injected_slow_reads == 1

    def test_zero_probability_plan_never_draws(self, unit_charger):
        injector = unit_injector(FaultPlan(fail_stages=(5,)))
        injector.begin_stage(1)
        state_before = injector.rng.bit_generator.state
        injector.on_block_read("r1", 0, unit_charger)
        assert injector.rng.bit_generator.state == state_before

    def test_same_seed_replays_the_same_faults(self, unit_charger):
        plan = FaultPlan(read_error_prob=0.3)

        def outcomes(seed):
            injector = FaultInjector(plan, np.random.default_rng(seed))
            injector.begin_stage(1)
            fired = []
            for block in range(40):
                try:
                    injector.on_block_read("r1", block, unit_charger)
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert outcomes(11) == outcomes(11)
        assert True in outcomes(11)  # 40 draws at p=0.3: some fault fires

    def test_max_injections_caps_total_faults(self, unit_charger):
        injector = unit_injector(
            FaultPlan(read_error_prob=1.0, max_injections=2)
        )
        injector.begin_stage(1)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.on_block_read("r1", 0, unit_charger)
        injector.on_block_read("r1", 0, unit_charger)  # cap reached: no-op
        assert injector.total_injected == 2


class TestScheduledFaults:
    def test_fail_stage_fires_only_on_first_attempt(self, unit_charger):
        injector = unit_injector(FaultPlan(fail_stages=(1,)))
        injector.begin_stage(1)
        with pytest.raises(InjectedFault):
            injector.on_block_read("r1", 0, unit_charger)
        injector.begin_stage(1)  # the executor retries the stage
        injector.on_block_read("r1", 0, unit_charger)  # attempt 2: clean
        assert injector.attempts(1) == 2

    def test_fail_stage_only_hits_listed_stages(self, unit_charger):
        injector = unit_injector(FaultPlan(fail_stages=(2,)))
        injector.begin_stage(1)
        injector.on_block_read("r1", 0, unit_charger)
        injector.begin_stage(2)
        with pytest.raises(InjectedFault):
            injector.on_block_read("r1", 0, unit_charger)

    def test_scheduled_fault_event_is_marked(self, unit_charger):
        sink = RecordingSink()
        injector = unit_injector(FaultPlan(fail_stages=(1,)), sink=sink)
        injector.begin_stage(1)
        with pytest.raises(InjectedFault):
            injector.on_block_read("r1", 3, unit_charger)
        (event,) = sink.of_kind("fault_injected")
        assert event.scheduled is True
        assert event.block_id == 3


class TestStageOverrun:
    def test_certain_overrun_charges_raw_penalty(self, unit_charger):
        sink = RecordingSink()
        injector = unit_injector(
            FaultPlan(stage_overrun_prob=1.0, stage_overrun_seconds=0.75),
            sink=sink,
        )
        injector.begin_stage(1)
        penalty = injector.maybe_overrun(1, unit_charger)
        assert penalty == pytest.approx(0.75)
        assert unit_charger.penalty_seconds == pytest.approx(0.75)
        (event,) = sink.of_kind("fault_injected")
        assert event.fault_kind == "stage_overrun"
        assert injector.injected_overruns == 1

    def test_overrun_can_trip_the_hard_deadline(self, unit_charger):
        injector = unit_injector(
            FaultPlan(stage_overrun_prob=1.0, stage_overrun_seconds=5.0)
        )
        unit_charger.arm(deadline=1.0, hard=True)
        with pytest.raises(QuotaExpired):
            injector.maybe_overrun(1, unit_charger)
        # The stall still advanced the clock (the time really passed).
        assert unit_charger.clock.now() == pytest.approx(5.0)


class TestStorageIntegration:
    def test_read_block_consults_the_injector_after_charging(
        self, int_schema, unit_charger
    ):
        heap = make_relation("r", int_schema, [(i, i) for i in range(8)])
        injector = unit_injector(FaultPlan(read_error_prob=1.0))
        injector.begin_stage(1)
        with pytest.raises(InjectedFault) as err:
            heap.read_block(0, unit_charger, injector)
        assert err.value.relation == "r"
        assert err.value.block_id == 0
        # The failed read's I/O was still charged: the time is wasted.
        assert unit_charger.clock.now() == pytest.approx(1.0)

    def test_clean_reads_with_inactive_injector_are_unaffected(
        self, int_schema, unit_charger
    ):
        heap = make_relation("r", int_schema, [(i, i) for i in range(8)])
        injector = unit_injector(FaultPlan(fail_stages=(9,)))
        injector.begin_stage(1)
        rows = heap.read_block(0, unit_charger, injector)
        assert rows == heap.read_block(0, unit_charger)

    def test_bad_block_id_raises_structured_storage_error(
        self, int_schema, unit_charger
    ):
        heap = make_relation("r", int_schema, [(1, 1)])
        with pytest.raises(StorageError) as err:
            heap.read_block(99, unit_charger)
        assert err.value.relation == "r"
        assert err.value.block_id == 99


class TestChargerPenalty:
    def test_penalty_advances_clock_without_touching_the_rng(self):
        profile = MachineProfile.uniform(1.0, noise_sigma=0.3)
        charger = CostCharger(profile, rng=np.random.default_rng(5))
        state_before = charger._rng.bit_generator.state
        charger.penalty(1.5)
        assert charger.clock.now() == pytest.approx(1.5)
        assert charger.penalty_seconds == pytest.approx(1.5)
        assert charger._rng.bit_generator.state == state_before

    def test_negative_penalty_rejected(self, unit_charger):
        with pytest.raises(TimeControlError):
            unit_charger.penalty(-0.1)

    def test_penalty_honours_the_armed_hard_deadline(self, unit_charger):
        unit_charger.arm(deadline=1.0, hard=True)
        with pytest.raises(QuotaExpired):
            unit_charger.penalty(2.0)
        assert unit_charger.crossed_at == pytest.approx(2.0)


class TestErrorContext:
    def test_with_context_first_writer_wins(self):
        error = StorageError("boom", relation="r1", block_id=2)
        error.with_context(stage=3, session="session-9")
        error.with_context(stage=8, session="other")
        assert error.stage == 3
        assert error.session == "session-9"
        assert "stage 3" in error.context_suffix()
        assert "session-9" in error.context_suffix()

    def test_injected_fault_carries_stage_from_construction(self):
        fault = InjectedFault("x", relation="r", block_id=1, stage=4)
        assert fault.stage == 4
        fault.with_context(stage=9)
        assert fault.stage == 4  # construction-time context is preserved


class TestEventRoundTrip:
    @pytest.mark.parametrize(
        "event",
        [
            FaultInjected(
                stage=2,
                fault_kind="read_error",
                relation="r1",
                block_id=7,
                scheduled=True,
                clock=1.25,
            ),
            FaultInjected(
                stage=3,
                fault_kind="slow_read",
                relation="r2",
                block_id=0,
                penalty_seconds=0.4,
                clock=2.0,
            ),
            FaultSalvaged(
                stage=2,
                fault_kind="read_error",
                wasted_seconds=0.3,
                action="retry",
                clock=1.5,
            ),
        ],
    )
    def test_fault_events_round_trip_through_jsonl(self, event):
        line = json.dumps(event.to_dict())
        assert event_from_dict(json.loads(line)) == event
