"""Fluent expression construction builds trees identical to the builders.

Every chainable method on :class:`Expression` must produce a dataclass-equal
tree to the corresponding module-level builder, so the two styles are
interchangeable everywhere an expression is consumed.
"""

from __future__ import annotations

import pytest

from repro.relational.expression import (
    difference,
    intersect,
    join,
    project,
    rel,
    select,
    union,
)
from repro.relational.predicate import cmp

P1 = cmp("a", "<", 10)
P2 = cmp("b", ">", 3)


class TestFluentEqualsBuilders:
    def test_where(self):
        assert rel("r1").where(P1) == select(rel("r1"), P1)

    def test_project_varargs_and_sequence(self):
        built = project(rel("r1"), ("id", "a"))
        assert rel("r1").project("id", "a") == built
        assert rel("r1").project(["id", "a"]) == built

    def test_join_pair_form(self):
        fluent = rel("r1").join(rel("r2"), on=[("id", "ref")])
        assert fluent == join(rel("r1"), rel("r2"), on=[("id", "ref")])

    def test_join_string_item_form(self):
        fluent = rel("r1").join(rel("r2"), on=["id"])
        assert fluent == join(rel("r1"), rel("r2"), on=[("id", "id")])

    def test_join_bare_string_shorthand(self):
        assert rel("r1").join(rel("r2"), on="id") == join(
            rel("r1"), rel("r2"), on="id"
        )
        assert join(rel("r1"), rel("r2"), on="id") == join(
            rel("r1"), rel("r2"), on=[("id", "id")]
        )

    def test_union(self):
        assert rel("r1").union(rel("r2")) == union(rel("r1"), rel("r2"))

    def test_difference(self):
        assert rel("r1").difference(rel("r2")) == difference(
            rel("r1"), rel("r2")
        )

    def test_intersect(self):
        assert rel("r1").intersect(rel("r2")) == intersect(
            rel("r1"), rel("r2")
        )


class TestChaining:
    def test_select_join_project_chain(self):
        fluent = (
            rel("r1")
            .where(P1)
            .join(rel("r2").where(P2), on=[("id", "ref")])
            .project("id")
        )
        built = project(
            join(
                select(rel("r1"), P1),
                select(rel("r2"), P2),
                on=[("id", "ref")],
            ),
            ("id",),
        )
        assert fluent == built

    def test_set_operation_chain(self):
        fluent = rel("r1").where(P1).intersect(rel("r2")).union(rel("r3"))
        built = union(intersect(select(rel("r1"), P1), rel("r2")), rel("r3"))
        assert fluent == built

    def test_chains_are_immutable(self):
        base = rel("r1")
        derived = base.where(P1)
        assert base == rel("r1")  # chaining never mutates the receiver
        assert derived != base

    def test_round_trip_equality_is_symmetric(self):
        a = rel("r1").where(P1).join(rel("r2"), on="id")
        b = join(select(rel("r1"), P1), rel("r2"), on=[("id", "id")])
        assert a == b and b == a and hash(a) == hash(b)


class TestStructuralQueriesOnFluentTrees:
    def test_operator_count(self):
        expr = rel("r1").where(P1).join(rel("r2").where(P2), on="id")
        assert expr.operator_count() == 3

    def test_base_relations_order(self):
        expr = rel("r1").where(P1).join(rel("r2"), on="id").union(rel("r3"))
        assert expr.base_relations() == ["r1", "r2", "r3"]

    def test_contains_projection(self):
        assert rel("r1").project("id").contains_projection()
        assert not rel("r1").where(P1).contains_projection()


class TestFluentErrors:
    def test_empty_relation_name_rejected(self):
        from repro.errors import ExpressionError

        with pytest.raises(ExpressionError):
            rel("")
