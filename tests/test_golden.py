"""Golden regression tests — pinned seeded outcomes.

A reproduction repository lives or dies by stable numbers: these tests pin
the exact outcomes of a handful of fully seeded runs so that accidental
behavioural changes (an operator charging differently, a strategy sizing
stages differently, an estimator formula drifting) show up as a diff, not
as a silent shift in the tables.

The pinned values depend only on this library's code and numpy's
``default_rng`` streams (stable across platforms for a given numpy major
version). If a change is *intentional*, update the constants here and
re-generate EXPERIMENTS.md.
"""

import pytest

from repro.timecontrol.strategies import OneAtATimeInterval
from repro.workloads.paper import (
    make_intersection_setup,
    make_join_setup,
    make_selection_setup,
)


class TestGoldenSelection:
    @pytest.fixture(scope="class")
    def result(self):
        setup = make_selection_setup(output_tuples=1_000, seed=3)
        return setup.database.estimate(
            setup.query,
            quota=setup.quota,
            strategy=OneAtATimeInterval(d_beta=24.0),
            seed=100,
        )

    def test_estimate_value(self, result):
        assert result.value == pytest.approx(943.82, abs=0.5)

    def test_run_shape(self, result):
        assert result.stages == 3
        assert result.blocks == 89
        assert result.overspent  # this particular seed gambles and loses
        assert result.termination == "deadline"

    def test_utilization(self, result):
        assert result.utilization == pytest.approx(0.9247, abs=0.01)


class TestGoldenJoin:
    @pytest.fixture(scope="class")
    def result(self):
        setup = make_join_setup(seed=3)
        return setup.database.estimate(
            setup.query,
            quota=setup.quota,
            strategy=OneAtATimeInterval(d_beta=24.0),
            initial_selectivities=setup.initial_selectivities,
            seed=100,
        )

    def test_estimate_value(self, result):
        assert result.value == pytest.approx(83246.62, abs=1.0)

    def test_run_shape(self, result):
        assert result.stages == 3
        assert result.blocks == 62
        assert not result.overspent
        assert result.termination == "no_feasible_stage" 


class TestGoldenIntersection:
    def test_deterministic_across_calls(self):
        """The same seeds give bit-identical runs (the whole premise of the
        200-run tables)."""
        outcomes = []
        for _ in range(2):
            setup = make_intersection_setup(seed=3)
            result = setup.database.estimate(
                setup.query,
                quota=setup.quota,
                strategy=OneAtATimeInterval(d_beta=12.0),
                seed=55,
            )
            outcomes.append(
                (
                    result.value if result.estimate else None,
                    result.stages,
                    result.blocks,
                    result.overspent,
                    result.termination,
                )
            )
        assert outcomes[0] == outcomes[1]
