"""Tests for the time-control strategies (Section 3.3)."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.errors import TimeControlError
from repro.relational.expression import join, rel, select
from repro.relational.predicate import cmp
from repro.timecontrol.strategies import (
    FixedFractionHeuristic,
    OneAtATimeInterval,
    SingleInterval,
)
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


@pytest.fixture
def catalog(int_schema):
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", int_schema, [(i, i % 10) for i in range(400)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", int_schema, [(i, i % 10) for i in range(200, 600)], block_size=16
        ),
    )
    return catalog


def fresh_plan(catalog, expr, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.01, noise_sigma=noise), rng=rng)
    return StagedPlan(expr, catalog, charger, CostModel(), rng)


class TestOneAtATimeInterval:
    def test_invalid_d_beta_rejected(self):
        with pytest.raises(TimeControlError):
            OneAtATimeInterval(d_beta=-1.0)

    def test_infeasible_budget_returns_none(self, catalog):
        plan = fresh_plan(catalog, rel("r1"))
        strategy = OneAtATimeInterval(d_beta=12.0)
        assert strategy.choose_fraction(plan, 1e-9, 1) is None

    def test_generous_budget_takes_everything(self, catalog):
        plan = fresh_plan(catalog, rel("r1"))
        strategy = OneAtATimeInterval(d_beta=12.0)
        f = strategy.choose_fraction(plan, 1e9, 1)
        assert f == pytest.approx(plan.max_remaining_fraction())

    def test_larger_d_beta_never_larger_fraction(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        # Warm two identical plans with the same first stage, then compare
        # the second stage fractions chosen at different d_beta.
        fractions = {}
        for d_beta in (0.0, 48.0):
            plan = fresh_plan(catalog, expr, seed=1)
            plan.advance_stage(0.05)
            f = OneAtATimeInterval(d_beta=d_beta).choose_fraction(plan, 1.2, 2)
            assert f is not None
            fractions[d_beta] = f
        assert fractions[48.0] <= fractions[0.0]

    def test_sel_provider_uses_sel_plus(self):
        strategy = OneAtATimeInterval(d_beta=24.0)
        provider = strategy.sel_provider()
        from repro.estimation.selectivity import SelectivityTracker

        tracker = SelectivityTracker("x", initial=1.0)
        tracker.record_stage(10, 100)
        assert provider(tracker, 100, 100_000) > 0.1  # margin added

    def test_describe(self):
        assert "24" in OneAtATimeInterval(d_beta=24.0).describe()


class TestSingleInterval:
    def test_invalid_d_alpha_rejected(self):
        with pytest.raises(TimeControlError):
            SingleInterval(d_alpha=-0.5)

    def test_chooses_feasible_fraction(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        plan = fresh_plan(catalog, expr, seed=2)
        plan.advance_stage(0.05)
        f = SingleInterval(d_alpha=2.0).choose_fraction(plan, 2.0, 2)
        assert f is not None and 0 < f <= 1

    def test_reservation_shrinks_fraction(self, catalog):
        """A positive d_alpha reserves time, so the chosen fraction can
        only shrink relative to d_alpha = 0."""
        expr = select(rel("r1"), cmp("a", "<", 3))
        fractions = {}
        for d_alpha in (0.0, 4.0):
            plan = fresh_plan(catalog, expr, seed=3)
            plan.advance_stage(0.05)
            plan.advance_stage(0.05)  # two stages → covariance data exists
            f = SingleInterval(d_alpha=d_alpha).choose_fraction(plan, 1.5, 3)
            assert f is not None
            fractions[d_alpha] = f
        assert fractions[4.0] <= fractions[0.0]

    def test_describe(self):
        assert "2" in SingleInterval(d_alpha=2.0).describe()


class TestFixedFractionHeuristic:
    def test_invalid_gamma_rejected(self):
        with pytest.raises(TimeControlError):
            FixedFractionHeuristic(gamma=0.0)
        with pytest.raises(TimeControlError):
            FixedFractionHeuristic(gamma=1.5)

    def test_first_stage_is_probe(self, catalog):
        plan = fresh_plan(catalog, rel("r1"))
        strategy = FixedFractionHeuristic(gamma=0.5, probe_fraction=0.02)
        f = strategy.choose_fraction(plan, 10.0, 1)
        assert f == pytest.approx(0.02)

    def test_later_stages_sized_from_measured_rate(self, catalog):
        plan = fresh_plan(catalog, rel("r1"))
        strategy = FixedFractionHeuristic(gamma=0.5)
        strategy.note_stage(seconds=1.0, blocks=10)  # 0.1 s/block
        # remaining 4s → target 2s → 20 blocks of 200 total → f = 0.1
        f = strategy.choose_fraction(plan, 4.0, 2)
        assert f == pytest.approx(0.1, rel=0.01)

    def test_exhausted_plan_returns_none(self, catalog):
        plan = fresh_plan(catalog, rel("r1"))
        plan.advance_stage(1.0)
        strategy = FixedFractionHeuristic()
        assert strategy.choose_fraction(plan, 10.0, 2) is None

    def test_note_stage_ignores_empty(self):
        strategy = FixedFractionHeuristic()
        strategy.note_stage(seconds=0.0, blocks=0)
        assert strategy._seconds_per_block is None
