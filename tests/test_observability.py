"""Tests of the structured tracing layer (repro.observability).

Covers the sinks in isolation, the full event stream of a multi-stage
selection run against its :class:`RunReport`, the JSONL round-trip, the
opt-in cost tracing, and the hard-deadline mid-stage abort trace.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.database import Database
from repro.costmodel.linear import StepSpec
from repro.costmodel.model import CostModel
from repro.costmodel.steps import default_step_specs
from repro.observability import (
    NULL_SINK,
    CostCharged,
    DeadlineAbort,
    FractionChosen,
    JsonlSink,
    NullSink,
    OperatorAdvance,
    QueryEnd,
    QueryStart,
    RecordingSink,
    ScanAdvance,
    SelectivityRevision,
    StageEnd,
    StageStart,
    TeeSink,
    TraceSink,
    event_from_dict,
    read_jsonl_trace,
)
from repro.relational import cmp, rel, select
from repro.timecontrol.stopping import HardDeadline
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.timekeeping.profile import MachineProfile
from repro.workloads.paper import make_selection_setup


def calibrated_cost_model(rate: float) -> CostModel:
    """Priors matching a uniform(rate) machine (see tests/test_executor.py)."""
    specs = {}
    for name, spec in default_step_specs().items():
        specs[name] = StepSpec(
            name,
            prior=tuple(rate for _ in spec.prior),
            scales=spec.scales,
            weight=0.05,
        )
    return CostModel(specs=specs)


# ----------------------------------------------------------------------
# Sinks in isolation
# ----------------------------------------------------------------------
class TestSinks:
    def test_null_sink_is_a_sink_and_drops(self):
        assert isinstance(NULL_SINK, TraceSink)
        NULL_SINK.emit(QueryStart(quota=1.0))  # no effect, no error

    def test_recording_sink_keeps_order(self):
        sink = RecordingSink()
        sink.emit(QueryStart(quota=1.0))
        sink.emit(StageStart(stage=1))
        sink.emit(QueryEnd(termination="deadline"))
        assert len(sink) == 3
        assert sink.kinds() == ["query_start", "stage_start", "query_end"]
        assert [e.kind for e in sink] == sink.kinds()

    def test_recording_sink_of_kind_by_string_and_type(self):
        sink = RecordingSink()
        sink.emit(StageStart(stage=1))
        sink.emit(StageEnd(stage=1))
        sink.emit(StageStart(stage=2))
        assert len(sink.of_kind("stage_start")) == 2
        assert sink.of_kind(StageStart) == sink.of_kind("stage_start")
        assert [e.stage for e in sink.of_kind(StageStart)] == [1, 2]
        sink.clear()
        assert len(sink) == 0

    def test_tee_sink_fans_out_in_order(self):
        a, b = RecordingSink(), RecordingSink()
        tee = TeeSink([a, b])
        tee.emit(StageStart(stage=1))
        assert a.events == b.events
        assert a.of_kind(StageStart)[0].stage == 1

    def test_jsonl_sink_borrows_file_object(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit(StageStart(stage=3, fraction=0.25))
        sink.close()  # borrowed: flushed, not closed
        assert not buffer.closed
        payload = json.loads(buffer.getvalue())
        assert payload["event"] == "stage_start"
        assert payload["stage"] == 3

    def test_jsonl_sink_owns_path_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        events = [
            QueryStart(quota=2.0, strategy="x", stopping="HardDeadline"),
            FractionChosen(stage=1, fraction=0.5, bisection_iterations=7),
            StageEnd(stage=1, blocks_read=4, estimate_value=12.5),
            QueryEnd(termination="exhausted", stages_completed=1),
        ]
        with JsonlSink(path) as sink:
            for event in events:
                sink.emit(event)
            assert sink.events_written == len(events)
        assert read_jsonl_trace(path) == events

    def test_event_round_trip_every_type(self):
        samples = [
            QueryStart(quota=1.5, aggregate="sum", strategy="s", stopping="h"),
            QueryEnd(termination="deadline", estimate_value=None),
            FractionChosen(stage=2, fraction=None, budget_seconds=0.5),
            StageStart(stage=2, fraction=0.1, remaining_seconds=1.0),
            StageEnd(stage=2, aborted_mid_stage=True, completed_in_time=False),
            DeadlineAbort(stage=2, deadline=10.0, clock=10.2),
            ScanAdvance(stage=1, relation="r1", new_blocks=3, cum_blocks=3),
            OperatorAdvance(stage=1, operator="select#1", out_tuples=9),
            SelectivityRevision(operator="select#1", stage=1, sel_prev=0.4),
            CostCharged(cost_kind="block_read", amount=2.0, seconds=0.02),
        ]
        for event in samples:
            payload = json.loads(json.dumps(event.to_dict()))
            assert event_from_dict(payload) == event

    def test_event_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            event_from_dict({"event": "nope"})


# ----------------------------------------------------------------------
# The full trace of one multi-stage run
# ----------------------------------------------------------------------
TRACE_SEED = 1  # three in-time stages on the small Figure 5.1 cell below


def small_selection_setup():
    return make_selection_setup(output_tuples=100, tuples=1_000)


def traced_run(sink, seed=TRACE_SEED, **kwargs):
    setup = small_selection_setup()
    result = setup.database.estimate(
        setup.query,
        quota=setup.quota,
        seed=seed,
        sink=sink,
        strategy=OneAtATimeInterval(d_beta=24.0),
        initial_selectivities=setup.initial_selectivities,
        **kwargs,
    )
    return result


class TestRunTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        sink = RecordingSink()
        result = traced_run(sink)
        return sink, result.report

    def test_run_is_three_stages(self, trace):
        _, report = trace
        assert report.stages_completed_in_time >= 3

    def test_brackets_query_start_end(self, trace):
        sink, report = trace
        first, last = sink.events[0], sink.events[-1]
        assert isinstance(first, QueryStart)
        assert first.quota == report.quota
        assert first.aggregate == "count"
        assert "One-at-a-Time" in first.strategy or first.strategy
        assert isinstance(last, QueryEnd)
        assert last.termination == report.termination
        assert last.stages_completed == report.stages_completed_in_time
        assert last.estimate_value == pytest.approx(report.estimate.value)

    def test_stage_lifecycle_order(self, trace):
        """Per stage: fraction_chosen -> stage_start -> ... -> stage_end."""
        sink, report = trace
        for stage in report.stages:
            i = stage.index
            positions = {
                kind: [
                    k
                    for k, e in enumerate(sink.events)
                    if e.kind == kind and e.stage == i
                ]
                for kind in ("fraction_chosen", "stage_start", "stage_end")
            }
            assert len(positions["stage_start"]) == 1
            assert len(positions["stage_end"]) == 1
            assert positions["fraction_chosen"], f"stage {i} has no sizing event"
            assert (
                positions["fraction_chosen"][-1]
                < positions["stage_start"][0]
                < positions["stage_end"][0]
            )
        starts = [e.stage for e in sink.of_kind(StageStart)]
        assert starts == sorted(starts)

    def test_fraction_chosen_matches_stage(self, trace):
        sink, report = trace
        chosen = {e.stage: e for e in sink.of_kind(FractionChosen)}
        for stage in report.stages:
            event = chosen[stage.index]
            assert event.fraction == pytest.approx(stage.fraction)
            assert event.bisection_iterations >= 1

    def test_stage_end_mirrors_run_report(self, trace):
        sink, report = trace
        ends = sink.of_kind(StageEnd)
        assert len(ends) == len(report.stages)
        for event, stage in zip(ends, report.stages):
            assert event.stage == stage.index
            assert event.fraction == pytest.approx(stage.fraction)
            assert event.duration == pytest.approx(stage.duration)
            assert event.blocks_read == stage.blocks_read
            assert event.new_points == stage.new_points
            assert event.new_outputs == stage.new_outputs
            assert event.completed_in_time == stage.completed_in_time
            assert event.aborted_mid_stage == stage.aborted_mid_stage
            if stage.estimate is not None:
                assert event.estimate_value == pytest.approx(stage.estimate.value)

    def test_scan_advances_sum_to_stage_blocks(self, trace):
        sink, report = trace
        for stage in report.stages:
            scans = [e for e in sink.of_kind(ScanAdvance) if e.stage == stage.index]
            assert scans, f"stage {stage.index} drew no scan events"
            assert sum(e.new_blocks for e in scans) == stage.blocks_read

    def test_operator_advances_cover_new_points(self, trace):
        sink, report = trace
        for stage in report.stages:
            ops = [
                e for e in sink.of_kind(OperatorAdvance) if e.stage == stage.index
            ]
            assert ops, f"stage {stage.index} has no operator events"
            # One term, one select root: its new_points are the stage's.
            assert sum(e.new_points for e in ops) == stage.new_points
            assert sum(e.out_tuples for e in ops) == stage.new_outputs

    def test_selectivity_revisions_per_stage(self, trace):
        sink, report = trace
        revisions = sink.of_kind(SelectivityRevision)
        completed = sum(1 for s in report.stages if not s.aborted_mid_stage)
        assert len(revisions) == completed
        assert [e.stage for e in revisions] == list(range(1, completed + 1))
        assert all(e.operator.startswith("select") for e in revisions)

    def test_jsonl_trace_equals_recorded_trace(self, tmp_path, trace):
        recording, _ = trace
        path = str(tmp_path / "run.jsonl")
        with JsonlSink(path) as sink:
            traced_run(sink)  # identical seed => identical run
        replayed = read_jsonl_trace(path)
        assert [e.to_dict() for e in replayed] == [
            e.to_dict() for e in recording.events
        ]

    def test_cost_tracing_is_opt_in_and_accounts_for_elapsed(self):
        quiet = RecordingSink()
        traced_run(quiet)
        assert not quiet.of_kind(CostCharged)

        verbose = RecordingSink()
        traced_run(verbose, trace_costs=True)
        charges = verbose.of_kind(CostCharged)
        assert charges
        # The simulated clock advances only through charges, so the charge
        # seconds must account exactly for the run's elapsed time.
        elapsed = verbose.of_kind(QueryEnd)[0].elapsed_seconds
        assert sum(e.seconds for e in charges) == pytest.approx(elapsed)

    def test_untraced_run_is_bit_identical_to_traced(self):
        untraced = traced_run(None)
        traced = traced_run(RecordingSink())
        assert untraced.estimate == traced.estimate
        assert untraced.report.termination == traced.report.termination


# ----------------------------------------------------------------------
# Hard-deadline mid-stage abort (measure_overspend=False)
# ----------------------------------------------------------------------
class TestHardAbortTrace:
    def _interrupted_run(self):
        """Find a seed whose final stage the armed timer kills mid-flight."""
        db = Database(
            profile=MachineProfile.uniform(0.01, noise_sigma=0.3), seed=0
        )
        db.create_relation(
            "r1",
            [("id", "int"), ("a", "int")],
            rows=[(i, i % 10) for i in range(200)],
            block_size=16,
        )
        expr = select(rel("r1"), cmp("a", "<", 3))
        for seed in range(60):
            sink = RecordingSink()
            result = db.estimate(
                expr,
                quota=1.0,
                seed=seed,
                sink=sink,
                strategy=OneAtATimeInterval(d_beta=0.0),
                stopping=HardDeadline(),
                measure_overspend=False,
                cost_model=calibrated_cost_model(0.01),
            )
            if result.report.termination == "interrupted":
                return sink, result
        pytest.fail("no seed in 0..59 triggered a mid-stage interrupt")

    def test_abort_is_traced_and_estimate_is_last_completed_stage(self):
        sink, result = self._interrupted_run()
        report = result.report

        aborts = sink.of_kind(DeadlineAbort)
        assert len(aborts) == 1
        assert aborts[0].stage == report.stages[-1].index
        assert aborts[0].clock >= aborts[0].deadline

        last_end = sink.of_kind(StageEnd)[-1]
        assert last_end.stage == report.stages[-1].index
        assert last_end.aborted_mid_stage
        assert not last_end.completed_in_time
        assert last_end.estimate_value is None
        assert sink.of_kind(QueryEnd)[0].termination == "interrupted"

        # The QuotaExpired interrupt was absorbed: the answer is whatever the
        # last *completed* stage produced (None if stage 1 was killed).
        assert report.stages[-1].aborted_mid_stage
        completed = [s for s in report.stages if not s.aborted_mid_stage]
        if completed:
            assert result.estimate is not None
            assert result.estimate.value == pytest.approx(
                completed[-1].estimate.value
            )
        else:
            assert result.estimate is None

    def test_null_sink_hard_abort_unaffected(self):
        """The abort path itself must not depend on tracing being on."""
        db = Database(
            profile=MachineProfile.uniform(0.01, noise_sigma=0.3), seed=0
        )
        db.create_relation(
            "r1",
            [("id", "int"), ("a", "int")],
            rows=[(i, i % 10) for i in range(200)],
            block_size=16,
        )
        expr = select(rel("r1"), cmp("a", "<", 3))
        terminations = set()
        for seed in range(60):
            result = db.estimate(
                expr,
                quota=1.0,
                seed=seed,
                strategy=OneAtATimeInterval(d_beta=0.0),
                stopping=HardDeadline(),
                measure_overspend=False,
                cost_model=calibrated_cost_model(0.01),
            )
            terminations.add(result.report.termination)
        assert "interrupted" in terminations


class TestPlanSkipsEventWorkWhenUntraced:
    def test_null_sink_instance_check(self):
        assert isinstance(NULL_SINK, NullSink)
        # Regression guard: the default database path must wire NULL_SINK so
        # advance_stage's per-node bookkeeping stays disabled.
        setup = small_selection_setup()
        session = setup.database.open_session(
            setup.query, quota=setup.quota, seed=TRACE_SEED
        )
        assert isinstance(session.plan.sink, NullSink)
        assert isinstance(session.executor.sink, NullSink)
