"""Stage-granular preemption (repro.server.preempt + executor suspend).

The mechanics of the preemptive scheduler, layer by layer: the executor
can park a run at a stage boundary and continue it later; the session
wraps that in a resumable lifecycle; :func:`should_preempt` implements the
slack-aware EDF rule; and the server wires it all together behind the
``REPRO_PREEMPT`` switch (default off). Bit-identity of the suspend/resume
path is pinned separately in ``tests/test_preempt_identity.py``.
"""

from __future__ import annotations

import heapq

import pytest

from repro.errors import ReproError
from repro.observability import RecordingSink
from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import cmp
from repro.server.admission import AdmitAll
from repro.server.preempt import should_preempt
from repro.server.request import Outcome, QueryRequest
from repro.server.scheduler import QueryServer, _Ticket
from repro.server.workload import demo_database

TUPLES = 1_000


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=5, tuples=TUPLES)


def query(threshold: int = 600):
    return select(rel("r1"), cmp("a", "<", threshold))


def request(quota=2.0, arrival=0.0, priority=0, seed=1, expr=None, **kw):
    return QueryRequest(
        expr=expr if expr is not None else query(),
        quota=quota,
        arrival=arrival,
        priority=priority,
        seed=seed,
        **kw,
    )


def suspend_once():
    """A checkpoint that accepts the first boundary it sees, then declines
    (so the resumed run is not immediately re-suspended)."""
    state = {"fired": False}

    def checkpoint(report):
        if state["fired"]:
            return False
        state["fired"] = True
        return True

    return checkpoint


class TestExecutorSuspendResume:
    def test_checkpoint_suspends_between_stages(self, db):
        session = db.open_session(query(), quota=6.0, seed=7)
        out = session.run_preemptible(checkpoint=suspend_once())
        assert out is None
        assert session.suspended and not session.finished
        state = session.suspended_state
        # The checkpoint is only consulted after at least one stage banked
        # an estimate, so there is always something to resume *to*.
        assert state.stages_completed == 1
        assert state.report.stages[0].estimate is not None

    def test_suspension_is_free_on_the_clock(self, db):
        session = db.open_session(query(), quota=6.0, seed=7)
        session.run_preemptible(checkpoint=suspend_once())
        state = session.suspended_state
        # Parked exactly at the boundary: no charge for suspending, and
        # the residual budget is just the distance to the deadline.
        assert state.suspended_at == session.charger.clock.now()
        assert state.residual_budget(state.suspended_at) == pytest.approx(
            state.deadline - state.suspended_at
        )

    def test_resume_completes_the_run(self, db):
        session = db.open_session(query(), quota=6.0, seed=7)
        session.run_preemptible(checkpoint=suspend_once())
        result = session.resume()
        assert result is not None
        assert session.finished and not session.suspended
        assert result.report.stages_completed_in_time > 1
        assert result.estimate is not None

    def test_lifecycle_misuse_raises(self, db):
        session = db.open_session(query(), quota=6.0, seed=7)
        with pytest.raises(ReproError):
            session.resume()  # nothing suspended yet
        session.run_preemptible(checkpoint=suspend_once())
        with pytest.raises(ReproError):
            session.run_preemptible()  # suspended: must resume, not rerun
        session.resume()
        with pytest.raises(ReproError):
            session.run()  # already finished

    def test_expired_deadline_resume_keeps_the_banked_estimate(self, db):
        session = db.open_session(query(), quota=4.0, seed=7)
        session.run_preemptible(checkpoint=suspend_once())
        banked = session.suspended_state.report.stages[0].estimate
        # The queue starves the parked run past its absolute deadline.
        session.charger.clock.advance(10.0)
        result = session.resume()
        assert result is not None
        assert result.report.termination == "deadline"
        assert result.estimate is not None
        assert result.estimate.value == pytest.approx(banked.value)

    def test_plain_run_is_unchanged(self, db):
        session = db.open_session(query(), quota=4.0, seed=7)
        result = session.run()
        assert result is not None and session.finished
        assert not session.suspended


class TestShouldPreempt:
    def ticket(self, deadline, priority=0, seq=0, quota=5.0, min_cost=0.1):
        return _Ticket(
            priority=priority,
            deadline=deadline,
            seq=seq,
            request=request(quota=quota, seed=seq + 1),
            arrival=0.0,
            min_cost=min_cost,
        )

    def test_no_earlier_deadline_means_no_preemption(self):
        running = self.ticket(deadline=5.0)
        later = self.ticket(deadline=9.0, seq=1)
        assert should_preempt(running, [later], now=1.0) is None

    def test_key_ties_never_preempt(self):
        # Strictly-earlier only: equal keys cannot ping-pong the server.
        running = self.ticket(deadline=5.0)
        twin = self.ticket(deadline=5.0, seq=1)
        assert should_preempt(running, [twin], now=1.0) is None

    def test_earlier_deadline_with_slack_preempts(self):
        running = self.ticket(deadline=20.0, min_cost=0.5)
        tight = self.ticket(deadline=3.0, seq=1, quota=2.0)
        decision = should_preempt(running, [tight], now=1.0)
        assert decision is not None
        assert decision.challenger_id == tight.request.request_id
        # The tight ticket drains by its own deadline at the latest, and
        # the runner keeps its whole budget beyond that point.
        assert decision.projected_resume == pytest.approx(3.0)
        assert decision.residual_budget == pytest.approx(17.0)
        assert decision.residual_budget >= running.min_cost

    def test_runner_without_slack_keeps_the_server(self):
        # Suspending would trade a guaranteed partial answer for nothing:
        # by the time the earlier work drained, the runner could not even
        # afford its minimum stage.
        running = self.ticket(deadline=3.5, min_cost=1.0)
        tight = self.ticket(deadline=3.0, seq=1, quota=2.0)
        assert should_preempt(running, [tight], now=1.0) is None

    def test_higher_priority_tier_preempts_despite_later_deadline(self):
        running = self.ticket(deadline=5.0, priority=1)
        urgent = self.ticket(deadline=9.0, seq=1, priority=0, quota=2.0)
        assert should_preempt(running, [urgent], now=0.0) is not None


class TestTicketOrdering:
    def test_key_ties_break_on_seq_without_comparing_payloads(self):
        # priority/deadline ties are real once preempted tickets re-queue
        # next to equal-deadline arrivals; the payload fields must stay
        # out of the comparison or sorting raises TypeError on
        # QueryRequest. (Regression: payload fields were compare=True.)
        a = _Ticket(
            priority=0, deadline=2.0, seq=1, request=request(seed=1),
            arrival=0.3, min_cost=0.2,
        )
        b = _Ticket(
            priority=0, deadline=2.0, seq=0, request=request(seed=2),
            arrival=0.1, min_cost=0.1,
        )
        assert sorted([a, b]) == [b, a]
        heap = []
        heapq.heappush(heap, a)
        heapq.heappush(heap, b)
        assert heapq.heappop(heap) is b

    def test_earlier_deadline_still_wins(self):
        a = _Ticket(priority=0, deadline=3.0, seq=0, request=request(seed=1))
        b = _Ticket(priority=0, deadline=2.0, seq=1, request=request(seed=2))
        assert sorted([a, b]) == [b, a]


class TestServerPreemption:
    def loose(self, quota=8.0, arrival=0.0, seed=11):
        return request(
            expr=intersect(rel("r1"), rel("r2")),
            quota=quota,
            arrival=arrival,
            seed=seed,
            client_id="loose",
        )

    def tight(self, quota=4.0, arrival=0.5, seed=22):
        return request(
            quota=quota, arrival=arrival, seed=seed, client_id="tight"
        )

    def test_switch_defaults_off(self, db, monkeypatch):
        monkeypatch.delenv("REPRO_PREEMPT", raising=False)
        assert QueryServer(db).preempt is False
        monkeypatch.setenv("REPRO_PREEMPT", "1")
        assert QueryServer(db).preempt is True
        assert QueryServer(db, preempt=False).preempt is False

    def test_tight_arrival_preempts_a_loose_runner(self, db):
        sink = RecordingSink()
        server = QueryServer(db, policy=AdmitAll(), sink=sink, preempt=True)
        outcomes = {
            o.request.client_id: o
            for o in server.process([self.loose(), self.tight()])
        }
        (preempted,) = sink.of_kind("query_preempted")
        (resumed,) = sink.of_kind("query_resumed")
        assert preempted.request_id == outcomes["loose"].request.request_id
        assert preempted.challenger_id == outcomes["tight"].request.request_id
        assert preempted.stages_completed >= 1
        assert resumed.request_id == preempted.request_id
        assert resumed.preemptions == 1
        # The tight request runs inside its own window instead of queueing
        # behind the loose one's whole budget...
        assert outcomes["tight"].outcome is Outcome.ANSWERED
        # ...and the loose runner still finishes with a sampled answer.
        assert outcomes["loose"].outcome is Outcome.ANSWERED
        assert server.metrics.preempted == 1
        assert server.metrics.resumed == 1

    def test_run_to_completion_misses_the_same_tight_request(self, db):
        server = QueryServer(db, policy=AdmitAll(), preempt=False)
        outcomes = {
            o.request.client_id: o
            for o in server.process([self.loose(), self.tight()])
        }
        assert outcomes["tight"].outcome is Outcome.MISSED
        assert server.metrics.preempted == 0

    def test_preemption_counters_in_as_dict_and_render(self, db):
        server = QueryServer(db, policy=AdmitAll(), preempt=True)
        server.process([self.loose(), self.tight()])
        snapshot = server.metrics.as_dict()
        assert snapshot["preempted"] == 1
        assert snapshot["resumed"] == 1
        assert "preemption: 1 suspended, 1 resumed" in server.metrics.render()

    def test_preempted_request_reports_first_dispatch_accounting(self, db):
        sink = RecordingSink()
        server = QueryServer(db, policy=AdmitAll(), sink=sink, preempt=True)
        outcomes = {
            o.request.client_id: o
            for o in server.process([self.loose(), self.tight()])
        }
        loose = outcomes["loose"]
        # One RequestStarted per request even across suspensions, and the
        # outcome's queue_wait/started_at are the *first* dispatch's.
        started = [
            e
            for e in sink.of_kind("request_started")
            if e.request_id == loose.request.request_id
        ]
        assert len(started) == 1
        assert loose.queue_wait == pytest.approx(started[0].queue_wait)
        assert loose.started_at == pytest.approx(started[0].clock)

    def test_parked_ticket_is_never_shed(self, db):
        server = QueryServer(db, preempt=True)  # enforcing policy
        parked = _Ticket(
            priority=0,
            deadline=0.5,
            seq=0,
            request=request(quota=4.0, seed=1),
            arrival=0.0,
            min_cost=2.0,  # projected budget 0.5 << min_cost: doomed...
            session=object(),  # ...but parked: banked stages exist
        )
        doomed = _Ticket(
            priority=0,
            deadline=1.0,
            seq=1,
            request=request(quota=4.0, seed=2),
            arrival=0.0,
            min_cost=2.0,
        )
        queue = [parked, doomed]
        heapq.heapify(queue)
        shed = server._shed_overload(queue)
        assert [t.seq for t in queue] == [0]
        assert [o.request.request_id for o in shed] == [
            doomed.request.request_id
        ]
