"""Invariant 11: suspension is invisible to the run it suspends.

Three identities, in increasing scope:

* **Executor/session**: a run suspended at every stage boundary and
  immediately resumed is *bit-identical* to the uninterrupted run — same
  estimates, same charged costs, same stage schedule, same trace events.
  Suspension charges nothing and draws no randomness, so the sampled
  prefix it resumes from is exactly the prefix the uninterrupted run
  continues (the sampling-algebra argument for unbiased resumption).
* **Server, switch off**: ``preempt=False`` — explicitly or via
  ``REPRO_PREEMPT=0`` or unset (the default) — is byte-identical
  run-to-completion serving: same outcomes, same event stream. Together
  with the untouched server suite this pins "off ≡ pre-preemption".
* **Server, switch on but idle**: with no competing arrivals the
  preemption point never fires, and the served stream is byte-identical
  to the switch-off stream. Preemption replays deterministically under
  injected faults too: a suspended ticket keeps its own injector, so
  parked state never leaks into the challenger's session.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan
from repro.observability import RecordingSink
from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import cmp
from repro.server.admission import AdmitAll
from repro.server.request import QueryRequest
from repro.server.scheduler import QueryServer
from repro.server.workload import demo_database

TUPLES = 1_000


def query(threshold: int = 600):
    return select(rel("r1"), cmp("a", "<", threshold))


def fresh_db():
    return demo_database(seed=5, tuples=TUPLES)


def suspend_at_every_boundary():
    """Accept each stage boundary exactly once, so every boundary parks
    the run once and the immediate resume proceeds to the next stage."""
    state = {"last": -1}

    def checkpoint(report):
        stages = len(report.stages)
        if stages != state["last"]:
            state["last"] = stages
            return True
        return False

    return checkpoint


def stage_signature(report):
    return [
        (
            s.index,
            s.fraction,
            s.duration,
            s.blocks_read,
            s.estimate.value,
            s.estimate.variance,
        )
        for s in report.stages
    ]


class TestExecutorIdentity:
    @pytest.mark.parametrize(
        "expr,quota",
        [
            (select(rel("r1"), cmp("a", "<", 600)), 6.0),
            (intersect(rel("r1"), rel("r2")), 8.0),
        ],
    )
    def test_suspend_resume_bit_identical_to_uninterrupted(self, expr, quota):
        plain_sink, chopped_sink = RecordingSink(), RecordingSink()

        plain = fresh_db().open_session(
            expr, quota=quota, seed=7, sink=plain_sink
        )
        plain_result = plain.run()

        chopped = fresh_db().open_session(
            expr, quota=quota, seed=7, sink=chopped_sink
        )
        checkpoint = suspend_at_every_boundary()
        out = chopped.run_preemptible(checkpoint=checkpoint)
        suspensions = 0
        while out is None:
            suspensions += 1
            out = chopped.resume(checkpoint=checkpoint)

        assert suspensions >= 1  # the chopped run really was chopped
        a, b = plain_result.report, out.report
        assert stage_signature(a) == stage_signature(b)
        assert a.termination == b.termination
        assert a.estimate.value == b.estimate.value
        assert a.estimate.variance == b.estimate.variance
        # Same charged costs: both clocks end at the same instant.
        assert (
            plain.charger.clock.now() == chopped.charger.clock.now()
        )
        # Same trace, event for event — QueryStart/QueryEnd once each,
        # identical stage schedule, identical clocks inside every event.
        assert plain_sink.events == chopped_sink.events

    def test_elapsed_accounting_spans_segments(self):
        sink = RecordingSink()
        session = fresh_db().open_session(
            query(), quota=6.0, seed=7, sink=sink
        )
        fired = []

        def once(report):
            if not fired:
                fired.append(True)
                return True
            return False

        assert session.run_preemptible(checkpoint=once) is None
        parked_at = session.charger.clock.now()
        assert session.suspended_state.suspended_at == parked_at
        session.resume()
        # The QueryEnd elapsed time sums both segments with no double
        # charge: it equals wall distance start → end because the
        # immediate resume let no parked time pass.
        (end,) = sink.of_kind("query_end")
        start = session.result.report.started_at
        assert end.elapsed_seconds == pytest.approx(
            session.charger.clock.now() - start
        )


def outcome_signature(outcomes):
    return [
        (
            o.request.request_id,
            o.outcome.value,
            o.reason,
            o.queue_wait,
            o.started_at,
            o.finished_at,
            None if o.estimate is None else (o.estimate.value, o.estimate.variance),
        )
        for o in outcomes
    ]


def run_server(preempt, env=None, monkeypatch=None, fault_plan=None):
    if monkeypatch is not None:
        if env is None:
            monkeypatch.delenv("REPRO_PREEMPT", raising=False)
        else:
            monkeypatch.setenv("REPRO_PREEMPT", env)
    sink = RecordingSink()
    kwargs = {}
    if fault_plan is not None:
        kwargs["session_kwargs"] = {"fault_plan": fault_plan}
    server = QueryServer(
        fresh_db(), policy=AdmitAll(), sink=sink, preempt=preempt, **kwargs
    )
    requests = [
        QueryRequest(
            expr=intersect(rel("r1"), rel("r2")) if i % 3 == 0 else query(),
            quota=6.0 if i % 3 == 0 else 2.0,
            arrival=0.9 * i,
            seed=100 + i,
            client_id=f"c{i}",
            request_id=f"r{i}",  # pinned: ids are comparable across servers
        )
        for i in range(6)
    ]
    outcomes = server.process(requests)
    return outcomes, sink, server


class TestServerSwitchIdentity:
    def test_explicit_off_equals_default_unset_env(self, monkeypatch):
        default, default_sink, _ = run_server(
            None, env=None, monkeypatch=monkeypatch
        )
        explicit, explicit_sink, _ = run_server(False)
        assert outcome_signature(default) == outcome_signature(explicit)
        assert default_sink.events == explicit_sink.events

    def test_env_zero_equals_explicit_off(self, monkeypatch):
        enved, env_sink, server = run_server(
            None, env="0", monkeypatch=monkeypatch
        )
        assert server.preempt is False
        explicit, explicit_sink, _ = run_server(False)
        assert outcome_signature(enved) == outcome_signature(explicit)
        assert env_sink.events == explicit_sink.events

    def test_preempt_on_without_challengers_is_byte_identical(self):
        # Arrivals spaced beyond every service time: the checkpoint is
        # armed but never fires, so on ≡ off, event for event.
        def spaced(preempt):
            sink = RecordingSink()
            server = QueryServer(
                fresh_db(), policy=AdmitAll(), sink=sink, preempt=preempt
            )
            outcomes = server.process(
                [
                    QueryRequest(
                        expr=query(500 + 50 * i),
                        quota=2.0,
                        arrival=3.0 * i,
                        seed=100 + i,
                        client_id=f"c{i}",
                        request_id=f"r{i}",
                    )
                    for i in range(4)
                ]
            )
            return outcomes, sink, server

        on, on_sink, on_server = spaced(True)
        off, off_sink, _ = spaced(False)
        assert on_server.metrics.preempted == 0
        assert outcome_signature(on) == outcome_signature(off)
        assert on_sink.events == off_sink.events


class TestFaultReplayUnderPreemption:
    def test_preempting_faulted_stream_replays_bit_identically(self):
        plan = FaultPlan(read_error_prob=0.05, slow_read_prob=0.05)
        first, first_sink, s1 = run_server(True, fault_plan=plan)
        second, second_sink, s2 = run_server(True, fault_plan=plan)
        assert outcome_signature(first) == outcome_signature(second)
        assert first_sink.events == second_sink.events
        assert s1.metrics.preempted == s2.metrics.preempted
