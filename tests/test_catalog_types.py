"""Unit tests for attribute types (repro.catalog.types)."""

import pytest

from repro.catalog.types import AttributeType
from repro.errors import SchemaError


class TestDefaults:
    def test_int_width(self):
        assert AttributeType.INT.default_width == 4

    def test_float_width(self):
        assert AttributeType.FLOAT.default_width == 8

    def test_str_width(self):
        assert AttributeType.STR.default_width == 16


class TestValidate:
    def test_int_accepts_int(self):
        assert AttributeType.INT.validate(7) == 7

    def test_int_rejects_bool(self):
        with pytest.raises(SchemaError):
            AttributeType.INT.validate(True)

    def test_int_rejects_string_number(self):
        with pytest.raises(SchemaError):
            AttributeType.INT.validate("7")

    def test_float_accepts_int_and_coerces(self):
        value = AttributeType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(SchemaError):
            AttributeType.FLOAT.validate(False)

    def test_str_accepts_str(self):
        assert AttributeType.STR.validate("x") == "x"

    def test_str_rejects_bytes(self):
        with pytest.raises(SchemaError):
            AttributeType.STR.validate(b"x")


class TestInfer:
    def test_infer_int(self):
        assert AttributeType.infer(5) is AttributeType.INT

    def test_infer_float(self):
        assert AttributeType.infer(5.5) is AttributeType.FLOAT

    def test_infer_str(self):
        assert AttributeType.infer("s") is AttributeType.STR

    def test_infer_rejects_bool(self):
        with pytest.raises(SchemaError):
            AttributeType.infer(True)

    def test_infer_rejects_none(self):
        with pytest.raises(SchemaError):
            AttributeType.infer(None)
