"""Property tests: every optimizer rewrite is algebra-preserving.

For ANY random SJIP + set-operation tree, each rule alone — and the full
fixpoint composition — must leave the :class:`ExactEvaluator` result and
the output schema unchanged. :class:`JoinChainReorder` gets its own
generator over name-disjoint join chains (the only trees it may touch) and
the one relaxation its gate buys: equality as a set of *named* tuples,
column order permuted.

A final property closes the loop with the estimator: driving an optimized
staged plan to full coverage yields the exact count, so rewrites cannot
bias estimates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.planner import default_rules, optimize_expression
from repro.planner.rules import JoinChainReorder
from repro.relational.evaluator import count_exact, rows_exact
from repro.relational.expression import (
    difference,
    intersect,
    join,
    project,
    rel,
    select,
    union,
)
from repro.relational.predicate import And, Or, cmp
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation

RULES = {rule.name: rule for rule in default_rules()}


def build_catalog() -> Catalog:
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation("r1", schema, [(i, i % 7) for i in range(48)], 16),
    )
    catalog.register(
        "r2",
        make_relation("r2", schema, [(i, i % 5) for i in range(16, 56)], 16),
    )
    catalog.register(
        "r3",
        make_relation("r3", schema, [(i, i % 3) for i in range(32, 72)], 16),
    )
    return catalog


def build_chain_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        "x",
        make_relation(
            "x",
            Schema.of(xa=AttributeType.INT, xb=AttributeType.INT),
            [(i % 8, i % 5) for i in range(24)],
            16,
        ),
    )
    catalog.register(
        "y",
        make_relation(
            "y",
            Schema.of(ya=AttributeType.INT, yb=AttributeType.INT),
            [(i % 8, i % 6) for i in range(40)],
            16,
        ),
    )
    catalog.register(
        "z",
        make_relation(
            "z",
            Schema.of(za=AttributeType.INT, zb=AttributeType.INT),
            [(i % 5, i % 8) for i in range(10)],
            16,
        ),
    )
    return catalog


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
@st.composite
def predicate(draw, attrs=("id", "a")):
    def leaf():
        attr_name = draw(st.sampled_from(attrs))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return cmp(attr_name, op, draw(st.integers(0, 8)))

    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return leaf()
    if kind == "and":
        return And((leaf(), leaf()))
    if kind == "or":
        return Or((leaf(), leaf()))
    return ~leaf()


@st.composite
def sjip_setop_tree(draw):
    """Random tree over r1/r2/r3, each relation used at most once.

    Set operations combine subtrees whose schema is still the base
    (id, a) — selects only — so compatibility always holds; joins rename
    via ``_r``, exercising the pushdown rename path.
    """
    names = draw(st.permutations(["r1", "r2", "r3"]))

    def maybe_select(node, attrs=("id", "a")):
        if draw(st.booleans()):
            return select(node, draw(predicate(attrs)))
        return node

    shape = draw(
        st.sampled_from(["single", "setop", "setop3", "join", "join-proj"])
    )
    if shape == "single":
        node = maybe_select(rel(names[0]))
        if draw(st.booleans()):
            node = project(node, draw(st.sampled_from([("a",), ("id", "a")])))
        return maybe_select(node, attrs=node.schema(build_catalog()).names)
    if shape in ("setop", "setop3"):
        op = draw(st.sampled_from([union, intersect, difference]))
        node = op(maybe_select(rel(names[0])), maybe_select(rel(names[1])))
        if shape == "setop3":
            op2 = draw(st.sampled_from([union, intersect, difference]))
            node = op2(node, maybe_select(rel(names[2])))
        return maybe_select(node)
    joined = join(
        maybe_select(rel(names[0])), maybe_select(rel(names[1])), on=["a"]
    )
    out_attrs = ("id", "a", "id_r", "a_r")
    node = maybe_select(joined, attrs=out_attrs)
    if shape == "join-proj":
        node = project(node, draw(st.sampled_from([("id", "a_r"), ("a",)])))
        node = maybe_select(node, attrs=node.attrs)
    return node


@st.composite
def join_chain_tree(draw):
    """Left-deep x-y-z chains where JoinChainReorder is allowed to run."""

    def maybe_select(node, attrs):
        if draw(st.booleans()):
            return select(node, draw(predicate(attrs)))
        return node

    inner = join(
        maybe_select(rel("x"), ("xa", "xb")),
        maybe_select(rel("y"), ("ya", "yb")),
        on=[("xa", "ya")],
    )
    outer = join(
        inner,
        maybe_select(rel("z"), ("za", "zb")),
        on=[draw(st.sampled_from([("xb", "za"), ("yb", "zb")]))],
    )
    all_attrs = ("xa", "xb", "ya", "yb", "za", "zb")
    return maybe_select(outer, all_attrs)


def assert_rows_identical(catalog, before, after):
    assert before.schema(catalog) == after.schema(catalog)
    assert sorted(rows_exact(before, catalog)) == sorted(
        rows_exact(after, catalog)
    )


def assert_relation_identical(catalog, before, after):
    """Equality as a set of named tuples (column order may permute)."""
    b_schema, a_schema = before.schema(catalog), after.schema(catalog)
    assert sorted(b_schema.names) == sorted(a_schema.names)
    assert {(att.name, att.type) for att in b_schema.attributes} == {
        (att.name, att.type) for att in a_schema.attributes
    }

    def keyed(expr, schema):
        return sorted(
            sorted(zip(schema.names, row))
            for row in rows_exact(expr, catalog)
        )

    assert keyed(before, b_schema) == keyed(after, a_schema)


# ----------------------------------------------------------------------
# Per-rule preservation (≥200 random trees each)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "rule_name",
    ["fuse-selections", "push-predicates", "prune-projections",
     "normalize-set-ops"],
)
@settings(max_examples=200, deadline=None)
@given(expr=sjip_setop_tree())
def test_each_rule_preserves_exact_rows_and_schema(rule_name, expr):
    catalog = build_catalog()
    optimized, _ = optimize_expression(expr, catalog, rules=[RULES[rule_name]])
    assert_rows_identical(catalog, expr, optimized)


@settings(max_examples=200, deadline=None)
@given(expr=join_chain_tree())
def test_reorder_preserves_named_relation(expr):
    catalog = build_chain_catalog()
    optimized, _ = optimize_expression(
        expr, catalog, rules=[JoinChainReorder()]
    )
    assert_relation_identical(catalog, expr, optimized)


# ----------------------------------------------------------------------
# Fixpoint composition
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(expr=sjip_setop_tree())
def test_fixpoint_preserves_exact_rows_and_schema(expr):
    catalog = build_catalog()
    optimized, applications = optimize_expression(expr, catalog)
    assert_rows_identical(catalog, expr, optimized)
    # Fixpoint really is a fixpoint.
    again, more = optimize_expression(optimized, catalog)
    assert again == optimized and more == ()


@settings(max_examples=100, deadline=None)
@given(expr=join_chain_tree())
def test_fixpoint_on_chains_preserves_named_relation(expr):
    catalog = build_chain_catalog()
    optimized, _ = optimize_expression(expr, catalog)
    assert_relation_identical(catalog, expr, optimized)


# ----------------------------------------------------------------------
# Estimator neutrality: full coverage of an optimized plan is exact
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(expr=sjip_setop_tree(), seed=st.integers(0, 2**16))
def test_optimized_plan_full_coverage_estimate_is_exact(expr, seed):
    catalog = build_catalog()
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
    plan = StagedPlan(
        expr, catalog, charger, CostModel(), rng, optimize=True
    )
    plan.advance_stage(1.0)
    estimate = plan.estimate()
    assert estimate.value == pytest.approx(count_exact(expr, catalog))
