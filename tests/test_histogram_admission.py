"""Histogram hints × synopsis posteriors in admission pricing.

Three selectivity sources can inform the cheapest-useful-stage price the
admission policies rule on (:func:`repro.server.admission.
minimum_stage_cost`):

* the Figure 3.3 defaults (selectivity 1.0 — the conservative maximum);
* prestored equi-depth histogram hints (:mod:`repro.statistics`), which
  set a tracker's *initial* value, pinned under ``selectivity_source=
  "prestored"``;
* synopsis posteriors (:mod:`repro.synopses`), which warm-start a tracker
  with pseudo-counts.

This suite pins the precedence: pinned prestored trackers ignore the
catalog entirely; hybrid trackers price at the posterior mean once
warm-started (pseudo-counts dominate the hinted initial); and a warm
catalog makes the priced stage cheaper, which is the whole point of
admission seeing it.
"""

import pytest

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro import caches
from repro.relational import cmp, rel
from repro.server import minimum_stage_cost
from repro.statistics.histogram import EquiDepthHistogram


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    caches.get("plans").clear()
    yield
    caches.get("plans").clear()


def make_db(seed: int = 5, rows: int = 20_000) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 100) for i in range(rows)],
    )
    return db


def selective_query():
    # True selectivity 0.02 — far below the Figure 3.3 default of 1.0.
    return rel("r1").where(cmp("a", "<", 2))


def probe(db, expr, **options):
    """A never-run pricing session, as the admission path builds it."""
    return db.open_session(
        expr, quota=10.0, seed=0, options=QueryOptions(**options)
    )


# ---------------------------------------------------------------------------
# Histogram ground truth (the substrate the hints are computed from)
# ---------------------------------------------------------------------------
class TestHistogramSelectivity:
    def test_range_selectivity_matches_exact_fraction(self):
        values = [i % 100 for i in range(10_000)]
        hist = EquiDepthHistogram.build(values, buckets=25)
        for threshold in (2, 10, 50, 99):
            exact = sum(1 for v in values if v < threshold) / len(values)
            assert hist.selectivity("<", threshold) == pytest.approx(
                exact, abs=0.05
            )

    def test_skewed_data_range_error_stays_bounded(self):
        # Equi-depth buckets bound range-predicate error regardless of skew:
        # 90% of the mass sits on a single value.
        values = [0] * 9_000 + list(range(1, 1_001))
        hist = EquiDepthHistogram.build(values, buckets=20)
        exact = 9_000 / 10_000
        assert hist.selectivity("<", 1) == pytest.approx(exact, abs=0.1)

    def test_analyze_installs_histograms(self):
        db = make_db()
        db.analyze()
        stats = db.statistics["r1"]
        assert stats.histogram("a").selectivity("<", 2) == pytest.approx(
            0.02, abs=0.01
        )


# ---------------------------------------------------------------------------
# Admission pricing precedence
# ---------------------------------------------------------------------------
class TestPricingPrecedence:
    def test_default_plan_prices_at_selectivity_one(self):
        db = make_db()
        session = probe(db, selective_query())
        (tracker,) = session.plan.trackers()
        assert tracker.initial == 1.0 and not tracker.has_prior

    def test_prestored_hint_sets_initial_and_pins(self):
        db = make_db()
        db.analyze()
        session = probe(db, selective_query(), selectivity_source="prestored")
        (tracker,) = session.plan.trackers()
        assert tracker.pinned
        assert tracker.initial == pytest.approx(0.02, abs=0.01)

    def test_pinned_prestored_ignores_catalog(self):
        db = make_db()
        db.analyze()
        warm = QueryOptions(synopses=True)
        db.estimate(selective_query(), quota=5.0, seed=3, options=warm)
        assert db.synopses.info().posteriors == 1
        session = probe(
            db, selective_query(), selectivity_source="prestored", synopses=True
        )
        (tracker,) = session.plan.trackers()
        assert tracker.pinned and not tracker.has_prior
        assert tracker.sel_prev == tracker.initial

    def test_hybrid_posterior_pseudo_counts_dominate_hint(self):
        db = make_db()
        db.analyze()
        warm = QueryOptions(synopses=True)
        db.estimate(selective_query(), quota=5.0, seed=3, options=warm)
        session = probe(
            db, selective_query(), selectivity_source="hybrid", synopses=True
        )
        (tracker,) = session.plan.trackers()
        # The hint survives as the configured initial; the posterior's
        # pseudo-counts carry the pricing.
        assert not tracker.pinned
        assert tracker.initial == pytest.approx(0.02, abs=0.01)
        assert tracker.has_prior
        posterior_mean = tracker.prior_tuples / tracker.prior_points
        assert tracker.effective_sel_prev() == pytest.approx(posterior_mean)

    def test_warm_catalog_prices_cheaper_than_cold(self):
        db = make_db()
        cold = minimum_stage_cost(probe(db, selective_query(), synopses=True))
        db.estimate(
            selective_query(),
            quota=5.0,
            seed=3,
            options=QueryOptions(synopses=True),
        )
        warm = minimum_stage_cost(probe(db, selective_query(), synopses=True))
        assert warm < cold

    def test_disabled_synopses_price_unchanged_by_catalog(self):
        db = make_db()
        baseline = minimum_stage_cost(probe(db, selective_query()))
        db.estimate(
            selective_query(),
            quota=5.0,
            seed=3,
            options=QueryOptions(synopses=True),
        )
        caches.get("plans").clear()
        assert minimum_stage_cost(probe(db, selective_query())) == baseline
