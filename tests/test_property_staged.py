"""Property-based tests of the staged engine's central invariant.

For ANY Select–Join–Intersect expression and ANY staged sample, full
fulfillment must make the staged tree's cumulative output count equal the
exact evaluation of the expression over the sampled sub-database, and the
evaluated point count equal the cross product of per-relation sampled
tuples. This generalises the hand-picked cases in test_engine_nodes.py to
randomly generated trees and stage schedules.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.relational.evaluator import count_exact
from repro.relational.expression import intersect, join, rel, select
from repro.relational.predicate import cmp
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


def build_catalog() -> Catalog:
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", schema, [(i, i % 5) for i in range(60)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", schema, [(i, i % 5) for i in range(30, 90)], block_size=16
        ),
    )
    return catalog


def restricted(plan) -> Catalog:
    sub = Catalog()
    for scan in plan.scans:
        relation = scan.relation
        rows = []
        for block_id in scan.sampler.drawn_block_ids:
            rows.extend(relation.block_rows_uncharged(block_id))
        sub.register(
            relation.name,
            make_relation(
                relation.name, relation.schema, rows, relation.block_size
            ),
        )
    return sub


# Random SJI trees over r1/r2 where each relation appears at most once
# (the point-space model requires distinct operand relations per term).
@st.composite
def sji_expression(draw):
    base1 = rel("r1")
    base2 = rel("r2")

    def maybe_select(node):
        if draw(st.booleans()):
            threshold = draw(st.integers(0, 5))
            op = draw(st.sampled_from(["<", ">=", "=="]))
            return select(node, cmp("a", op, threshold))
        return node

    left = maybe_select(base1)
    shape = draw(st.sampled_from(["single", "join", "intersect"]))
    if shape == "single":
        return left
    right = maybe_select(base2)
    if shape == "join":
        return maybe_select(join(left, right, on=["a"]))
    return maybe_select(intersect(left, right))


@settings(max_examples=50, deadline=None)
@given(
    expr=sji_expression(),
    fractions=st.lists(
        st.floats(0.05, 0.6), min_size=1, max_size=3
    ),
    seed=st.integers(0, 2**16),
)
def test_staged_count_equals_exact_over_sampled_blocks(expr, fractions, seed):
    catalog = build_catalog()
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
    plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
    for fraction in fractions:
        plan.advance_stage(fraction)
    sub = restricted(plan)
    assert plan.terms[0].root.cum_out_tuples == count_exact(expr, sub)
    # Point bookkeeping: full cross product of the sampled tuples.
    expected_points = 1
    for scan in plan.scans:
        if scan.relation.name in set(expr.base_relations()):
            expected_points *= scan.cum_tuples
    assert plan.terms[0].root.points_so_far == expected_points


@settings(max_examples=30, deadline=None)
@given(
    expr=sji_expression(),
    seed=st.integers(0, 2**16),
)
def test_full_coverage_estimate_is_exact(expr, seed):
    catalog = build_catalog()
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
    plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
    plan.advance_stage(1.0)
    estimate = plan.estimate()
    assert estimate.exact
    assert estimate.value == pytest.approx(count_exact(expr, catalog))


@settings(max_examples=25, deadline=None)
@given(
    expr=sji_expression(),
    fraction=st.floats(0.1, 0.5),
    seed=st.integers(0, 2**12),
)
def test_estimate_is_feasible_and_variance_nonnegative(expr, fraction, seed):
    catalog = build_catalog()
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
    plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
    plan.advance_stage(fraction)
    estimate = plan.estimate()
    assert estimate.variance >= 0.0
    assert 0.0 <= estimate.value <= plan.terms[0].space.total_points


@settings(max_examples=25, deadline=None)
@given(
    expr=sji_expression(),
    seed=st.integers(0, 2**12),
)
def test_partial_fulfillment_counts_subset_of_full(expr, seed):
    catalog = build_catalog()

    def run(full: bool):
        rng = np.random.default_rng(seed)
        charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
        plan = StagedPlan(
            expr, catalog, charger, CostModel(), rng, full_fulfillment=full
        )
        plan.advance_stage(0.3)
        plan.advance_stage(0.3)
        return plan

    full_plan = run(True)
    partial_plan = run(False)
    # Identical seeds → identical drawn blocks; partial covers a subset of
    # the points and therefore at most as many outputs.
    assert (
        partial_plan.terms[0].root.points_so_far
        <= full_plan.terms[0].root.points_so_far
    )
    assert (
        partial_plan.terms[0].root.cum_out_tuples
        <= full_plan.terms[0].root.cum_out_tuples
    )
