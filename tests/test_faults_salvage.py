"""Per-stage salvage: a fault at any stage degrades, never destroys, a run.

The executor's contract when an injected fault escapes a stage: discard the
partial stage, keep the last consistent estimate, charge the wasted time,
and either retry (``salvage="continue"``) or finish with a ``degraded``
termination (``salvage="finish"``). The tests pin a scheduled fault at every
stage index of a three-operator plan and compare against a clean run with
the same seed — valid because scheduled faults draw nothing from the fault
RNG and the session stream is untouched, so all pre-fault stages are
bit-identical to the clean run's.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan
from repro.observability import RecordingSink
from repro.relational.expression import rel
from repro.relational.predicate import cmp
from repro.server.workload import demo_database
from repro.timecontrol.strategies import FixedFractionHeuristic

SEED = 77

# Three operators: two selections under a join (ISSUE's 3-operator plan).
JOIN_EXPR = (
    rel("r1")
    .where(cmp("a", "<", 8_000))
    .join(rel("r2").where(cmp("a", "<", 9_000)), on="a")
)
# One-relation selection whose per-stage estimates are non-trivial, for
# asserting the *value* of the preserved estimate.
SEL_EXPR = rel("r1").where(cmp("a", "<", 6_000))


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=11, tuples=600, analyze=False)


def run(db, expr, quota, fault_plan=None, sink=None, **kwargs):
    # FixedFractionHeuristic is stateful: a fresh instance per run.
    return db.estimate(
        expr,
        quota=quota,
        seed=SEED,
        strategy=FixedFractionHeuristic(gamma=0.25),
        fault_plan=fault_plan,
        sink=sink,
        **kwargs,
    )


def stage_rows(sink):
    return [
        (e.stage, e.fraction, e.duration, e.blocks_read, e.estimate_value)
        for e in sink.of_kind("stage_end")
    ]


class TestFaultAtEveryStage:
    @pytest.mark.parametrize("fail_stage", [1, 2, 3])
    def test_finish_salvage_keeps_last_consistent_estimate(
        self, db, fail_stage
    ):
        clean_sink = RecordingSink()
        clean = run(db, JOIN_EXPR, quota=6.0, sink=clean_sink)
        assert clean.stages >= 3  # the parametrization covers real stages

        sink = RecordingSink()
        plan = FaultPlan(fail_stages=(fail_stage,), salvage="finish")
        result = run(db, JOIN_EXPR, quota=6.0, fault_plan=plan, sink=sink)

        # Degraded, not destroyed: the fault never reaches the caller.
        assert result.degraded
        assert result.report.termination == "degraded"
        assert result.faulted
        (fault,) = result.faults
        assert fault.stage == fail_stage
        assert fault.action == "finish"
        assert fault.fault_kind == "read_error"
        assert fault.relation in ("r1", "r2")
        assert fault.block_id is not None
        assert fault.wasted_seconds > 0
        assert result.report.wasted_seconds == pytest.approx(
            fault.wasted_seconds
        )

        # Every completed stage is bit-identical to the clean run's.
        assert result.stages == fail_stage - 1
        assert stage_rows(sink) == stage_rows(clean_sink)[: fail_stage - 1]

        # The last consistent estimate survives the fault.
        if fail_stage == 1:
            assert result.estimate is None
        else:
            previous = clean_sink.of_kind("stage_end")[fail_stage - 2]
            assert result.estimate.value == previous.estimate_value

        # One injected-fault event (scheduled), one salvage event.
        (injected,) = sink.of_kind("fault_injected")
        assert injected.scheduled and injected.stage == fail_stage
        (salvaged,) = sink.of_kind("fault_salvaged")
        assert salvaged.action == "finish"
        assert salvaged.wasted_seconds == pytest.approx(fault.wasted_seconds)

    @pytest.mark.parametrize("fail_stage", [1, 2, 3])
    def test_continue_salvage_retries_and_completes(self, db, fail_stage):
        plan = FaultPlan(fail_stages=(fail_stage,), salvage="continue")
        sink = RecordingSink()
        result = run(db, JOIN_EXPR, quota=6.0, fault_plan=plan, sink=sink)

        # Scheduled faults hit only a stage's first attempt, so one retry
        # clears it and the run completes normally.
        assert not result.degraded
        assert result.estimate is not None
        (fault,) = result.faults
        assert fault.stage == fail_stage
        assert fault.action == "retry"
        assert fault.wasted_seconds > 0
        (salvaged,) = sink.of_kind("fault_salvaged")
        assert salvaged.action == "retry"


class TestEstimatePreservation:
    def test_preserved_estimate_equals_prior_stage_value(self, db):
        clean_sink = RecordingSink()
        clean = run(db, SEL_EXPR, quota=3.0, sink=clean_sink)
        assert clean.stages >= 3
        ends = clean_sink.of_kind("stage_end")
        assert any(e.estimate_value for e in ends)  # non-trivial values

        plan = FaultPlan(fail_stages=(3,), salvage="finish")
        result = run(db, SEL_EXPR, quota=3.0, fault_plan=plan)
        assert result.degraded
        assert result.estimate is not None
        assert result.estimate.value == ends[1].estimate_value

    def test_pre_fault_stages_identical_on_continue(self, db):
        clean_sink = RecordingSink()
        run(db, SEL_EXPR, quota=3.0, sink=clean_sink)
        sink = RecordingSink()
        plan = FaultPlan(fail_stages=(2,), salvage="continue")
        result = run(db, SEL_EXPR, quota=3.0, fault_plan=plan, sink=sink)
        assert not result.degraded
        # Stage 1 ran before the fault: bit-identical to the clean run.
        assert stage_rows(sink)[0] == stage_rows(clean_sink)[0]


class TestRetryExhaustion:
    def test_persistent_fault_exhausts_retries_and_degrades(self, db):
        # p=1 read errors defeat every attempt; three consecutive failures
        # of the same stage end the run with what it has (here: nothing).
        plan = FaultPlan(read_error_prob=1.0, salvage="continue")
        result = run(db, SEL_EXPR, quota=3.0, fault_plan=plan)
        assert result.degraded
        assert result.estimate is None
        assert [f.action for f in result.faults] == [
            "retry",
            "retry",
            "finish",
        ]
        assert all(f.stage == 1 for f in result.faults)
        assert result.report.wasted_seconds == pytest.approx(
            sum(f.wasted_seconds for f in result.faults)
        )

    def test_wasted_time_is_charged_not_refunded(self, db):
        clean = run(db, SEL_EXPR, quota=3.0)
        plan = FaultPlan(fail_stages=(2,), salvage="continue")
        faulted = run(db, SEL_EXPR, quota=3.0, fault_plan=plan)
        # The retried stage's first attempt burned quota: the faulted run
        # cannot have done more within-quota work than the clean one.
        assert faulted.report.wasted_seconds > 0
        clean_spent = sum(s.duration for s in clean.report.stages)
        faulted_spent = (
            sum(s.duration for s in faulted.report.stages)
            + faulted.report.wasted_seconds
        )
        assert faulted.stages <= clean.stages
        assert faulted_spent <= clean_spent + faulted.report.wasted_seconds
