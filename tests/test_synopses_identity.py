"""Determinism pins for the synopsis catalog.

Two contracts from the issue:

* synopses **off** (the default) is bit-identical to an engine that has
  never heard of the catalog — same estimates, same per-stage schedule,
  same charged clock; and the catalog object stays untouched;
* synopses **on** is replayable: the same seed against the same catalog
  state yields a bit-identical run, because the snapshot/restore tokens
  capture everything the warm-start consults.
"""

import pytest

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro import caches
from repro.relational import cmp, join, rel


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    caches.get("plans").clear()
    yield
    caches.get("plans").clear()


def make_db(seed: int = 11) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 97) for i in range(12_000)],
    )
    db.create_relation(
        "r2",
        [("a", "int"), ("c", "int")],
        rows=[(i % 13, i) for i in range(3_000)],
    )
    return db


QUERIES = [
    (rel("r1").where(cmp("a", "<", 10)), 4.0),
    (rel("r1").where(cmp("a", "<", 10)).where(cmp("id", ">", 100)), 4.0),
    # A block-sampled join is orders of magnitude dearer than a selection.
    (join(rel("r1"), rel("r2"), on=["a"]), 900.0),
]


def run_signature(db: Database, expr, quota: float, seed: int, **options):
    result = db.estimate(
        expr, quota=quota, seed=seed, options=QueryOptions(**options)
    )
    report = result.report
    return (
        None if report.estimate is None else (
            report.estimate.value,
            report.estimate.variance,
            report.estimate.sample_points,
        ),
        [
            (s.index, s.fraction, s.duration, s.blocks_read, s.new_points)
            for s in report.stages
        ],
        report.termination,
        sum(s.duration for s in report.stages),
    )


@pytest.mark.parametrize("vectorized", [False, True], ids=["python", "vectorized"])
@pytest.mark.parametrize(
    "expr,quota", QUERIES, ids=["select", "conjunct", "join"]
)
def test_disabled_synopses_bit_identical_to_baseline(vectorized, expr, quota):
    baseline_db = make_db()
    baseline = run_signature(baseline_db, expr, quota, seed=5, vectorized=vectorized)

    db = make_db()
    # Populate the catalog so there is real state that *could* leak in.
    db.estimate(expr, quota=quota, seed=99, options=QueryOptions(synopses=True))
    assert db.synopses.info().answers >= 1
    caches.get("plans").clear()
    with_state = run_signature(
        db, expr, quota, seed=5, vectorized=vectorized, synopses=False
    )

    assert with_state == baseline


def test_disabled_sessions_leave_catalog_untouched():
    db = make_db()
    before = db.synopses.snapshot()
    db.estimate(QUERIES[0][0], quota=4.0, seed=5)
    db.estimate(QUERIES[1][0], quota=4.0, seed=5, options=QueryOptions(synopses=False))
    assert db.synopses.snapshot() == before
    info = db.synopses.info()
    assert info.hits == info.misses == 0


def test_same_seed_same_catalog_state_replays_bit_identically():
    db = make_db()
    warm = QueryOptions(synopses=True)
    db.estimate(QUERIES[0][0], quota=4.0, seed=3, options=warm)
    db.estimate(QUERIES[1][0], quota=4.0, seed=4, options=warm)
    token = db.synopses.snapshot()

    first = run_signature(db, QUERIES[0][0], 4.0, seed=8, synopses=True)
    db.synopses.restore(token)
    second = run_signature(db, QUERIES[0][0], 4.0, seed=8, synopses=True)
    assert first == second


def test_warm_and_cold_runs_share_the_estimator_contract():
    """A warm start may change the stage schedule, never the estimator.

    The reported estimate must always be computable from the run's own
    observed sample (prior pseudo-counts steer ``sel_plus`` only), so a
    warm run's estimate agrees with ``sample mean x population`` on its
    own counts.
    """
    db = make_db()
    warm = QueryOptions(synopses=True)
    db.estimate(QUERIES[0][0], quota=4.0, seed=3, options=warm)
    result = db.estimate(QUERIES[0][0], quota=4.0, seed=12, options=warm)
    report = result.report
    est = report.estimate
    assert est is not None and est.sample_points > 0
    points = sum(s.new_points for s in report.stages if s.completed_in_time)
    assert est.sample_points == points
