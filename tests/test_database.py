"""Tests for the Database facade and QueryResult."""

import pytest

from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.core.database import Database
from repro.errors import EstimationError, ReproError
from repro.relational.expression import join, rel, select, union
from repro.relational.predicate import cmp
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.timekeeping.profile import MachineProfile


@pytest.fixture
def db():
    # A 10×-faster sun3_60: keeps the designed prior-to-true cost structure
    # (uniform profiles distort it) while making the test relations cheap.
    database = Database(
        profile=MachineProfile.sun3_60(noise_sigma=0.1).scaled(0.1), seed=42
    )
    database.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 10) for i in range(500)],
        block_size=16,
    )
    database.create_relation(
        "r2",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 10) for i in range(250, 750)],
        block_size=16,
    )
    return database


class TestRelationManagement:
    def test_create_with_pairs_spec(self, db):
        heap = db.relation("r1")
        assert heap.tuple_count == 500
        assert heap.schema.names == ("id", "a")

    def test_create_with_schema_object(self, db):
        schema = Schema.of(x=AttributeType.FLOAT)
        db.create_relation("rf", schema, rows=[(1.5,), (2.5,)])
        assert db.relation("rf").schema is schema

    def test_unknown_type_name_rejected(self, db):
        with pytest.raises(ReproError):
            db.create_relation("bad", [("x", "decimal")], rows=[])

    def test_drop(self, db):
        db.drop_relation("r1")
        with pytest.raises(Exception):
            db.relation("r1")

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(Exception):
            db.create_relation("r1", [("x", "int")], rows=[])


class TestExactCounting:
    def test_count_matches_reference(self, db):
        assert db.count(select(rel("r1"), cmp("a", "<", 3))) == 150

    def test_count_timed_returns_cost(self, db):
        value, seconds = db.count_timed(rel("r1"))
        assert value == 500
        assert seconds > 0.0

    def test_invalid_clock_kind_rejected(self):
        with pytest.raises(ReproError):
            Database(clock="sundial")


class TestCountEstimate:
    def test_estimate_has_run_diagnostics(self, db):
        expr = select(rel("r1"), cmp("a", "<", 3))
        result = db.estimate(expr, quota=1.0, seed=7)
        assert result.estimate is not None
        assert result.stages >= 1
        assert result.blocks > 0
        assert 0 <= result.utilization <= 1
        assert result.quota == 1.0
        lo, hi = result.confidence_interval(0.95)
        assert lo <= result.value <= hi

    def test_same_seed_reproduces(self, db):
        expr = select(rel("r1"), cmp("a", "<", 3))
        a = db.estimate(expr, quota=1.0, seed=3)
        b = db.estimate(expr, quota=1.0, seed=3)
        assert a.value == b.value
        assert a.stages == b.stages

    def test_master_seed_spawns_distinct_streams(self, db):
        expr = select(rel("r1"), cmp("a", "<", 3))
        a = db.estimate(expr, quota=1.0)
        b = db.estimate(expr, quota=1.0)
        # Distinct spawned streams: almost surely different sample draws.
        assert (a.value, a.blocks) != (b.value, b.blocks) or a.stages != b.stages

    def test_union_query_estimable(self, db):
        result = db.estimate(union(rel("r1"), rel("r2")), quota=2.0, seed=1)
        assert result.estimate is not None
        true = db.count(union(rel("r1"), rel("r2")))
        assert result.value == pytest.approx(true, rel=0.5)

    def test_join_query_estimable(self, db):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        result = db.estimate(
            expr, quota=6.0, strategy=OneAtATimeInterval(d_beta=12.0), seed=5
        )
        assert result.estimate is not None

    def test_summary_readable(self, db):
        result = db.estimate(
            select(rel("r1"), cmp("a", "<", 3)), quota=1.0, seed=7
        )
        text = result.summary()
        assert "COUNT" in text and "stages" in text

    def test_relative_error(self, db):
        expr = select(rel("r1"), cmp("a", "<", 3))
        result = db.estimate(expr, quota=4.0, seed=7)
        assert result.relative_error(150) >= 0.0

    def test_wall_clock_mode_runs(self):
        """The same controller against real time (tiny workload)."""
        db = Database(
            profile=MachineProfile.uniform(0.0), seed=0, clock="wall"
        )
        db.create_relation(
            "r1", [("id", "int"), ("a", "int")],
            rows=[(i, i % 5) for i in range(100)], block_size=16,
        )
        result = db.estimate(
            select(rel("r1"), cmp("a", "<", 2)), quota=2.0, seed=1
        )
        # Work is free in simulated charge terms but real wall time passes;
        # the run must produce an estimate well within the 2 s quota.
        assert result.estimate is not None


class TestQueryResultEdgeCases:
    def test_value_without_estimate_raises(self):
        from repro.core.result import QueryResult
        from repro.timecontrol.executor import RunReport

        result = QueryResult(report=RunReport(quota=1.0, started_at=0.0,
                                              termination="interrupted"))
        with pytest.raises(EstimationError):
            result.value
        with pytest.raises(EstimationError):
            result.confidence_interval()
        assert "no estimate" in result.summary()

    def test_relative_error_of_zero_truth(self, db):
        expr = select(rel("r1"), cmp("a", "<", 0))  # empty result
        result = db.estimate(expr, quota=2.0, seed=3)
        err = result.relative_error(0)
        assert err == 0.0 or err == float("inf")
