"""Database.explain, the REPRO_OPTIMIZE switch, planner trace events, and
the optimize=False bit-identity contract."""

import pytest

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro.observability import RecordingSink
from repro import caches
from repro.planner import optimizer_enabled
from repro.planner.explain import render_tree
from repro.relational.expression import intersect, join, project, rel, select
from repro.relational.predicate import cmp
from repro.server.admission import minimum_stage_cost


@pytest.fixture(autouse=True)
def fresh_cache():
    caches.get("plans").clear()
    yield
    caches.get("plans").clear()


def build_db(seed: int = 7) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "orders",
        [("oid", "int"), ("qty", "int"), ("pid", "int")],
        rows=[(i, i % 50, i % 20) for i in range(2_000)],
    )
    db.create_relation(
        "parts",
        [("part", "int"), ("w", "int")],
        rows=[(i, i % 7) for i in range(200)],
    )
    return db


def pushable():
    return select(
        join(rel("orders"), rel("parts"), on=[("pid", "part")]),
        cmp("qty", ">", 40),
    )


# ----------------------------------------------------------------------
# Database.explain
# ----------------------------------------------------------------------
def test_explain_shows_rewrite_and_cheaper_stage():
    explanation = build_db().explain(pushable())
    assert explanation.optimized
    assert [a.rule for a in explanation.applications] == ["push-predicates"]
    # Trees: selection above the join before, below it after.
    assert str(explanation.before).startswith("select(")
    assert str(explanation.after).startswith("join(")
    # Per-stage predicted costs itemized for both plans, scans included.
    before_labels = {n.label for n in explanation.before_costs.nodes}
    assert {"scan(orders)", "scan(parts)"} <= before_labels
    assert explanation.before_costs.total > 0
    assert explanation.after_costs.total > 0
    # Pushdown makes the cheapest useful stage strictly cheaper.
    assert explanation.after_costs.total < explanation.before_costs.total
    assert explanation.predicted_speedup > 1.0


def test_explain_render_is_complete():
    explanation = build_db().explain(pushable())
    text = explanation.render()
    for section in (
        "logical plan (as written)",
        "rewrites",
        "logical plan (optimized)",
        "push-predicates",
        "predicted minimum stage",
        "speedup",
    ):
        assert section in text
    assert text == str(explanation)


def test_explain_trivial_query_reports_no_rewrites():
    explanation = build_db().explain(select(rel("orders"), cmp("qty", ">", 40)))
    assert not explanation.optimized
    assert explanation.applications == ()
    assert explanation.before == explanation.after
    assert explanation.predicted_speedup == pytest.approx(1.0)
    assert "(no rule fired)" in explanation.render()


def test_explain_second_call_reports_cache_hit():
    db = build_db()
    assert not db.explain(pushable()).cache_hit
    assert db.explain(pushable()).cache_hit


def test_render_tree_box_drawing():
    text = render_tree(pushable())
    lines = text.splitlines()
    assert lines[0] == "select [qty>40]"
    assert any("join [pid=part]" in line for line in lines)
    assert any(line.endswith("orders") for line in lines)
    assert any("└─ parts" in line for line in lines)


# ----------------------------------------------------------------------
# Switch resolution: explicit > options > environment
# ----------------------------------------------------------------------
def test_optimizer_enabled_follows_env(monkeypatch):
    monkeypatch.delenv("REPRO_OPTIMIZE", raising=False)
    assert optimizer_enabled()
    monkeypatch.setenv("REPRO_OPTIMIZE", "0")
    assert not optimizer_enabled()
    monkeypatch.setenv("REPRO_OPTIMIZE", "off")
    assert not optimizer_enabled()
    monkeypatch.setenv("REPRO_OPTIMIZE", "1")
    assert optimizer_enabled()


def test_session_resolves_optimize_from_env(monkeypatch):
    db = build_db()
    monkeypatch.setenv("REPRO_OPTIMIZE", "0")
    off = db.open_session(pushable(), quota=5.0, seed=0)
    assert not off.optimize and off.plan.rule_applications == ()
    assert off.plan.optimized_expr == pushable()
    # An explicit option beats the environment.
    forced = db.open_session(
        pushable(), quota=5.0, seed=0, options=QueryOptions(optimize=True)
    )
    assert forced.optimize and forced.plan.rule_applications
    monkeypatch.delenv("REPRO_OPTIMIZE", raising=False)
    default = db.open_session(pushable(), quota=5.0, seed=0)
    assert default.optimize


# ----------------------------------------------------------------------
# Bit-identity: optimize=False is the pre-planner engine
# ----------------------------------------------------------------------
def run_signature(db, seed, **kwargs):
    session = db.open_session(pushable(), quota=2_000.0, seed=seed, **kwargs)
    result = session.run()
    report = result.report
    return (
        None if result.estimate is None else
        (result.estimate.value, result.estimate.variance),
        report.termination,
        [(s.fraction, s.blocks_read, s.new_points) for s in report.stages],
        session.plan.blocks_drawn(),
        session.charger.clock.now(),
    )


def test_optimize_off_paths_are_identical(monkeypatch):
    baseline = run_signature(build_db(), 3, optimize=False)
    monkeypatch.setenv("REPRO_OPTIMIZE", "0")
    via_env = run_signature(build_db(), 3)
    monkeypatch.delenv("REPRO_OPTIMIZE", raising=False)
    via_options = run_signature(
        build_db(), 3, options=QueryOptions(optimize=False)
    )
    assert baseline == via_env == via_options


def test_optimized_run_estimates_the_same_query():
    db = build_db()
    exact = db.count(pushable())
    on = run_signature(build_db(), 5)
    off = run_signature(build_db(), 5, optimize=False)
    # Different plans, same answer ballpark: both CIs bracket the truth
    # loosely here; the strict equivalence contract lives in the
    # exact-evaluator property tests.
    (value_on, _), *_ = on
    (value_off, _), *_ = off
    assert value_on == pytest.approx(exact, rel=0.5)
    assert value_off == pytest.approx(exact, rel=0.5)
    # The optimized plan affords at least as many blocks in-quota.
    assert on[3] >= off[3]


# ----------------------------------------------------------------------
# Trace events
# ----------------------------------------------------------------------
def test_optimized_traced_session_emits_planner_events():
    db = build_db()
    sink = RecordingSink()
    session = db.open_session(
        pushable(), quota=50.0, seed=0, sink=sink, optimize=True
    )
    applied = sink.of_kind("rule_applied")
    summaries = sink.of_kind("plan_optimized")
    assert [e.rule for e in applied] == ["push-predicates"]
    assert len(summaries) == 1
    event = summaries[0]
    assert event.rules == "push-predicates" and event.rules_applied == 1
    assert event.before_hash == pushable().structural_hash()
    assert event.after_hash == session.plan.optimized_expr.structural_hash()
    assert event.operators_before == 2 and event.operators_after == 2
    # Events round-trip through the JSONL registry.
    from repro.observability import event_from_dict

    assert event_from_dict(event.to_dict()) == event
    assert event_from_dict(applied[0].to_dict()) == applied[0]


def test_untouched_query_emits_no_planner_events_and_starts_clean():
    db = build_db()
    sink = RecordingSink()
    session = db.open_session(
        select(rel("orders"), cmp("qty", ">", 40)), quota=50.0, seed=0,
        sink=sink,
    )
    assert sink.of_kind("rule_applied") == []
    assert sink.of_kind("plan_optimized") == []
    session.run()
    assert sink.kinds()[0] == "query_start"


# ----------------------------------------------------------------------
# Admission prices the optimized plan
# ----------------------------------------------------------------------
def test_minimum_stage_cost_prices_the_plan_it_will_run():
    db = build_db()
    cost_model = db.default_cost_model()
    optimized = db.open_session(
        pushable(), quota=5.0, seed=0, cost_model=cost_model, optimize=True
    )
    verbatim = db.open_session(
        pushable(), quota=5.0, seed=0, cost_model=cost_model, optimize=False
    )
    assert minimum_stage_cost(optimized) < minimum_stage_cost(verbatim)


def test_projection_query_explains_and_prices():
    db = build_db()
    expr = select(
        project(project(rel("orders"), ("oid", "qty")), ("qty",)),
        cmp("qty", ">", 40),
    )
    explanation = db.explain(expr)
    rules = [a.rule for a in explanation.applications]
    assert "prune-projections" in rules and "push-predicates" in rules
    assert explanation.after_costs.total <= explanation.before_costs.total


def test_setop_normalization_shares_plan_identity():
    db = build_db()
    db.create_relation(
        "orders_b",
        [("oid", "int"), ("qty", "int"), ("pid", "int")],
        rows=[(i, i % 50, i % 20) for i in range(1_000, 3_000)],
    )
    a = intersect(rel("orders"), rel("orders_b"))
    b = intersect(rel("orders_b"), rel("orders"))
    ex_a = db.explain(a)
    ex_b = db.explain(b)
    assert ex_a.after.canonical_str() == ex_b.after.canonical_str()
    assert ex_b.cache_hit  # commuted operands found the same cache entry
