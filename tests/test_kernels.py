"""Unit tests of the columnar kernel layer (:mod:`repro.kernels`).

Each kernel is checked against the obvious row-at-a-time computation it
replaces — the reference merge operators, ``sorted`` with tuple keys, or a
hand-rolled double loop. The engine-level bit-identity guarantees are
covered separately by the property and stress suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.schema import Attribute, Schema
from repro.catalog.types import AttributeType
from repro.kernels import kernels_enabled
from repro.kernels.cache import cached_sort_key, compiled_predicate
from repro.kernels.columns import ColumnBatch, column_array, columnize
from repro.kernels.runs import (
    KeyedRows,
    SortedRun,
    encode_columns,
    first_occurrence,
    intersect_new_new,
    intersect_vs_run,
    join_new_new,
    join_vs_run,
    match_pairs,
    rows_array,
    stable_lexsort,
)
from repro.relational.operators import (
    key_for_positions,
    merge_intersect,
    merge_join,
)
from repro.relational.predicate import And, Not, Or, TruePredicate, attr, cmp
from repro.storage.block import DiskBlock
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile

SCHEMA = Schema(
    (
        Attribute("a", AttributeType.INT),
        Attribute("b", AttributeType.FLOAT),
        Attribute("c", AttributeType.STR),
    )
)


def free_charger() -> CostCharger:
    return CostCharger(MachineProfile.uniform(0.0))


# ----------------------------------------------------------------------
# Column decoding
# ----------------------------------------------------------------------
def test_column_array_dtypes():
    assert column_array([1, 2, 3], AttributeType.INT).dtype == np.int64
    assert column_array([1.5, 2.5], AttributeType.FLOAT).dtype == np.float64
    assert column_array(["x", "yy"], AttributeType.STR).dtype.kind == "U"


def test_column_array_empty_is_typed():
    assert column_array((), AttributeType.INT).dtype == np.int64
    assert column_array((), AttributeType.FLOAT).dtype == np.float64
    assert column_array((), AttributeType.STR).dtype.kind == "U"


def test_column_array_huge_int_falls_back_to_object():
    huge = 1 << 80
    col = column_array([1, huge], AttributeType.INT)
    assert col.dtype == object
    assert col[1] == huge


def test_columnize_round_trips_rows():
    rows = [(1, 0.5, "x"), (2, 1.5, "y")]
    cols = columnize(rows, SCHEMA)
    assert [c.tolist() for c in cols] == [[1, 2], [0.5, 1.5], ["x", "y"]]
    assert all(len(c) == 0 for c in columnize([], SCHEMA))


def test_columnize_uniform_int_matrix_path_matches_per_column():
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    rows = [(i, i % 7) for i in range(100)]
    cols = columnize(rows, schema)
    for position, col in enumerate(cols):
        expected = column_array([r[position] for r in rows], AttributeType.INT)
        assert col.dtype == expected.dtype == np.int64
        assert col.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(col, expected)


def test_columnize_uniform_float_matrix_path_matches_per_column():
    schema = Schema.of(x=AttributeType.FLOAT, y=AttributeType.FLOAT)
    rows = [(i * 0.5, i * 0.25) for i in range(50)]
    cols = columnize(rows, schema)
    assert all(c.dtype == np.float64 for c in cols)
    assert cols[0].tolist() == [i * 0.5 for i in range(50)]


def test_columnize_wide_int_overflow_falls_back_to_object():
    """Regression: an INT too wide for int64 must not break (or silently
    wrap through) the 2-D fast path — the per-column object fallback keeps
    exact Python comparison semantics."""
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    huge = 1 << 80
    rows = [(1, 10), (2, huge), (3, -huge)]
    cols = columnize(rows, schema)
    assert cols[1].dtype == object
    assert cols[1][1] == huge and cols[1][2] == -huge
    assert cols[0].tolist() == [1, 2, 3]


def test_column_batch_lazy_and_cached():
    rows = [(1, 0.5, "x"), (2, 1.5, "y"), (3, 2.5, "z")]
    batch = ColumnBatch(rows, SCHEMA)
    assert len(batch) == 3
    first = batch.column(0)
    assert first is batch.column(0)  # cached
    got = batch.key_columns([2, 0])
    assert got[0].tolist() == ["x", "y", "z"]
    assert got[1] is first


def test_disk_block_columns():
    block = DiskBlock(block_id=0, capacity=4, rows=[(1, 1.0, "a"), (2, 2.0, "b")])
    cols = block.columns(SCHEMA)
    assert [c.tolist() for c in cols] == [[1, 2], [1.0, 2.0], ["a", "b"]]


# ----------------------------------------------------------------------
# Sorting and key codes
# ----------------------------------------------------------------------
def test_stable_lexsort_matches_sorted_with_ties():
    rng = np.random.default_rng(0)
    rows = [
        (int(rng.integers(0, 4)), int(rng.integers(0, 3)), i) for i in range(200)
    ]
    cols = [
        np.array([r[0] for r in rows]),
        np.array([r[1] for r in rows]),
    ]
    order = stable_lexsort(cols)
    got = [rows[i] for i in order]
    # Stability: equal (a, b) keys keep original appearance order (the
    # trailing i is the original index, untouched by the key).
    assert got == sorted(rows, key=lambda r: (r[0], r[1], r[2]))


def test_encode_columns_orders_like_tuples_across_sets():
    set_a = [np.array([3, 1, 2]), np.array(["x", "z", "x"])]
    set_b = [np.array([2, 1]), np.array(["y", "z"])]
    codes = encode_columns([set_a, set_b])
    tuples = [(3, "x"), (1, "z"), (2, "x"), (2, "y"), (1, "z")]
    flat = np.concatenate(codes).tolist()
    for i in range(len(tuples)):
        for j in range(len(tuples)):
            assert (flat[i] < flat[j]) == (tuples[i] < tuples[j])
            assert (flat[i] == flat[j]) == (tuples[i] == tuples[j])


def test_encode_columns_densifies_instead_of_overflowing():
    # Five wide-cardinality columns would overflow a naive 64-bit radix
    # product; densification keeps codes exact.
    rng = np.random.default_rng(1)
    cols = [rng.integers(0, 1 << 16, size=64) for _ in range(5)]
    codes = encode_columns([[np.asarray(c) for c in cols]])[0]
    tuples = list(zip(*(c.tolist() for c in cols)))
    order_codes = np.argsort(codes, kind="stable").tolist()
    order_tuples = sorted(range(len(tuples)), key=lambda i: (tuples[i], i))
    assert order_codes == order_tuples


def test_match_pairs_is_a_major_and_complete():
    a = np.array([1, 2, 2, 5])
    b = np.array([2, 2, 3, 5, 5])
    l_idx, r_idx = match_pairs(a, b)
    pairs = list(zip(l_idx.tolist(), r_idx.tolist()))
    expected = [
        (i, j) for i in range(len(a)) for j in range(len(b)) if a[i] == b[j]
    ]
    assert pairs == expected


def test_match_pairs_empty_sides():
    empty = np.empty(0, dtype=np.int64)
    l_idx, r_idx = match_pairs(empty, np.array([1, 2]))
    assert len(l_idx) == 0 and len(r_idx) == 0
    l_idx, r_idx = match_pairs(np.array([1, 2]), empty)
    assert len(l_idx) == 0 and len(r_idx) == 0


def test_first_occurrence():
    assert first_occurrence(np.array([1, 1, 2, 4, 4, 4])).tolist() == [0, 2, 3]
    assert first_occurrence(np.empty(0, dtype=np.int64)).tolist() == []


# ----------------------------------------------------------------------
# SortedRun + merge kernels vs the reference operators
# ----------------------------------------------------------------------
def _keyed(rows, positions):
    cols = [np.array([r[p] for r in rows]) for p in positions]
    order = stable_lexsort(cols)
    ordered = [rows[i] for i in order]
    cols = [c[order] for c in cols]
    (codes,) = encode_columns([cols])
    return ordered, cols, KeyedRows(codes, rows_array(ordered))


def test_join_kernels_match_reference_merge_join():
    rng = np.random.default_rng(2)
    key_l, key_r = [0], [1]
    run_stages = [
        [(int(rng.integers(0, 6)), i) for i in range(n)] for n in (7, 0, 9, 5)
    ]
    new_right = [(i, int(rng.integers(0, 6))) for i in range(8)]
    run = SortedRun()
    for stage, rows in enumerate(run_stages, start=1):
        ordered, cols, _ = _keyed(rows, key_l)
        run.merge_in(cols, rows_array(ordered), stage)
    ordered_r, cols_r, keyed_r = _keyed(new_right, key_r)
    (run_codes, new_codes) = encode_columns(
        [run.key_columns_or_empty(cols_r), cols_r]
    )
    keyed_r = KeyedRows(new_codes, rows_array(ordered_r))
    outputs = join_vs_run(keyed_r, run, run_codes, new_on_left=False)
    for rows, got in zip(run_stages, outputs):
        ordered_l, _, _ = _keyed(rows, key_l)
        expected = merge_join(
            ordered_l, ordered_r, key_l, key_r, free_charger(), 5
        )
        assert got == expected


def test_join_new_new_matches_reference():
    rng = np.random.default_rng(3)
    left = [(int(rng.integers(0, 5)), i) for i in range(20)]
    right = [(i, int(rng.integers(0, 5))) for i in range(15)]
    ordered_l, cols_l, _ = _keyed(left, [0])
    ordered_r, cols_r, _ = _keyed(right, [1])
    codes_l, codes_r = encode_columns([cols_l, cols_r])
    got = join_new_new(
        KeyedRows(codes_l, rows_array(ordered_l)),
        KeyedRows(codes_r, rows_array(ordered_r)),
    )
    expected = merge_join(ordered_l, ordered_r, [0], [1], free_charger(), 5)
    assert got == expected


def test_intersect_kernels_match_reference_merge_intersect():
    rng = np.random.default_rng(4)
    positions = [0, 1]
    run_stages = [
        [(int(rng.integers(0, 4)), int(rng.integers(0, 3))) for _ in range(n)]
        for n in (6, 10, 0, 4)
    ]
    new = [(int(rng.integers(0, 4)), int(rng.integers(0, 3))) for _ in range(9)]
    run = SortedRun()
    for stage, rows in enumerate(run_stages, start=1):
        ordered, cols, _ = _keyed(rows, positions)
        run.merge_in(cols, rows_array(ordered), stage)
    ordered_n, cols_n, _ = _keyed(new, positions)
    run_codes, new_codes = encode_columns(
        [run.key_columns_or_empty(cols_n), cols_n]
    )
    keyed_n = KeyedRows(new_codes, rows_array(ordered_n))
    outputs = intersect_vs_run(keyed_n, run, run_codes)
    for rows, got in zip(run_stages, outputs):
        ordered_old, _, _ = _keyed(rows, positions)
        expected = merge_intersect(ordered_n, ordered_old, free_charger(), 5)
        assert got == expected
    # new x new direction too
    other = [(int(rng.integers(0, 4)), int(rng.integers(0, 3))) for _ in range(7)]
    ordered_o, cols_o, _ = _keyed(other, positions)
    codes_n2, codes_o = encode_columns([cols_n, cols_o])
    got = intersect_new_new(
        KeyedRows(codes_n2, rows_array(ordered_n)),
        KeyedRows(codes_o, rows_array(ordered_o)),
    )
    assert got == merge_intersect(ordered_n, ordered_o, free_charger(), 5)


def test_sorted_run_stays_globally_sorted():
    rng = np.random.default_rng(5)
    run = SortedRun()
    for stage in range(1, 5):
        rows = [(int(rng.integers(0, 10)),) for _ in range(6)]
        ordered, cols, _ = _keyed(rows, [0])
        run.merge_in(cols, rows_array(ordered), stage)
    keys = run.key_cols[0].tolist()
    assert keys == sorted(keys)
    assert len(run) == 24
    assert [(s, n) for s, n in run.lengths] == [(1, 6), (2, 6), (3, 6), (4, 6)]
    # Within equal keys, earlier stages come first (stable merge).
    for value in set(keys):
        tags = run.stages[run.key_cols[0] == value].tolist()
        assert tags == sorted(tags)


# ----------------------------------------------------------------------
# Predicate masks and compilation cache
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "predicate",
    [
        cmp("a", "<", 2),
        cmp("c", "==", "x"),
        cmp("b", ">=", attr("a")),
        And((cmp("a", ">", 0), cmp("b", "<", 2.0))),
        Or((cmp("a", "==", 1), Not(cmp("c", "!=", "y")))),
        TruePredicate(),
    ],
)
def test_mask_agrees_with_row_function(predicate):
    rows = [(i % 4, float(i % 3), "xyz"[i % 3]) for i in range(24)]
    compiled = compiled_predicate(predicate, SCHEMA)
    mask = compiled.mask_fn(ColumnBatch(rows, SCHEMA))
    assert mask.dtype == bool
    assert mask.tolist() == [compiled.row_fn(r) for r in rows]
    assert compiled.comparison_count == predicate.comparison_count()


def test_compiled_predicate_is_cached_per_predicate_and_schema():
    a = compiled_predicate(cmp("a", "<", 7), SCHEMA)
    b = compiled_predicate(cmp("a", "<", 7), SCHEMA)
    assert a is b
    c = compiled_predicate(cmp("a", "<", 8), SCHEMA)
    assert c is not a


def test_compiled_predicate_unhashable_constant_falls_back():
    sneaky = cmp("a", "==", [1, 2])  # list constant: unhashable
    compiled = compiled_predicate(sneaky, SCHEMA)
    assert compiled.row_fn((1, 0.0, "x")) is False


def test_cached_sort_key_is_shared():
    assert cached_sort_key((0, 2)) is cached_sort_key((0, 2))
    key = cached_sort_key((2, 0))
    assert key(("r", 1.0, "k")) == key_for_positions([2, 0])(("r", 1.0, "k"))


# ----------------------------------------------------------------------
# Environment switch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value,expected", [
    (None, True),
    ("1", True),
    ("yes", True),
    ("0", False),
    ("false", False),
    ("OFF", False),
    (" no ", False),
])
def test_kernels_enabled_env_switch(monkeypatch, value, expected):
    if value is None:
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
    else:
        monkeypatch.setenv("REPRO_KERNELS", value)
    assert kernels_enabled() is expected
