"""Server-side fault handling: retry within budget, degrade, never raise.

The scheduler's extension of the total contract under injected faults:
transient fault losses get one (configurable) deterministic re-execution
with a capped backoff charged to the request's own budget; runs that faults
defeat entirely fall back to the zero-sampling degraded answer when
prestored statistics allow it; and every retry is a registered trace event.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultPlan
from repro.observability import RecordingSink
from repro.relational.expression import intersect, rel, select
from repro.relational.predicate import cmp
from repro.server.admission import AdmitAll
from repro.server.request import Outcome, QueryRequest
from repro.server.scheduler import QueryServer
from repro.server.workload import demo_database

TUPLES = 1_000

# Defeats every attempt outright: the first stage's first attempt always
# faults and salvage finishes immediately with nothing sampled yet.
LETHAL_PLAN = FaultPlan(fail_stages=(1,), salvage="finish")
NOISY_PLAN = FaultPlan(read_error_prob=0.04, slow_read_prob=0.05)


def query(threshold: int = TUPLES // 2):
    return select(rel("r1"), cmp("a", "<", threshold))


def request(quota=2.0, seed=1, expr=None, **kw):
    return QueryRequest(
        expr=expr if expr is not None else query(),
        quota=quota,
        seed=seed,
        **kw,
    )


def make_server(db, plan, sink=None, **kw):
    return QueryServer(
        db,
        policy=AdmitAll(),
        sink=sink,
        session_kwargs={"fault_plan": plan},
        **kw,
    )


@pytest.fixture()
def db():
    return demo_database(seed=5, tuples=TUPLES)  # analyzed: degraded OK


@pytest.fixture()
def bare_db():
    return demo_database(seed=5, tuples=TUPLES, analyze=False)


class TestRetry:
    def test_lethal_faults_retry_then_degrade(self, db):
        sink = RecordingSink()
        server = make_server(db, LETHAL_PLAN, sink=sink)
        outcome = server.serve(request())
        assert outcome.outcome is Outcome.DEGRADED
        assert outcome.admitted
        assert outcome.estimate is not None  # the zero-sampling answer
        assert "2 attempt(s)" in outcome.reason
        (retry,) = sink.of_kind("request_retried")
        assert retry.attempt == 1
        assert retry.backoff_seconds >= 0
        assert "fault" in retry.reason

    def test_zero_retries_disables_the_retry_leg(self, db):
        sink = RecordingSink()
        server = make_server(db, LETHAL_PLAN, sink=sink, max_fault_retries=0)
        outcome = server.serve(request())
        assert outcome.outcome is Outcome.DEGRADED
        assert "1 attempt(s)" in outcome.reason
        assert sink.of_kind("request_retried") == []

    def test_backoff_is_charged_to_the_request_clock(self, db):
        sink = RecordingSink()
        server = make_server(db, LETHAL_PLAN, sink=sink, retry_backoff=0.1)
        outcome = server.serve(request())
        (retry,) = sink.of_kind("request_retried")
        assert retry.backoff_seconds == pytest.approx(0.1)
        # The stall happened on the shared clock inside the request window.
        assert outcome.finished_at - outcome.started_at >= 0.1

    def test_negative_retry_configuration_rejected(self, db):
        with pytest.raises(ValueError):
            QueryServer(db, max_fault_retries=-1)
        with pytest.raises(ValueError):
            QueryServer(db, retry_backoff=-0.1)


class TestDegradedFallback:
    def test_unanalyzed_database_misses_instead(self, bare_db):
        server = make_server(bare_db, LETHAL_PLAN)
        outcome = server.serve(request())
        assert outcome.outcome is Outcome.MISSED
        assert outcome.estimate is None

    def test_statistics_free_query_misses_instead(self, db):
        # Intersections are outside the prestored statistics' coverage, so
        # there is no degraded answer to fall back to.
        server = make_server(db, LETHAL_PLAN)
        outcome = server.serve(
            request(expr=intersect(rel("r1"), rel("r2")), quota=2.0)
        )
        assert outcome.outcome is Outcome.MISSED


class TestTotalContractUnderFaults:
    def test_faulted_stream_ends_in_typed_outcomes_only(self, db):
        server = make_server(db, NOISY_PLAN)
        requests = [
            request(quota=0.5 + 0.25 * (i % 4), seed=100 + i, arrival=0.3 * i)
            for i in range(12)
        ]
        outcomes = server.process(requests)
        assert len(outcomes) == len(requests)
        assert all(isinstance(o.outcome, Outcome) for o in outcomes)
        answered = [o for o in outcomes if o.outcome is Outcome.ANSWERED]
        assert answered, "faults at p=0.04 should not defeat every request"

    def test_fault_events_are_traced(self, db):
        sink = RecordingSink()
        server = make_server(
            db, FaultPlan(read_error_prob=0.10), sink=sink, trace_queries=True
        )
        server.process(
            [request(seed=50 + i, arrival=0.5 * i) for i in range(8)]
        )
        assert sink.of_kind("fault_injected")  # injections visible in trace

    def test_same_fault_seeds_reproduce_the_same_outcomes(self, db):
        def run():
            server = make_server(
                demo_database(seed=5, tuples=TUPLES), NOISY_PLAN
            )
            outcomes = server.process(
                [request(seed=70 + i, arrival=0.4 * i) for i in range(10)]
            )
            return [
                (
                    o.outcome,
                    None if o.estimate is None else o.estimate.value,
                    o.reason,
                )
                for o in outcomes
            ]

        assert run() == run()


class TestPersistentFailureFallback:
    """Retries exhausted with an exception in hand must still try the
    zero-sampling fallback — the same one fault-defeated runs get.
    (Regression: the failure branch used to go straight to MISSED.)"""

    @staticmethod
    def _crash_dispatch_sessions(db, monkeypatch):
        from repro.errors import StorageError

        real = db.open_session

        def crashing(*args, **kwargs):
            # Dispatch sessions pass the stopping criterion; admission
            # probes do not — they must keep working or the request is
            # rejected before the execution path under test is reached.
            if "stopping" in kwargs:
                raise StorageError("device failed mid-dispatch")
            return real(*args, **kwargs)

        monkeypatch.setattr(db, "open_session", crashing)

    def test_crashed_execution_degrades_when_coverage_exists(
        self, db, monkeypatch
    ):
        self._crash_dispatch_sessions(db, monkeypatch)
        server = QueryServer(db, policy=AdmitAll())
        outcome = server.serve(request())
        assert outcome.outcome is Outcome.DEGRADED
        assert outcome.estimate is not None
        assert "execution failed" in outcome.reason
        assert "zero-sampling" in outcome.reason

    def test_crashed_execution_misses_without_coverage(
        self, bare_db, monkeypatch
    ):
        self._crash_dispatch_sessions(bare_db, monkeypatch)
        server = QueryServer(bare_db, policy=AdmitAll())
        outcome = server.serve(request())
        assert outcome.outcome is Outcome.MISSED
        assert outcome.estimate is None
        assert "execution failed" in outcome.reason


class TestRetryBackoffAccounting:
    def test_final_backoff_not_charged_when_no_attempt_can_follow(self, db):
        # A backoff that would consume the whole remaining budget buys
        # nothing: no retry could start after it. The scheduler must not
        # emit the RequestRetried promise nor burn the clock.
        sink = RecordingSink()
        server = make_server(db, LETHAL_PLAN, sink=sink, retry_backoff=10.0)
        outcome = server.serve(request(quota=2.0))
        assert sink.of_kind("request_retried") == []
        assert outcome.outcome is Outcome.DEGRADED
        assert "1 attempt(s)" in outcome.reason  # only the one that ran
        # The clock stops where the failed attempt stopped, well before
        # the deadline the charged backoff would have dragged it to.
        assert outcome.finished_at < outcome.request.deadline

    def test_charged_backoff_still_precedes_a_real_retry(self, db):
        sink = RecordingSink()
        server = make_server(db, LETHAL_PLAN, sink=sink, retry_backoff=0.1)
        outcome = server.serve(request(quota=2.0))
        (retry,) = sink.of_kind("request_retried")
        assert retry.backoff_seconds == pytest.approx(0.1)
        assert "2 attempt(s)" in outcome.reason

    def test_queue_wait_is_pre_dispatch_wait_only(self, db):
        # RequestCompleted.queue_wait excludes inter-retry backoff: it is
        # the arrival → first-dispatch distance, nothing else.
        sink = RecordingSink()
        server = make_server(db, LETHAL_PLAN, sink=sink, retry_backoff=0.1)
        blocker = request(quota=1.0, seed=1, arrival=0.0)
        waiter = request(quota=2.0, seed=2, arrival=0.2)
        outcomes = {
            o.request.request_id: o
            for o in server.process([blocker, waiter])
        }
        waited = outcomes[waiter.request_id]
        assert waited.queue_wait == pytest.approx(
            waited.started_at - waiter.arrival
        )
        # The backoff happened (clock moved inside the dispatch window)
        # but is charged to execution, not to the reported wait.
        assert waited.finished_at - waited.started_at >= 0.1
        completed = {
            e.request_id: e for e in sink.of_kind("request_completed")
        }
        assert completed[waiter.request_id].queue_wait == pytest.approx(
            waited.queue_wait
        )
