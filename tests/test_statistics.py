"""Tests for histograms, ANALYZE, and prestored selectivity hints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.core.database import Database
from repro.errors import EstimationError, ReproError
from repro.relational.expression import intersect, join, project, rel, select
from repro.relational.predicate import attr, cmp
from repro.statistics.histogram import EquiDepthHistogram
from repro.statistics.prestored import SelectivityHinter
from repro.statistics.stats import analyze
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


class TestEquiDepthHistogram:
    def test_build_uniform(self):
        hist = EquiDepthHistogram.build(list(range(100)), buckets=4)
        assert hist.total == 100
        assert hist.distinct == 100
        assert sum(hist.depths) == 100
        # Equi-depth: all buckets hold ~the same count.
        assert max(hist.depths) - min(hist.depths) <= 1

    def test_empty_values(self):
        hist = EquiDepthHistogram.build([], buckets=4)
        assert hist.total == 0
        assert hist.selectivity("<", 10) == 0.0

    def test_range_selectivity_uniform(self):
        hist = EquiDepthHistogram.build(list(range(1000)), buckets=16)
        assert hist.selectivity("<", 250) == pytest.approx(0.25, abs=0.02)
        assert hist.selectivity(">=", 250) == pytest.approx(0.75, abs=0.02)
        assert hist.selectivity("<", -5) == 0.0
        assert hist.selectivity(">", 2000) == 0.0

    def test_equality_selectivity(self):
        hist = EquiDepthHistogram.build([1, 1, 2, 2, 3, 3, 4, 4], buckets=4)
        assert hist.selectivity("==", 2) == pytest.approx(1 / 4)
        assert hist.selectivity("==", 99) == 0.0
        assert hist.selectivity("!=", 2) == pytest.approx(3 / 4)

    def test_skewed_data_bounded_error(self):
        """Equi-depth's selling point: selectivity error bounded under skew."""
        rng = np.random.default_rng(0)
        values = (rng.zipf(1.5, size=5_000) % 1000).tolist()
        hist = EquiDepthHistogram.build(values, buckets=32)
        for threshold in (1, 5, 50, 500):
            true = sum(1 for v in values if v < threshold) / len(values)
            est = hist.selectivity("<", threshold)
            assert est == pytest.approx(true, abs=0.08)

    def test_unknown_op_rejected(self):
        hist = EquiDepthHistogram.build([1, 2, 3], buckets=2)
        with pytest.raises(EstimationError):
            hist.selectivity("~", 1)

    def test_join_selectivity_identical_uniform(self):
        """Self-join of a uniform attribute: true sel = 1/distinct."""
        values = [i % 50 for i in range(1000)]
        hist = EquiDepthHistogram.build(values, buckets=16)
        sel = hist.join_selectivity(hist)
        assert sel == pytest.approx(1 / 50, rel=0.5)

    def test_join_selectivity_disjoint_domains(self):
        a = EquiDepthHistogram.build(list(range(0, 100)), buckets=4)
        b = EquiDepthHistogram.build(list(range(500, 600)), buckets=4)
        assert a.join_selectivity(b) == 0.0

    def test_join_selectivity_empty(self):
        a = EquiDepthHistogram.build([], buckets=4)
        b = EquiDepthHistogram.build([1], buckets=4)
        assert a.join_selectivity(b) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=300),
        st.integers(0, 55),
    )
    def test_property_range_estimate_bounded(self, values, threshold):
        hist = EquiDepthHistogram.build(values, buckets=8)
        true = sum(1 for v in values if v < threshold) / len(values)
        est = hist.selectivity("<", threshold)
        # At most one bucket straddles the threshold, so the interpolation
        # error is bounded by the deepest bucket's mass (plus slack for the
        # mass sitting exactly at the threshold value).
        at_value = sum(1 for v in values if v == threshold) / len(values)
        bound = max(hist.depths) / hist.total + at_value + 1e-9
        assert abs(est - true) <= bound


class TestAnalyze:
    def test_histograms_for_numeric_attributes(self, int_schema):
        relation = make_relation(
            "r", int_schema, [(i, i % 10) for i in range(100)]
        )
        stats = analyze(relation, buckets=8)
        assert stats.tuple_count == 100
        assert stats.has("id") and stats.has("a")
        assert stats.distinct("a") == 10

    def test_string_attributes_skipped(self, wide_schema):
        relation = make_relation(
            "r", wide_schema, [(i, i, i, "x") for i in range(10)],
            block_size=1024,
        )
        stats = analyze(relation)
        assert not stats.has("pad")
        with pytest.raises(EstimationError):
            stats.histogram("pad")


@pytest.fixture
def hinted():
    catalog = Catalog()
    from repro.catalog.schema import Schema
    from repro.catalog.types import AttributeType

    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    r1 = make_relation("r1", schema, [(i, i % 10) for i in range(1000)])
    r2 = make_relation("r2", schema, [(i, i % 20) for i in range(1000)])
    catalog.register("r1", r1)
    catalog.register("r2", r2)
    stats = {"r1": analyze(r1), "r2": analyze(r2)}
    return SelectivityHinter(stats, catalog), catalog


class TestSelectivityHinter:
    def test_relation_hint_is_one(self, hinted):
        hinter, _ = hinted
        assert hinter.hint(rel("r1")) == 1.0

    def test_select_hint_close_to_truth(self, hinted):
        hinter, _ = hinted
        # a < 5 on a = i%10 → 0.5
        hint = hinter.hint(select(rel("r1"), cmp("a", "<", 5)))
        assert hint == pytest.approx(0.5, abs=0.1)

    def test_conjunction_uses_independence(self, hinted):
        hinter, _ = hinted
        pred = cmp("a", "<", 5) & cmp("id", "<", 500)
        hint = hinter.hint(select(rel("r1"), pred))
        assert hint == pytest.approx(0.25, abs=0.1)

    def test_attr_to_attr_comparison_unhintable(self, hinted):
        hinter, _ = hinted
        assert hinter.hint(select(rel("r1"), cmp("a", "<", attr("id")))) is None

    def test_join_hint_close_to_truth(self, hinted):
        hinter, catalog = hinted
        expr = join(rel("r1"), rel("r2"), on=["a"])
        # True: r1.a uniform over 10, r2.a over 20; matches on 10 shared
        # values → 1000·(1000/20) ... sel = Σ c1c2/(N1N2) = 10·100·50/1e6.
        hint = hinter.hint(expr)
        assert hint is not None
        assert hint == pytest.approx(0.05, rel=0.6)

    def test_intersect_unhintable(self, hinted):
        hinter, _ = hinted
        assert hinter.hint(intersect(rel("r1"), rel("r2"))) is None

    def test_project_hint(self, hinted):
        hinter, _ = hinted
        hint = hinter.hint(project(rel("r1"), ["a"]))
        assert hint == pytest.approx(10 / 1000)

    def test_missing_statistics_detected(self, hinted):
        hinter, _ = hinted
        hinter.statistics.pop("r2")
        with pytest.raises(EstimationError, match="analyze"):
            hinter.require_statistics(join(rel("r1"), rel("r2"), on=["a"]))


class TestDatabaseSelectivitySources:
    @pytest.fixture
    def db(self):
        database = Database(
            profile=MachineProfile.sun3_60(noise_sigma=0.1).scaled(0.1),
            seed=13,
        )
        database.create_relation(
            "r1",
            [("id", "int"), ("a", "int")],
            rows=[(i, i % 10) for i in range(600)],
            block_size=16,
        )
        return database

    def test_prestored_requires_analyze(self, db):
        expr = select(rel("r1"), cmp("a", "<", 3))
        with pytest.raises(EstimationError, match="analyze"):
            db.estimate(expr, quota=1.0, selectivity_source="prestored")

    def test_invalid_source_rejected(self, db):
        with pytest.raises(ReproError):
            db.estimate(rel("r1"), quota=1.0, selectivity_source="psychic")

    def test_hybrid_runs_and_estimates(self, db):
        db.analyze()
        expr = select(rel("r1"), cmp("a", "<", 3))
        result = db.estimate(
            expr, quota=3.0, seed=3, selectivity_source="hybrid"
        )
        assert result.estimate is not None

    def test_prestored_pins_selectivities(self, db):
        db.analyze()
        expr = select(rel("r1"), cmp("a", "<", 3))
        from repro.costmodel.model import CostModel
        from repro.engine.plan import StagedPlan
        from repro.statistics.prestored import SelectivityHinter

        rng = np.random.default_rng(0)
        from repro.timekeeping.charger import CostCharger

        charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
        hinter = SelectivityHinter(db.statistics, db.catalog)
        plan = StagedPlan(
            expr, db.catalog, charger, CostModel(), rng,
            hint_provider=hinter.hint, pin_selectivities=True,
        )
        tracker = plan.trackers()[0]
        assert tracker.pinned
        before = tracker.sel_prev
        plan.advance_stage(0.3)
        assert tracker.sel_prev == before  # pinned: never learns

    def test_pin_without_hints_rejected(self, db):
        from repro.costmodel.model import CostModel
        from repro.engine.plan import StagedPlan
        from repro.timekeeping.charger import CostCharger

        rng = np.random.default_rng(0)
        charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
        with pytest.raises(EstimationError):
            StagedPlan(
                rel("r1"), db.catalog, charger, CostModel(), rng,
                pin_selectivities=True,
            )
