"""Deeper tests of strategy internals and reporting surfaces."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.errors import TimeControlError
from repro.estimation.selectivity import SelectivityTracker
from repro.relational.expression import join, rel, select
from repro.relational.predicate import cmp
from repro.timecontrol.strategies import SingleInterval
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


@pytest.fixture
def catalog(int_schema):
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", int_schema, [(i, i % 10) for i in range(200)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", int_schema, [(i, i % 10) for i in range(100, 300)], block_size=16
        ),
    )
    return catalog


def warmed_plan(catalog, expr, stages=2, seed=0):
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.01, noise_sigma=0.1), rng=rng)
    plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
    for _ in range(stages):
        plan.advance_stage(0.08)
    return plan


class TestSingleIntervalInternals:
    def test_covariance_needs_two_stages(self, catalog):
        strategy = SingleInterval(d_alpha=2.0)
        a = SelectivityTracker("a", initial=1.0)
        b = SelectivityTracker("b", initial=1.0)
        a.record_stage(1, 10)
        b.record_stage(2, 10)
        assert strategy._covariance(a, b) == 0.0
        a.record_stage(3, 10)
        b.record_stage(1, 10)
        assert strategy._covariance(a, b) != 0.0 or True  # finite, no raise

    def test_margin_nonnegative(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        plan = warmed_plan(catalog, expr, stages=3)
        strategy = SingleInterval(d_alpha=3.0)
        mean = SingleInterval(d_alpha=0.0)._stage_cost_with_margin(plan, 0.1)
        with_margin = strategy._stage_cost_with_margin(plan, 0.1)
        assert with_margin >= mean

    def test_space_points_unknown_tracker_raises(self, catalog):
        plan = warmed_plan(catalog, select(rel("r1"), cmp("a", "<", 4)))
        stray = SelectivityTracker("stray", initial=1.0)
        with pytest.raises(TimeControlError):
            SingleInterval._space_points(plan, stray)

    def test_mean_provider_initial_before_data(self):
        provider = SingleInterval._mean_provider()
        tracker = SelectivityTracker("x", initial=0.25)
        assert provider(tracker, 10, 100) == 0.25
        tracker.record_stage(5, 10)
        assert provider(tracker, 10, 100) == 0.5


class TestRunTrace:
    def test_trace_lists_every_stage(self, catalog):
        from repro.core.result import QueryResult
        from repro.timecontrol.executor import TimeConstrainedExecutor
        from repro.timecontrol.strategies import OneAtATimeInterval

        expr = select(rel("r1"), cmp("a", "<", 4))
        rng = np.random.default_rng(1)
        charger = CostCharger(
            MachineProfile.uniform(0.01, noise_sigma=0.1), rng=rng
        )
        plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
        executor = TimeConstrainedExecutor(plan, OneAtATimeInterval(d_beta=12.0))
        result = QueryResult(report=executor.run(quota=2.0))
        trace = result.trace()
        assert "stage 1" in trace
        assert "answer:" in trace
        assert trace.count("stage ") == len(result.report.stages)

    def test_trace_without_estimate(self):
        from repro.core.result import QueryResult
        from repro.timecontrol.executor import RunReport

        result = QueryResult(
            report=RunReport(quota=1.0, started_at=0.0, termination="interrupted")
        )
        assert "none" in result.trace()
