"""Unit tests for the RA expression AST."""

import pytest

from repro.catalog.types import AttributeType
from repro.errors import ExpressionError, SchemaError
from repro.relational.expression import (
    Join,
    Project,
    RelationRef,
    difference,
    intersect,
    join,
    project,
    rel,
    select,
    union,
)
from repro.relational.predicate import cmp


class TestRelationRef:
    def test_schema_resolves_from_catalog(self, small_catalog):
        assert rel("r1").schema(small_catalog).names == ("id", "a")

    def test_unknown_relation_raises(self, small_catalog):
        with pytest.raises(Exception):
            rel("ghost").schema(small_catalog)

    def test_empty_name_rejected(self):
        with pytest.raises(ExpressionError):
            RelationRef("")

    def test_str(self):
        assert str(rel("r1")) == "r1"


class TestSelect:
    def test_schema_passthrough(self, small_catalog):
        e = select(rel("r1"), cmp("a", "<", 5))
        assert e.schema(small_catalog).names == ("id", "a")

    def test_predicate_attribute_validated(self, small_catalog):
        e = select(rel("r1"), cmp("ghost", "<", 5))
        with pytest.raises(SchemaError):
            e.schema(small_catalog)


class TestProject:
    def test_schema_projected(self, small_catalog):
        e = project(rel("r1"), ["a"])
        assert e.schema(small_catalog).names == ("a",)

    def test_empty_attrs_rejected(self):
        with pytest.raises(ExpressionError):
            Project(rel("r1"), ())


class TestJoin:
    def test_schema_concatenated_with_rename(self, small_catalog):
        e = join(rel("r1"), rel("r2"), on=["a"])
        assert e.schema(small_catalog).names == ("id", "a", "id_r", "a_r")

    def test_string_on_expands_to_pair(self):
        e = join(rel("r1"), rel("r2"), on=["a", ("id", "id")])
        assert e.on == (("a", "a"), ("id", "id"))

    def test_empty_on_rejected(self):
        with pytest.raises(ExpressionError):
            Join(rel("r1"), rel("r2"), ())

    def test_type_mismatch_rejected(self, small_catalog):
        from repro.catalog.schema import Schema
        from tests.conftest import make_relation

        small_catalog.register(
            "rf",
            make_relation(
                "rf",
                Schema.of(id=AttributeType.INT, a=AttributeType.FLOAT),
                [(1, 1.0)],
            ),
        )
        e = join(rel("r1"), rel("rf"), on=["a"])
        with pytest.raises(ExpressionError):
            e.schema(small_catalog)


class TestSetOps:
    def test_compatible_schemas_accepted(self, small_catalog):
        for e in (
            union(rel("r1"), rel("r2")),
            difference(rel("r1"), rel("r2")),
            intersect(rel("r1"), rel("r2")),
        ):
            assert e.schema(small_catalog).names == ("id", "a")

    def test_incompatible_schemas_rejected(self, small_catalog):
        e = union(rel("r1"), project(rel("r2"), ["a"]))
        with pytest.raises(SchemaError):
            e.schema(small_catalog)


class TestStructuralQueries:
    def test_base_relations_in_order(self):
        e = join(select(rel("r1"), cmp("a", "<", 5)), rel("r2"), on=["a"])
        assert e.base_relations() == ["r1", "r2"]

    def test_base_relations_with_duplicates(self):
        e = union(rel("r1"), rel("r1"))
        assert e.base_relations() == ["r1", "r1"]

    def test_contains_projection(self):
        assert project(rel("r1"), ["a"]).contains_projection()
        assert not rel("r1").contains_projection()

    def test_contains_union_difference(self):
        assert union(rel("r1"), rel("r2")).contains_set_difference_or_union()
        assert not intersect(rel("r1"), rel("r2")).contains_set_difference_or_union()

    def test_is_sjip(self):
        assert join(rel("r1"), rel("r2"), on=["a"]).is_sjip()
        assert intersect(rel("r1"), rel("r2")).is_sjip()
        assert not union(rel("r1"), rel("r2")).is_sjip()

    def test_operator_count(self):
        e = select(join(rel("r1"), rel("r2"), on=["a"]), cmp("a", "<", 3))
        assert e.operator_count() == 2

    def test_walk_preorder(self):
        e = select(rel("r1"), cmp("a", "<", 3))
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds == ["Select", "RelationRef"]
