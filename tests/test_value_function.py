"""Tests for the value-function soft deadline and the memory profile."""

import pytest

from repro.errors import TimeControlError
from repro.estimation.estimate import Estimate
from repro.timecontrol.stopping import StopState, ValueFunction
from repro.timekeeping.profile import CostKind, MachineProfile


def plateau_then_decay(soft: float, grace: float):
    return lambda t: max(0.0, 1.0 - max(t - soft, 0.0) / grace)


def state(elapsed, estimate, stage=2):
    return StopState(
        stage=stage,
        remaining_seconds=100.0,
        estimate=estimate,
        estimate_history=[estimate] if estimate else [],
        elapsed_seconds=elapsed,
    )


class TestValueFunctionCriterion:
    def test_requires_value_callable(self):
        with pytest.raises(TimeControlError):
            ValueFunction(value=None)
        with pytest.raises(TimeControlError):
            ValueFunction(value=lambda t: 1.0, confidence=2.0)

    def test_keeps_going_on_plateau_with_loose_estimate(self):
        criterion = ValueFunction(value=plateau_then_decay(soft=10.0, grace=5.0))
        criterion.note_stage_duration(1.0)
        loose = Estimate(value=100.0, variance=900.0)  # wide CI
        # Well inside the plateau: another stage costs no value, gains
        # precision → continue.
        assert not criterion.should_stop(state(elapsed=2.0, estimate=loose))

    def test_stops_deep_in_decay(self):
        criterion = ValueFunction(value=plateau_then_decay(soft=1.0, grace=2.0))
        criterion.note_stage_duration(1.5)
        tight = Estimate(value=100.0, variance=1.0)
        # Past the soft point, steep decay, already precise → stop.
        assert criterion.should_stop(state(elapsed=2.5, estimate=tight))

    def test_exact_estimate_stops(self):
        criterion = ValueFunction(value=lambda t: 1.0)
        exact = Estimate(value=5.0, variance=0.0, exact=True)
        assert criterion.should_stop(state(elapsed=1.0, estimate=exact))

    def test_no_estimate_continues(self):
        criterion = ValueFunction(value=lambda t: 1.0)
        assert not criterion.should_stop(state(elapsed=1.0, estimate=None))

    def test_constant_value_never_stops_while_imprecise(self):
        criterion = ValueFunction(value=lambda t: 1.0)
        criterion.note_stage_duration(1.0)
        loose = Estimate(value=100.0, variance=400.0)
        assert not criterion.should_stop(state(elapsed=3.0, estimate=loose))

    def test_end_to_end_stops_before_quota(self):
        """On a live database, a decaying value function ends the run while
        plenty of quota remains."""
        from repro.core.database import Database
        from repro.relational.expression import rel, select
        from repro.relational.predicate import cmp
        from repro.timecontrol.strategies import OneAtATimeInterval

        db = Database(
            profile=MachineProfile.sun3_60(noise_sigma=0.1).scaled(0.1),
            seed=5,
        )
        db.create_relation(
            "r1",
            [("id", "int"), ("a", "int")],
            rows=[(i, i % 10) for i in range(600)],
            block_size=16,
        )
        result = db.estimate(
            select(rel("r1"), cmp("a", "<", 4)),
            quota=60.0,
            strategy=OneAtATimeInterval(d_beta=24.0),
            stopping=ValueFunction(value=plateau_then_decay(soft=0.5, grace=1.0)),
            seed=3,
        )
        assert result.termination in ("stopping_criterion", "exhausted")
        elapsed = sum(s.duration for s in result.report.stages)
        assert elapsed < 10.0  # stopped long before the 60 s quota


class TestMainMemoryProfile:
    def test_disk_reads_unchanged(self):
        disk = MachineProfile.sun3_60()
        memory = MachineProfile.sun3_60_main_memory()
        assert memory.rate(CostKind.BLOCK_READ) == disk.rate(CostKind.BLOCK_READ)

    def test_processing_much_cheaper(self):
        disk = MachineProfile.sun3_60()
        memory = MachineProfile.sun3_60_main_memory()
        assert memory.rate(CostKind.TEMP_WRITE) < disk.rate(CostKind.TEMP_WRITE) / 10
        assert memory.rate(CostKind.SORT_TUPLE) < disk.rate(CostKind.SORT_TUPLE)
        assert memory.rate(CostKind.STAGE_OVERHEAD) == disk.rate(
            CostKind.STAGE_OVERHEAD
        )

    def test_memory_machine_evaluates_more_blocks(self):
        """The paper's prediction: with processing in memory, the same
        quota buys a larger sample."""
        from repro.workloads.paper import make_intersection_setup
        from repro.timecontrol.strategies import OneAtATimeInterval

        blocks = {}
        for label, profile in (
            ("disk", MachineProfile.sun3_60()),
            ("memory", MachineProfile.sun3_60_main_memory()),
        ):
            setup = make_intersection_setup(seed=3, profile=profile)
            total = 0
            for i in range(10):
                result = setup.database.estimate(
                    setup.query,
                    quota=setup.quota,
                    strategy=OneAtATimeInterval(d_beta=12.0),
                    seed=400 + i,
                )
                total += result.blocks
            blocks[label] = total / 10
        assert blocks["memory"] > blocks["disk"]
