"""Server observability: metrics sink, typed events, JSONL replay.

The serving layer speaks the same trace protocol as query execution, so a
server run must round-trip through JSONL: events registered via
``register_event_type`` are rebuilt by ``event_from_dict``, and replaying a
captured stream into a fresh ``ServerMetrics`` reproduces the live counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.observability import (
    JsonlSink,
    RecordingSink,
    event_from_dict,
    read_jsonl_trace,
    register_event_type,
)
from repro.observability.trace import TraceEvent
from repro.relational.expression import rel, select
from repro.relational.predicate import cmp
from repro.server.admission import DegradeInfeasible
from repro.server.events import (
    AdmissionDecided,
    RequestArrived,
    RequestCompleted,
    RequestStarted,
)
from repro.server.metrics import BucketHistogram, ServerMetrics
from repro.server.request import Outcome, QueryRequest
from repro.server.scheduler import QueryServer
from repro.server.workload import demo_database

TUPLES = 1_000


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=13, tuples=TUPLES)


def query():
    return select(rel("r1"), cmp("a", "<", TUPLES // 2))


class TestBucketHistogram:
    def test_buckets_boundaries_and_overflow(self):
        hist = BucketHistogram((0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 1.0, 2.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]
        assert hist.observed == 5
        assert hist.mean == pytest.approx((0.05 + 0.1 + 0.5 + 1.0 + 2.0) / 5)

    def test_non_finite_values_count_but_do_not_poison_the_mean(self):
        hist = BucketHistogram((1.0,))
        hist.observe(float("inf"))
        hist.observe(0.5)
        assert hist.observed == 2
        assert hist.counts == [1, 1]
        assert hist.mean == pytest.approx(0.25)

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError, match="ascend"):
            BucketHistogram((1.0, 0.1))

    def test_as_dict_labels(self):
        hist = BucketHistogram((0.5,))
        hist.observe(0.2)
        payload = hist.as_dict()
        assert payload["buckets"] == {"<=0.5": 1, ">0.5": 0}


class TestServerMetrics:
    def completed(self, outcome: str, **kw) -> RequestCompleted:
        defaults = dict(
            request_id="c/1",
            outcome=outcome,
            reason="r",
            queue_wait=0.5,
            lateness=0.0,
            relative_ci_halfwidth=0.1,
            clock=1.0,
        )
        defaults.update(kw)
        return RequestCompleted(**defaults)

    def test_counters_from_synthetic_stream(self):
        metrics = ServerMetrics()
        metrics.emit(RequestArrived(request_id="c/1"))
        metrics.emit(AdmissionDecided(request_id="c/1", action="admit"))
        metrics.emit(RequestStarted(request_id="c/1"))
        metrics.emit(self.completed("answered"))
        metrics.emit(RequestArrived(request_id="c/2"))
        metrics.emit(AdmissionDecided(request_id="c/2", action="reject"))
        metrics.emit(
            self.completed(
                "rejected", request_id="c/2", relative_ci_halfwidth=None
            )
        )
        assert metrics.arrived == 2
        assert metrics.admitted == 1
        assert metrics.rejected_at_admission == 1
        assert metrics.completed == 2
        assert metrics.count(Outcome.ANSWERED) == 1
        assert metrics.hit_ratio_admitted == pytest.approx(1.0)
        assert metrics.answered_ratio == pytest.approx(0.5)
        assert metrics.mean_queue_wait == pytest.approx(0.5)

    def test_lateness_observed_only_for_runs(self):
        metrics = ServerMetrics()
        metrics.emit(self.completed("answered", lateness=0.2))
        metrics.emit(self.completed("missed", lateness=1.5))
        metrics.emit(self.completed("rejected", lateness=0.0))
        metrics.emit(self.completed("shed"))
        assert metrics.lateness.observed == 2  # answered + missed only
        assert metrics.achieved_ci.observed == 4

    def test_hit_ratio_is_none_before_any_admission(self):
        metrics = ServerMetrics()
        assert metrics.hit_ratio_admitted is None
        assert metrics.answered_ratio is None
        assert "n/a" in metrics.render()

    def test_unknown_event_kinds_are_ignored(self):
        from repro.observability.trace import QueryStart

        metrics = ServerMetrics()
        metrics.emit(QueryStart(quota=1.0))
        assert metrics.arrived == 0 and metrics.completed == 0

    def test_as_dict_is_json_ready(self):
        import json

        metrics = ServerMetrics()
        metrics.emit(self.completed("answered"))
        json.dumps(metrics.as_dict())


class TestEventRegistry:
    def test_server_events_round_trip_dicts(self):
        event = AdmissionDecided(
            request_id="c/9",
            action="degrade",
            reason="because",
            min_stage_cost=0.5,
            projected_wait=1.0,
            budget_at_start=0.2,
            clock=3.0,
        )
        assert event_from_dict(event.to_dict()) == event

    def test_reregistration_is_idempotent(self):
        assert register_event_type(RequestArrived) is RequestArrived

    def test_conflicting_kind_is_rejected(self):
        @dataclass(frozen=True)
        class Impostor(TraceEvent):
            kind: ClassVar[str] = "request_arrived"

        with pytest.raises(ValueError, match="request_arrived"):
            register_event_type(Impostor)

    def test_non_event_class_is_rejected(self):
        with pytest.raises(TypeError):
            register_event_type(dict)


class TestLifecycleStream:
    @pytest.fixture(scope="class")
    def captured(self, db, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "server.jsonl"
        sink = RecordingSink()
        server = QueryServer(db, policy=DegradeInfeasible(), sink=sink)
        requests = [
            QueryRequest(expr=query(), quota=2.0, seed=1),
            QueryRequest(expr=query(), quota=1e-4, arrival=0.1, seed=2),
        ]
        with JsonlSink(str(path)) as jsonl:
            relay = QueryServer(db, policy=DegradeInfeasible(), sink=jsonl)
            relay.process(requests)
        outcomes = server.process(
            [
                QueryRequest(
                    expr=query(), quota=2.0, seed=1, request_id="c/1"
                ),
                QueryRequest(
                    expr=query(),
                    quota=1e-4,
                    arrival=0.1,
                    seed=2,
                    request_id="c/2",
                ),
            ]
        )
        return sink, outcomes, path

    def test_lifecycle_order_per_request(self, captured):
        sink, outcomes, _ = captured
        for outcome in outcomes:
            rid = outcome.request.request_id
            kinds = [
                e.kind
                for e in sink
                if getattr(e, "request_id", None) == rid
            ]
            assert kinds[0] == "request_arrived"
            assert kinds[1] == "admission_decided"
            assert kinds[-1] == "request_completed"
            assert kinds.count("request_completed") == 1
            if outcome.outcome is Outcome.ANSWERED:
                assert "request_started" in kinds
            else:
                assert "request_started" not in kinds

    def test_jsonl_replay_rebuilds_metrics(self, captured):
        _, _, path = captured
        events = read_jsonl_trace(str(path))
        assert {type(e) for e in events} >= {
            RequestArrived,
            AdmissionDecided,
            RequestCompleted,
        }
        replayed = ServerMetrics()
        for event in events:
            replayed.emit(event)
        assert replayed.arrived == 2
        assert replayed.completed == 2
        assert replayed.count(Outcome.ANSWERED) == 1
        assert replayed.count(Outcome.DEGRADED) == 1
