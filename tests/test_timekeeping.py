"""Unit tests for clocks, machine profiles, and the cost charger."""

import math

import numpy as np
import pytest

from repro.errors import CostModelError, QuotaExpired, TimeControlError
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.clock import SimulatedClock, WallClock
from repro.timekeeping.profile import CostKind, MachineProfile


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(TimeControlError):
            SimulatedClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(TimeControlError):
            SimulatedClock(start=-1)


class TestWallClock:
    def test_monotone(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a >= 0.0


class TestMachineProfile:
    def test_sun3_60_has_all_kinds(self):
        profile = MachineProfile.sun3_60()
        for kind in CostKind:
            assert profile.rate(kind) >= 0

    def test_missing_rate_rejected(self):
        with pytest.raises(CostModelError):
            MachineProfile(name="bad", rates={CostKind.BLOCK_READ: 1.0})

    def test_negative_rate_rejected(self):
        rates = {k: 1.0 for k in CostKind}
        rates[CostKind.SORT_UNIT] = -1.0
        with pytest.raises(CostModelError):
            MachineProfile(name="bad", rates=rates)

    def test_scaled_multiplies_all_rates(self):
        base = MachineProfile.uniform(2.0)
        half = base.scaled(0.5)
        for kind in CostKind:
            assert half.rate(kind) == pytest.approx(1.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(CostModelError):
            MachineProfile.uniform(1.0).scaled(0)

    def test_modern_is_much_faster(self):
        assert MachineProfile.modern().rate(CostKind.BLOCK_READ) < 1e-3

    def test_with_noise(self):
        quiet = MachineProfile.sun3_60().with_noise(0.0)
        assert quiet.noise_sigma == 0.0


class TestChargerBasics:
    def test_charge_advances_clock_deterministically(self, unit_charger):
        unit_charger.charge(CostKind.BLOCK_READ, 3)
        assert unit_charger.clock.now() == pytest.approx(3.0)

    def test_zero_amount_is_free(self, unit_charger):
        assert unit_charger.charge(CostKind.BLOCK_READ, 0) == 0.0
        assert unit_charger.clock.now() == 0.0

    def test_negative_amount_rejected(self, unit_charger):
        with pytest.raises(TimeControlError):
            unit_charger.charge(CostKind.BLOCK_READ, -1)

    def test_totals_and_counts_tracked(self, unit_charger):
        unit_charger.charge(CostKind.PAGE_WRITE, 2)
        unit_charger.charge(CostKind.PAGE_WRITE, 3)
        assert unit_charger.counts[CostKind.PAGE_WRITE] == 5
        assert unit_charger.totals[CostKind.PAGE_WRITE] == pytest.approx(5.0)
        assert unit_charger.total_charged() == pytest.approx(5.0)

    def test_reset_accounting_keeps_clock(self, unit_charger):
        unit_charger.charge(CostKind.PAGE_WRITE, 2)
        unit_charger.reset_accounting()
        assert unit_charger.total_charged() == 0.0
        assert unit_charger.clock.now() == pytest.approx(2.0)


class TestChargerNoise:
    def test_noise_is_mean_one(self):
        profile = MachineProfile.uniform(1.0, noise_sigma=0.3)
        rng = np.random.default_rng(0)
        charger = CostCharger(profile, rng=rng)
        n = 4000
        total = sum(charger.charge(CostKind.BLOCK_READ, 1) for _ in range(n))
        assert total / n == pytest.approx(1.0, rel=0.05)

    def test_noise_reproducible_with_seeded_rng(self):
        profile = MachineProfile.uniform(1.0, noise_sigma=0.3)
        a = CostCharger(profile, rng=np.random.default_rng(7))
        b = CostCharger(profile, rng=np.random.default_rng(7))
        seq_a = [a.charge(CostKind.BLOCK_READ, 1) for _ in range(10)]
        seq_b = [b.charge(CostKind.BLOCK_READ, 1) for _ in range(10)]
        assert seq_a == seq_b


class TestDeadline:
    def test_record_mode_notes_crossing(self, unit_charger):
        unit_charger.arm(2.5, hard=False)
        unit_charger.charge(CostKind.BLOCK_READ, 2)
        assert unit_charger.crossed_at is None
        unit_charger.charge(CostKind.BLOCK_READ, 1)
        assert unit_charger.crossed_at == pytest.approx(3.0)

    def test_hard_mode_raises_after_advancing(self, unit_charger):
        unit_charger.arm(2.5, hard=True)
        unit_charger.charge(CostKind.BLOCK_READ, 2)
        with pytest.raises(QuotaExpired) as exc:
            unit_charger.charge(CostKind.BLOCK_READ, 1)
        assert exc.value.deadline == pytest.approx(2.5)
        # Work in flight completes: clock reflects the full charge.
        assert unit_charger.clock.now() == pytest.approx(3.0)

    def test_hard_interrupt_fires_once(self, unit_charger):
        unit_charger.arm(0.5, hard=True)
        with pytest.raises(QuotaExpired):
            unit_charger.charge(CostKind.BLOCK_READ, 1)
        # Further charges proceed without raising (deadline disarmed).
        unit_charger.charge(CostKind.BLOCK_READ, 1)

    def test_arm_in_past_rejected(self, unit_charger):
        unit_charger.charge(CostKind.BLOCK_READ, 5)
        with pytest.raises(TimeControlError):
            unit_charger.arm(1.0, hard=True)

    def test_remaining(self, unit_charger):
        unit_charger.arm(10.0, hard=False)
        unit_charger.charge(CostKind.BLOCK_READ, 4)
        assert unit_charger.remaining() == pytest.approx(6.0)

    def test_remaining_without_deadline_is_inf(self, unit_charger):
        assert math.isinf(unit_charger.remaining())

    def test_disarm(self, unit_charger):
        unit_charger.arm(1.0, hard=True)
        unit_charger.disarm()
        unit_charger.charge(CostKind.BLOCK_READ, 5)  # no raise


class TestMeasure:
    def test_measure_captures_elapsed(self, unit_charger):
        with unit_charger.measure() as meter:
            unit_charger.charge(CostKind.SORT_TUPLE, 4)
        assert meter.elapsed == pytest.approx(4.0)

    def test_measure_captures_on_exception(self, unit_charger):
        meter_ref = None
        try:
            with unit_charger.measure() as meter:
                meter_ref = meter
                unit_charger.charge(CostKind.SORT_TUPLE, 2)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert meter_ref is not None and meter_ref.elapsed == pytest.approx(2.0)

    def test_nested_measures(self, unit_charger):
        with unit_charger.measure() as outer:
            unit_charger.charge(CostKind.SORT_TUPLE, 1)
            with unit_charger.measure() as inner:
                unit_charger.charge(CostKind.SORT_TUPLE, 2)
        assert inner.elapsed == pytest.approx(2.0)
        assert outer.elapsed == pytest.approx(3.0)
