"""The estimate/QueryOptions entrypoint: one method, one frozen bundle.

Covers the redesigned public API: ``db.estimate(expr, agg, quota=...)`` as
the single entrypoint, :class:`QueryOptions` as reusable immutable
configuration, per-call keyword overrides beating the bundle, and the
``count()`` aggregate factory.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import DEFAULT_OPTIONS, QueryOptions
from repro.errors import ReproError
from repro.estimation.aggregates import COUNT, avg_of, count, sum_of
from repro.observability import RecordingSink
from repro.relational.expression import rel
from repro.relational.predicate import cmp
from repro.server.workload import demo_database
from repro.timecontrol.strategies import (
    FixedFractionHeuristic,
    OneAtATimeInterval,
)

EXPR = rel("r1").where(cmp("a", "<", 5_000))


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=21, tuples=400, analyze=True)


def sig(result):
    report = result.report
    return (
        None if result.estimate is None else result.estimate.value,
        report.termination,
        len(report.stages),
        report.total_blocks,
    )


class TestQueryOptionsValue:
    def test_frozen(self):
        options = QueryOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.max_stages = 2

    def test_default_options_shared_instance(self):
        assert DEFAULT_OPTIONS == QueryOptions()

    def test_replace_returns_modified_copy(self):
        base = QueryOptions()
        changed = base.replace(max_stages=5, trace_costs=True)
        assert changed.max_stages == 5
        assert changed.trace_costs is True
        assert base.max_stages == 64  # original untouched

    def test_replace_rejects_unknown_options(self):
        with pytest.raises(ReproError, match="unknown query option"):
            QueryOptions().replace(strategee=None)

    def test_bad_selectivity_source_rejected(self):
        with pytest.raises(ReproError, match="selectivity_source"):
            QueryOptions(selectivity_source="psychic")

    def test_bad_max_stages_rejected(self):
        with pytest.raises(ReproError, match="max_stages"):
            QueryOptions(max_stages=0)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ReproError, match="block_size"):
            QueryOptions(block_size=-4)

    def test_partitions_accepts_bool_and_worker_count(self):
        for value in (None, True, False, 0, 1, 8):
            assert QueryOptions(partitions=value).partitions == value

    def test_negative_partitions_rejected(self):
        with pytest.raises(ReproError, match="partitions"):
            QueryOptions(partitions=-2)

    def test_replace_partitions_round_trips(self):
        base = QueryOptions()
        assert base.partitions is None
        changed = base.replace(partitions=4)
        assert changed.partitions == 4
        assert base.partitions is None  # original untouched
        assert changed.replace(partitions=False).partitions is False


class TestEstimateEntrypoint:
    def test_default_aggregate_is_count(self, db):
        explicit = db.estimate(EXPR, count(), quota=1.0, seed=5)
        implicit = db.estimate(EXPR, quota=1.0, seed=5)
        assert sig(explicit) == sig(implicit)

    def test_count_factory_returns_the_count_spec(self):
        assert count() is COUNT

    def test_equals_open_session_run(self, db):
        one_shot = db.estimate(EXPR, quota=1.0, seed=9)
        session = db.open_session(EXPR, 1.0, seed=9)
        assert sig(session.run()) == sig(one_shot)

    def test_options_bundle_is_reusable(self, db):
        options = QueryOptions(strategy=None, max_stages=3)
        a = db.estimate(EXPR, quota=1.0, seed=3, options=options)
        b = db.estimate(EXPR, quota=1.0, seed=3, options=options)
        assert sig(a) == sig(b)
        assert a.stages <= 3

    def test_keyword_override_beats_the_bundle(self, db):
        def options():
            # Fresh bundle per run: the heuristic strategy is stateful.
            return QueryOptions(
                strategy=FixedFractionHeuristic(gamma=0.3), max_stages=1
            )

        bundled = db.estimate(EXPR, quota=2.0, seed=3, options=options())
        overridden = db.estimate(
            EXPR, quota=2.0, seed=3, options=options(), max_stages=4
        )
        assert bundled.stages == 1
        assert overridden.stages > 1

    def test_options_equal_keywords(self, db):
        via_options = db.estimate(
            EXPR,
            quota=1.0,
            seed=4,
            options=QueryOptions(strategy=FixedFractionHeuristic(gamma=0.4)),
        )
        via_keyword = db.estimate(
            EXPR,
            quota=1.0,
            seed=4,
            strategy=FixedFractionHeuristic(gamma=0.4),
        )
        assert sig(via_options) == sig(via_keyword)

    def test_unknown_keyword_rejected_with_valid_names(self, db):
        with pytest.raises(ReproError, match="valid options"):
            db.estimate(EXPR, quota=1.0, strategee=OneAtATimeInterval())

    def test_aggregate_keyword_compatibility(self, db):
        positional = db.estimate(EXPR, sum_of("b"), quota=1.0, seed=6)
        keyword = db.estimate(EXPR, quota=1.0, seed=6, aggregate=sum_of("b"))
        assert sig(positional) == sig(keyword)

    def test_conflicting_aggregates_rejected(self, db):
        with pytest.raises(ReproError, match="once"):
            db.estimate(
                EXPR, sum_of("b"), quota=1.0, aggregate=avg_of("b")
            )

    def test_block_size_option_changes_the_plan(self, db):
        small = db.open_session(
            EXPR, 1.0, options=QueryOptions(block_size=400)
        )
        default = db.open_session(EXPR, 1.0)
        assert small.plan.block_size == 400
        assert default.plan.block_size == db.block_size

    def test_sink_option_receives_events(self, db):
        sink = RecordingSink()
        db.estimate(EXPR, quota=1.0, seed=8, options=QueryOptions(sink=sink))
        assert sink.of_kind("stage_end")

    def test_selectivity_sources_accepted(self, db):
        for source in ("runtime", "hybrid", "prestored"):
            result = db.estimate(
                EXPR, quota=1.0, seed=2, selectivity_source=source
            )
            assert result.report.termination

    def test_open_session_accepts_options_positionally(self, db):
        session = db.open_session(EXPR, 1.0, QueryOptions(max_stages=2))
        result = session.run()
        assert result.stages <= 2

    def test_partitions_option_round_trips_to_the_session(self, db):
        sharded = db.open_session(
            EXPR, 1.0, options=QueryOptions(partitions=4)
        )
        assert sharded.partitions == (True, 4)
        off = db.open_session(EXPR, 1.0, options=QueryOptions(partitions=False))
        assert off.partitions == (False, 1)
        # Keyword override beats the bundle, like every other option.
        overridden = db.open_session(
            EXPR, 1.0, options=QueryOptions(partitions=4), partitions=False
        )
        assert overridden.partitions == (False, 1)


class TestDeprecatedWrapperParity:
    def test_wrappers_warn_and_delegate(self, db):
        fresh = db.estimate(EXPR, quota=1.0, seed=12)
        with pytest.warns(DeprecationWarning, match="count_estimate"):
            legacy = db.count_estimate(EXPR, quota=1.0, seed=12)
        assert sig(legacy) == sig(fresh)
