"""Tests for the Sample-Size-Determine bisection (Figure 3.4)."""

import pytest

from repro.errors import TimeControlError
from repro.timecontrol.sample_size import determine_fraction


def linear_cost(rate: float):
    return lambda f: rate * f


class TestBoundaries:
    def test_nonpositive_budget_infeasible(self):
        assert determine_fraction(linear_cost(1.0), 0.0, 0.01, 1.0) is None
        assert determine_fraction(linear_cost(1.0), -1.0, 0.01, 1.0) is None

    def test_empty_bounds_infeasible(self):
        assert determine_fraction(linear_cost(1.0), 1.0, 0.0, 1.0) is None
        assert determine_fraction(linear_cost(1.0), 1.0, 0.5, 0.2) is None

    def test_min_fraction_too_expensive(self):
        # Even one block costs 10s against a 1s budget.
        assert determine_fraction(linear_cost(1000.0), 1.0, 0.01, 1.0) is None

    def test_everything_affordable_takes_max(self):
        assert determine_fraction(linear_cost(0.1), 10.0, 0.01, 0.8) == 0.8

    def test_epsilon_must_be_positive(self):
        with pytest.raises(TimeControlError):
            determine_fraction(linear_cost(1.0), 1.0, 0.01, 1.0, epsilon_ratio=0)


class TestBisection:
    def test_converges_to_budget(self):
        cost = linear_cost(10.0)  # budget 5 → f = 0.5
        f = determine_fraction(cost, 5.0, 0.001, 1.0)
        assert f is not None
        assert cost(f) == pytest.approx(5.0, rel=0.05)

    def test_predicted_cost_within_epsilon_band(self):
        cost = lambda f: 20.0 * f + 1.0
        budget = 8.0
        f = determine_fraction(cost, budget, 0.001, 1.0, epsilon_ratio=0.02)
        assert f is not None
        assert abs(cost(f) - budget) <= 0.02 * budget + 1e-9

    def test_step_function_cost(self):
        """Block granularity makes cost a step function; the bisection must
        still return a feasible fraction."""

        def cost(f):
            blocks = max(1, round(f * 20))
            return blocks * 1.0

        f = determine_fraction(cost, 7.5, 0.05, 1.0)
        assert f is not None
        assert cost(f) <= 8.0  # at most one step above the budget band

    def test_nonmonotone_tolerated(self):
        """Even a (mildly) non-monotone cost function yields some fraction."""

        def cost(f):
            return 10 * f + (0.5 if 0.4 < f < 0.5 else 0.0)

        f = determine_fraction(cost, 5.0, 0.001, 1.0)
        assert f is not None

    def test_respects_min_fraction(self):
        cost = linear_cost(1.0)
        f = determine_fraction(cost, 0.9, 0.5, 1.0)
        assert f is not None and f >= 0.5
