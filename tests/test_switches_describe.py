"""The switch registry — ``describe()``, partitions parsing, docs drift.

Every engine switch (optimize / kernels / synopses / bufferpool /
partitions) resolves through one rule: explicit per-session value beats
the ``QueryOptions`` bundle, which beats the environment variable, which
beats the built-in default. :func:`repro.core.switches.describe` reports
each switch's resolved value *and the winning source*, and
:func:`switch_table_markdown` renders the precedence table embedded in
``docs/api.md`` — pinned here so the docs cannot drift from the registry.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.options import QueryOptions
from repro.core.switches import (
    SWITCHES,
    describe,
    env_partitions,
    resolve_partitions,
    switch_table_markdown,
)

ALL_ENV = [s.env for s in SWITCHES]


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for name in ALL_ENV:
        monkeypatch.delenv(name, raising=False)


def state(states, name):
    return next(s for s in states if s.name == name)


class TestDescribe:
    def test_covers_every_switch(self):
        states = describe()
        assert [s.name for s in states] == [s.name for s in SWITCHES]

    def test_defaults_with_clean_env(self):
        states = describe()
        assert all(s.source == "default" for s in states)
        assert state(states, "optimize").value is True
        assert state(states, "kernels").value is True
        assert state(states, "synopses").value is False
        assert state(states, "bufferpool").value is True
        assert state(states, "partitions").value == (True, 1)

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        monkeypatch.setenv("REPRO_PARTITIONS", "8")
        states = describe()
        kernels = state(states, "kernels")
        assert (kernels.value, kernels.source) == (False, "env")
        partitions = state(states, "partitions")
        assert (partitions.value, partitions.source) == ((True, 8), "env")
        assert state(states, "optimize").source == "default"

    def test_options_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        monkeypatch.setenv("REPRO_PARTITIONS", "0")
        states = describe(options=QueryOptions(vectorized=True, partitions=4))
        kernels = state(states, "kernels")
        assert (kernels.value, kernels.source) == (True, "options")
        partitions = state(states, "partitions")
        assert (partitions.value, partitions.source) == ((True, 4), "options")

    def test_explicit_beats_options(self, monkeypatch):
        states = describe(
            options=QueryOptions(vectorized=True, partitions=4),
            explicit={"vectorized": False, "partitions": 2},
        )
        kernels = state(states, "kernels")
        assert (kernels.value, kernels.source) == (False, "explicit")
        partitions = state(states, "partitions")
        assert (partitions.value, partitions.source) == ((True, 2), "explicit")

    def test_enabled_property_reads_both_value_shapes(self):
        states = describe(explicit={"partitions": 0, "synopses": True})
        assert state(states, "partitions").enabled is False
        assert state(states, "synopses").enabled is True
        assert state(states, "bufferpool").enabled is True


class TestPartitionsParsing:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            (None, (True, 1)),
            ("0", (False, 1)),
            ("false", (False, 1)),
            (" OFF ", (False, 1)),
            ("no", (False, 1)),
            ("1", (True, 1)),
            ("6", (True, 6)),
            ("-2", (False, 1)),
            ("yes", (True, 1)),
        ],
    )
    def test_env_partitions(self, monkeypatch, raw, expected):
        if raw is None:
            monkeypatch.delenv("REPRO_PARTITIONS", raising=False)
        else:
            monkeypatch.setenv("REPRO_PARTITIONS", raw)
        assert env_partitions() == expected

    @pytest.mark.parametrize(
        "explicit,expected",
        [
            (True, (True, 1)),
            (False, (False, 1)),
            (0, (False, 1)),
            (1, (True, 1)),
            (5, (True, 5)),
        ],
    )
    def test_resolve_partitions_explicit(self, explicit, expected):
        assert resolve_partitions(explicit) == expected

    def test_resolve_partitions_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARTITIONS", "3")
        assert resolve_partitions(None) == (True, 3)


class TestDocsTable:
    MARKER_BEGIN = "<!-- switches:begin -->"
    MARKER_END = "<!-- switches:end -->"

    def test_api_docs_table_matches_registry(self):
        """docs/api.md embeds exactly what switch_table_markdown renders."""
        api_md = (
            pathlib.Path(__file__).resolve().parent.parent / "docs" / "api.md"
        ).read_text()
        assert self.MARKER_BEGIN in api_md and self.MARKER_END in api_md
        embedded = api_md.split(self.MARKER_BEGIN, 1)[1].split(
            self.MARKER_END, 1
        )[0].strip()
        assert embedded == switch_table_markdown().strip()

    def test_table_has_one_row_per_switch(self):
        table = switch_table_markdown()
        rows = [line for line in table.splitlines() if line.startswith("| ")]
        assert len(rows) == len(SWITCHES) + 1  # header + switches
