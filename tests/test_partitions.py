"""Partitioned relations — shard mechanics, caches, faults, and events.

Covers the storage half of the partitioned-execution feature: the
deterministic block→shard assignment, :class:`HeapShard` views with their
own buffer-pool identity, the shard metadata cache (the ``"shards"``
handle in :mod:`repro.caches`), the ``read_sharded`` parallel read path's
parity with the reference reads, shard-targeted fault injection, and the
``shard_scan_started``/``shard_merged`` trace events. The invariant-10
on/off identity battery lives in ``test_partitions_identity.py``.
"""

from __future__ import annotations

import pytest

from repro import caches
from repro.catalog.types import AttributeType
from repro.catalog.schema import Schema
from repro.core.database import Database
from repro.core.options import QueryOptions
from repro.errors import ReproError, StorageError
from repro.faults.plan import FaultPlan
from repro.observability import RecordingSink
from repro.observability.trace import event_from_dict
from repro.relational.expression import rel
from repro.relational.predicate import cmp
from repro.sampling.sampler import derive_shard_rng, shard_seed
from repro.storage.bufferpool import BufferPool
from repro.storage.events import ShardMerged, ShardScanStarted
from repro.storage.heapfile import HeapFile
from repro.storage.partitioned import (
    PARTITION_STRATEGIES,
    PartitionedHeapFile,
    _compute_assignment,
    invalidate_shard_cache_relation,
    shard_cache_info,
)
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile

import numpy as np


@pytest.fixture(autouse=True)
def fresh_shard_cache():
    caches.get("shards").clear()
    yield
    caches.get("shards").clear()


def int_schema() -> Schema:
    return Schema.of(id=AttributeType.INT, a=AttributeType.INT)


def make_partitioned(
    tuples: int = 500,
    partitions: int = 4,
    strategy: str = "round_robin",
    block_size: int = 64,
) -> PartitionedHeapFile:
    heap = PartitionedHeapFile(
        "orders", int_schema(), block_size,
        partitions=partitions, strategy=strategy,
    )
    heap.load([(i, i % 50) for i in range(tuples)])
    return heap


def unit_charger() -> CostCharger:
    return CostCharger(MachineProfile.uniform(1.0))


class TestAssignment:
    def test_round_robin_is_block_mod_k(self):
        heap = make_partitioned(partitions=3)
        for block_id in range(heap.block_count):
            assert heap.shard_of_block(block_id) == block_id % 3

    def test_hash_strategy_is_deterministic_and_covers_shards(self):
        a = _compute_assignment(64, 4, "hash")
        b = _compute_assignment(64, 4, "hash")
        assert a == b
        assert set(a.shard_of_block) == {0, 1, 2, 3}
        assert a.shard_of_block != _compute_assignment(64, 4, "round_robin").shard_of_block

    def test_local_ids_are_positions_within_shard(self):
        heap = make_partitioned(partitions=3)
        assignment = heap.assignment
        for shard, blocks in enumerate(assignment.shard_blocks):
            for local, global_id in enumerate(blocks):
                assert assignment.local_ids[global_id] == local
                assert assignment.shard_of_block[global_id] == shard

    def test_global_layout_matches_plain_heapfile(self):
        """Partitioning is an overlay: blocks/ids/contents are untouched."""
        rows = [(i, i % 50) for i in range(500)]
        plain = HeapFile("orders", int_schema(), 64)
        plain.load(rows)
        part = make_partitioned(tuples=500, partitions=4)
        assert part.block_count == plain.block_count
        assert part.tuple_count == plain.tuple_count
        for block_id in range(plain.block_count):
            assert part.block_rows_uncharged(block_id) == (
                plain.block_rows_uncharged(block_id)
            )

    def test_bad_partitions_and_strategy_rejected(self):
        with pytest.raises(StorageError, match="at least 1 partition"):
            PartitionedHeapFile("t", int_schema(), partitions=0)
        with pytest.raises(StorageError, match="unknown partition strategy"):
            PartitionedHeapFile("t", int_schema(), strategy="vibes")
        assert PARTITION_STRATEGIES == ("round_robin", "hash")


class TestHeapShard:
    def test_shard_views_partition_the_relation(self):
        heap = make_partitioned(partitions=4)
        assert len(heap.shards) == 4
        assert [s.name for s in heap.shards] == [
            f"orders/shard{i}" for i in range(4)
        ]
        assert sum(s.block_count for s in heap.shards) == heap.block_count
        assert sum(s.tuple_count for s in heap.shards) == heap.tuple_count

    def test_shard_tokens_are_distinct_pool_identities(self):
        heap = make_partitioned(partitions=4)
        tokens = {s.storage_token for s in heap.shards}
        assert len(tokens) == 4
        assert heap.storage_token not in tokens

    def test_to_global_round_trips_and_bounds_checks(self):
        heap = make_partitioned(partitions=3)
        shard = heap.shards[1]
        for local in range(shard.block_count):
            global_id = shard.to_global(local)
            assert heap.assignment.local_ids[global_id] == local
        with pytest.raises(StorageError, match="has no block"):
            shard.to_global(shard.block_count)

    def test_shard_block_rows_match_parent(self):
        heap = make_partitioned(partitions=3)
        shard = heap.shards[2]
        for local in range(shard.block_count):
            assert shard.block_rows_uncharged(local) == (
                heap.block_rows_uncharged(shard.to_global(local))
            )


class TestShardMetadataCache:
    def test_repeated_loads_hit_the_cache(self):
        make_partitioned()
        first = shard_cache_info()
        make_partitioned()  # same name/geometry → pure hit
        second = shard_cache_info()
        assert second.hits > first.hits
        assert second.misses == first.misses

    def test_invalidate_by_relation_name(self):
        make_partitioned()
        other = PartitionedHeapFile("other", int_schema(), 64, partitions=2)
        other.load([(i, i) for i in range(100)])
        dropped = invalidate_shard_cache_relation("orders")
        assert dropped >= 1
        info = shard_cache_info()
        assert info.invalidations == dropped
        # "other" untouched.
        assert any(True for _ in range(1)) and info.currsize >= 1

    def test_caches_handle_reports_and_clears(self):
        make_partitioned()
        assert caches.get("shards").info().currsize >= 1
        caches.get("shards").clear()
        info = caches.get("shards").info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_database_mutations_invalidate(self):
        db = Database(seed=3)
        db.create_relation(
            "r1", [("id", "int"), ("a", "int")],
            rows=[(i, i % 9) for i in range(400)], partitions=4,
        )
        before = shard_cache_info().invalidations
        db.append_rows("r1", [(1000, 1)])
        assert shard_cache_info().invalidations > before


class TestDatabaseCreateRelation:
    def test_partitions_builds_partitioned_heapfile(self):
        db = Database(seed=1)
        heap = db.create_relation(
            "r1", [("id", "int"), ("a", "int")],
            rows=[(i, i) for i in range(100)],
            partitions=3, partition_strategy="hash",
        )
        assert isinstance(heap, PartitionedHeapFile)
        assert heap.partitions == 3 and heap.strategy == "hash"

    def test_default_stays_plain(self):
        db = Database(seed=1)
        heap = db.create_relation(
            "r1", [("id", "int")], rows=[(i,) for i in range(10)]
        )
        assert not isinstance(heap, PartitionedHeapFile)

    def test_zero_partitions_rejected(self):
        db = Database(seed=1)
        with pytest.raises(ReproError, match="partitions must be >= 1"):
            db.create_relation(
                "r1", [("id", "int")], rows=[(0,)], partitions=0
            )


class TestReadSharded:
    DRAW = [5, 0, 11, 3, 8, 2, 7]

    def test_matches_reference_read_blocks(self):
        heap = make_partitioned()
        ref_charger, shard_charger = unit_charger(), unit_charger()
        expected = heap.read_blocks(self.DRAW, ref_charger)
        rows, batch, stats = heap.read_sharded(self.DRAW, shard_charger)
        assert rows == expected
        assert batch is None
        assert shard_charger.total_charged() == ref_charger.total_charged()
        assert sum(s.blocks for s in stats) == len(self.DRAW)
        assert sum(s.tuples for s in stats) == len(rows)

    def test_parallel_workers_match_serial(self):
        heap = make_partitioned()
        serial_rows, _, serial_stats = heap.read_sharded(
            self.DRAW, unit_charger(), workers=1
        )
        parallel_rows, _, parallel_stats = heap.read_sharded(
            self.DRAW, unit_charger(), workers=4
        )
        assert parallel_rows == serial_rows
        assert parallel_stats == serial_stats

    def test_pooled_read_admits_shard_keys(self):
        heap = make_partitioned(partitions=3)
        pool = BufferPool()
        rows, _, _ = heap.read_sharded(
            self.DRAW, unit_charger(), pool=pool, workers=2
        )
        assert rows == heap.read_blocks(self.DRAW, unit_charger())
        assert pool.info().currsize == len(set(self.DRAW))
        # Second read over a warm pool: pure hits, same rows.
        again, _, _ = heap.read_sharded(self.DRAW, unit_charger(), pool=pool)
        assert again == rows
        assert pool.info().hits >= len(self.DRAW)

    def test_decoded_returns_column_batch(self):
        heap = make_partitioned()
        rows, batch, _ = heap.read_sharded(
            self.DRAW, unit_charger(), decoded=True
        )
        assert batch is not None
        assert len(batch) == len(rows)

    def test_out_of_bounds_charges_then_raises_like_reference(self):
        heap = make_partitioned()
        bad = [0, heap.block_count + 5]
        ref_charger, shard_charger = unit_charger(), unit_charger()
        with pytest.raises(StorageError):
            heap.read_blocks(bad, ref_charger)
        with pytest.raises(StorageError):
            heap.read_sharded(bad, shard_charger)
        assert shard_charger.total_charged() == ref_charger.total_charged()

    def test_pool_invalidation_covers_shard_prefix(self):
        heap = make_partitioned(partitions=3)
        pool = BufferPool()
        heap.read_sharded(self.DRAW, unit_charger(), pool=pool)
        heap.read_blocks(self.DRAW, unit_charger(), pool=pool)
        assert pool.info().currsize > len(set(self.DRAW))  # both key spaces
        pool.invalidate_relation("orders")
        assert pool.info().currsize == 0


class TestShardSeeds:
    def test_shard_seed_is_stable_and_non_consuming(self):
        rng = np.random.default_rng(123)
        before = rng.bit_generator.state
        seeds = [shard_seed(rng, i) for i in range(4)]
        assert rng.bit_generator.state == before  # stream untouched
        assert seeds == [shard_seed(np.random.default_rng(123), i) for i in range(4)]
        assert len(set(seeds)) == 4

    def test_derive_shard_rng_streams_differ(self):
        rng = np.random.default_rng(7)
        a = derive_shard_rng(rng, 0).integers(0, 2**31, 8).tolist()
        b = derive_shard_rng(rng, 1).integers(0, 2**31, 8).tolist()
        assert a != b


class TestShardFaults:
    def test_fail_shards_fires_once_per_shard(self):
        from repro.errors import InjectedFault
        from repro.faults.injector import FaultInjector

        heap = make_partitioned(partitions=4)
        sink = RecordingSink()
        injector = FaultInjector.for_session(
            FaultPlan(fail_shards=(0, 1)), np.random.default_rng(2), sink
        )
        draw = list(range(8))  # two blocks of every shard, in order
        # First two reads trip the two targeted shards, once each …
        for _ in range(2):
            with pytest.raises(InjectedFault):
                heap.read_sharded(draw, unit_charger(), injector=injector)
        # … then the stream is clean and the read completes normally.
        rows, _, _ = heap.read_sharded(draw, unit_charger(), injector=injector)
        assert rows == heap.read_blocks(draw, unit_charger())
        injected = sink.of_kind("fault_injected")
        assert len(injected) == 2
        assert sorted(e.block_id % 4 for e in injected) == [0, 1]

    def test_fail_shards_salvaged_end_to_end(self):
        db = Database(seed=5)
        db.create_relation(
            "r1", [("id", "int"), ("a", "int")],
            rows=[(i, i % 9) for i in range(4_000)], partitions=4,
        )
        sink = RecordingSink()
        result = db.estimate(
            rel("r1").where(cmp("a", "<", 5)), quota=8.0, seed=2,
            options=QueryOptions(
                sink=sink,
                partitions=2,
                fault_plan=FaultPlan(fail_shards=(0, 1, 2, 3)),
            ),
        )
        assert sink.of_kind("fault_injected")  # at least one shard tripped
        assert result.report.termination  # … and the run still finished

    def test_fail_shards_fires_on_the_unsharded_path_too(self):
        """Shard-targeted faults key off block→shard, not the read path."""
        def faults(partitions_opt):
            db = Database(seed=5)
            db.create_relation(
                "r1", [("id", "int"), ("a", "int")],
                rows=[(i, i % 9) for i in range(4_000)], partitions=4,
            )
            sink = RecordingSink()
            db.estimate(
                rel("r1").where(cmp("a", "<", 5)), quota=8.0, seed=2,
                options=QueryOptions(
                    sink=sink,
                    partitions=partitions_opt,
                    fault_plan=FaultPlan(fail_shards=(1,)),
                ),
            )
            return [e.to_dict() for e in sink.of_kind("fault_injected")]

        assert faults(False) == faults(2)

    def test_negative_fail_shards_rejected(self):
        with pytest.raises(ReproError, match="fail_shards"):
            FaultPlan(fail_shards=(-1,))


class TestAdmissionPricing:
    @staticmethod
    def probe(partitions):
        db = Database(seed=7)
        db.create_relation(
            "r1", [("id", "int"), ("a", "int")],
            rows=[(i, i % 9) for i in range(8_000)],
            partitions=partitions,
        )
        return db.open_session(
            rel("r1").where(cmp("a", "<", 5)), quota=5.0, seed=0
        )

    def test_parallelism_discounts_partitioned_scans(self):
        from repro.server.admission import minimum_stage_cost

        session = self.probe(partitions=4)
        serial = minimum_stage_cost(session)
        assert minimum_stage_cost(session, shard_parallelism=1.0) == serial
        overlapped = minimum_stage_cost(session, shard_parallelism=4.0)
        assert 0 < overlapped < serial
        # The overlap caps at the shard count.
        capped = minimum_stage_cost(session, shard_parallelism=64.0)
        assert capped == minimum_stage_cost(session, shard_parallelism=4.0)

    def test_unpartitioned_relations_are_never_discounted(self):
        from repro.server.admission import minimum_stage_cost

        session = self.probe(partitions=None)
        serial = minimum_stage_cost(session)
        assert minimum_stage_cost(session, shard_parallelism=8.0) == serial

    def test_server_threads_the_knob(self):
        from repro.server.scheduler import QueryServer

        db = Database(seed=7)
        db.create_relation(
            "r1", [("id", "int"), ("a", "int")],
            rows=[(i, i % 9) for i in range(8_000)], partitions=4,
        )
        plain = QueryServer(db)
        overlapped = QueryServer(db, shard_parallelism=4.0)
        request_cost_plain = plain._minimum_cost(_request())
        request_cost_overlap = overlapped._minimum_cost(_request())
        assert request_cost_overlap < request_cost_plain
        with pytest.raises(ValueError, match="shard_parallelism"):
            QueryServer(db, shard_parallelism=0.5)


def _request():
    from repro.server.request import QueryRequest

    return QueryRequest(
        expr=rel("r1").where(cmp("a", "<", 5)), quota=5.0, arrival=0.0
    )


class TestShardTraceEvents:
    @staticmethod
    def run_traced(partitions_opt):
        db = Database(seed=9)
        db.create_relation(
            "r1", [("id", "int"), ("a", "int")],
            rows=[(i, i % 9) for i in range(4_000)], partitions=4,
        )
        sink = RecordingSink()
        db.estimate(
            rel("r1").where(cmp("a", "<", 5)), quota=6.0, seed=3,
            options=QueryOptions(sink=sink, partitions=partitions_opt),
        )
        return sink

    def test_sharded_run_emits_shard_events(self):
        sink = self.run_traced(2)
        starts = sink.of_kind("shard_scan_started")
        merges = sink.of_kind("shard_merged")
        assert starts and merges
        assert {e.relation for e in starts} == {"r1"}
        for merge in merges:
            stage_starts = [e for e in starts if e.stage == merge.stage]
            assert merge.shards == len(stage_starts)
            assert merge.blocks == sum(e.blocks for e in stage_starts)
            assert merge.tuples == sum(e.tuples for e in stage_starts)

    def test_unsharded_run_emits_none(self):
        sink = self.run_traced(False)
        assert not sink.of_kind("shard_scan_started")
        assert not sink.of_kind("shard_merged")

    def test_events_round_trip_jsonl(self):
        start = ShardScanStarted(
            relation="r1", shard=2, stage=1, blocks=3, tuples=96, seed=42
        )
        merge = ShardMerged(relation="r1", stage=1, shards=4, blocks=9, tuples=288)
        for event in (start, merge):
            assert event_from_dict(event.to_dict()) == event
