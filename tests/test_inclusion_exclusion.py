"""Tests for the inclusion–exclusion COUNT expansion.

The central invariant: for any expression ``E``,
``COUNT(E) == Σ coef·COUNT(term)`` with every term SJIP-only. Verified both
on hand-picked cases and on randomly generated expression trees (hypothesis).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.errors import ExpressionError
from repro.relational.evaluator import count_exact
from repro.relational.expression import (
    Intersect,
    difference,
    intersect,
    project,
    rel,
    select,
    union,
)
from repro.relational.inclusion_exclusion import expand_count
from repro.relational.predicate import cmp
from tests.conftest import make_relation


@pytest.fixture
def catalog(int_schema):
    catalog = Catalog()
    catalog.register(
        "r1", make_relation("r1", int_schema, [(i, i % 7) for i in range(60)])
    )
    catalog.register(
        "r2", make_relation("r2", int_schema, [(i, i % 7) for i in range(30, 90)])
    )
    catalog.register(
        "r3", make_relation("r3", int_schema, [(i, i % 7) for i in range(45, 105)])
    )
    return catalog


def check_identity(expr, catalog):
    terms = expand_count(expr)
    for term in terms:
        assert term.expression.is_sjip(), f"non-SJIP term {term.expression}"
        assert term.coefficient != 0
    total = sum(t.coefficient * count_exact(t.expression, catalog) for t in terms)
    assert total == count_exact(expr, catalog)
    return terms


class TestBasicExpansions:
    def test_sjip_passthrough(self, catalog):
        e = select(rel("r1"), cmp("a", "<", 3))
        terms = expand_count(e)
        assert len(terms) == 1
        assert terms[0].coefficient == 1
        assert terms[0].expression == e

    def test_union_three_terms(self, catalog):
        terms = check_identity(union(rel("r1"), rel("r2")), catalog)
        assert sorted(t.coefficient for t in terms) == [-1, 1, 1]

    def test_difference_two_terms(self, catalog):
        terms = check_identity(difference(rel("r1"), rel("r2")), catalog)
        assert sorted(t.coefficient for t in terms) == [-1, 1]

    def test_intersect_stays_single_term(self, catalog):
        terms = check_identity(intersect(rel("r1"), rel("r2")), catalog)
        assert len(terms) == 1

    def test_self_union_collapses(self, catalog):
        terms = check_identity(union(rel("r1"), rel("r1")), catalog)
        assert len(terms) == 1
        assert terms[0].coefficient == 1
        assert terms[0].expression == rel("r1")

    def test_self_difference_cancels(self, catalog):
        terms = expand_count(difference(rel("r1"), rel("r1")))
        assert terms == []  # COUNT(A − A) = 0: all terms cancel

    def test_intersect_idempotence_shortcut(self, catalog):
        terms = expand_count(union(rel("r1"), rel("r1")))
        for term in terms:
            assert not isinstance(term.expression, Intersect)


class TestNestedExpansions:
    def test_union_of_three(self, catalog):
        e = union(union(rel("r1"), rel("r2")), rel("r3"))
        terms = check_identity(e, catalog)
        # Classic inclusion–exclusion over 3 sets: 7 terms.
        assert len(terms) == 7

    def test_difference_of_union(self, catalog):
        check_identity(
            difference(union(rel("r1"), rel("r2")), rel("r3")), catalog
        )

    def test_union_of_differences(self, catalog):
        check_identity(
            union(difference(rel("r1"), rel("r2")), difference(rel("r2"), rel("r3"))),
            catalog,
        )

    def test_select_over_union(self, catalog):
        check_identity(
            select(union(rel("r1"), rel("r2")), cmp("a", "<", 4)), catalog
        )

    def test_select_over_difference(self, catalog):
        check_identity(
            select(difference(rel("r1"), rel("r2")), cmp("a", ">", 2)), catalog
        )

    def test_intersect_of_unions(self, catalog):
        check_identity(
            intersect(union(rel("r1"), rel("r2")), union(rel("r2"), rel("r3"))),
            catalog,
        )

    def test_symmetric_difference(self, catalog):
        e = difference(
            union(rel("r1"), rel("r2")), intersect(rel("r1"), rel("r2"))
        )
        check_identity(e, catalog)


class TestProjection:
    def test_project_over_union_distributes(self, catalog):
        e = project(union(rel("r1"), rel("r2")), ["a"])
        terms = check_identity(e, catalog)
        assert all(t.expression.contains_projection() for t in terms)

    def test_project_over_difference_rejected(self, catalog):
        e = project(difference(rel("r1"), rel("r2")), ["a"])
        with pytest.raises(ExpressionError, match="[Pp]rojection"):
            expand_count(e)

    def test_plain_project_single_term(self, catalog):
        terms = expand_count(project(rel("r1"), ["a"]))
        assert len(terms) == 1


# ----------------------------------------------------------------------
# Property-based: random union/difference/intersect trees over 3 relations
# ----------------------------------------------------------------------
def _expr_strategy():
    leaves = st.sampled_from(["r1", "r2", "r3"]).map(rel)

    def extend(children):
        binary = st.tuples(children, children)
        return st.one_of(
            binary.map(lambda p: union(*p)),
            binary.map(lambda p: difference(*p)),
            binary.map(lambda p: intersect(*p)),
            children.map(lambda c: select(c, cmp("a", "<", 4))),
        )

    return st.recursive(leaves, extend, max_leaves=5)


@settings(max_examples=60, deadline=None)
@given(expr=_expr_strategy())
def test_property_expansion_matches_exact_count(expr):
    catalog = Catalog()
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    catalog.register(
        "r1", make_relation("r1", schema, [(i, i % 7) for i in range(40)])
    )
    catalog.register(
        "r2", make_relation("r2", schema, [(i, i % 7) for i in range(20, 60)])
    )
    catalog.register(
        "r3", make_relation("r3", schema, [(i, i % 7) for i in range(30, 70)])
    )
    terms = expand_count(expr)
    total = sum(t.coefficient * count_exact(t.expression, catalog) for t in terms)
    assert total == count_exact(expr, catalog)
    for term in terms:
        assert term.expression.is_sjip()
