"""Unit tests for blocks, heap files, and the spool."""

import pytest

from repro.errors import StorageError
from repro.storage.block import DiskBlock
from repro.storage.heapfile import HeapFile
from repro.storage.spool import Spool
from repro.timekeeping.profile import CostKind


class TestDiskBlock:
    def test_append_until_full(self):
        block = DiskBlock(block_id=0, capacity=2)
        block.append((1,))
        block.append((2,))
        assert block.is_full
        with pytest.raises(StorageError):
            block.append((3,))

    def test_len_and_iter(self):
        block = DiskBlock(block_id=0, capacity=3, rows=[(1,), (2,)])
        assert len(block) == 2
        assert list(block) == [(1,), (2,)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            DiskBlock(block_id=0, capacity=0)

    def test_overfull_construction_rejected(self):
        with pytest.raises(StorageError):
            DiskBlock(block_id=0, capacity=1, rows=[(1,), (2,)])


class TestHeapFileLoad:
    def test_packs_blocks_densely(self, int_schema):
        heap = HeapFile("r", int_schema, block_size=16)  # bf = 2
        heap.load([(i, i) for i in range(5)])
        assert heap.blocking_factor == 2
        assert heap.block_count == 3
        assert heap.tuple_count == 5
        assert len(heap) == 5

    def test_paper_geometry(self, wide_schema):
        heap = HeapFile("r", wide_schema, block_size=1024)
        heap.load([(i, i, i, "x") for i in range(10_000)])
        assert heap.blocking_factor == 5
        assert heap.block_count == 2_000

    def test_incremental_loads_accumulate(self, int_schema):
        heap = HeapFile("r", int_schema, block_size=16)
        heap.load([(0, 0)])
        heap.load([(1, 1)])
        assert heap.tuple_count == 2

    def test_block_smaller_than_tuple_rejected(self, wide_schema):
        with pytest.raises(StorageError):
            HeapFile("r", wide_schema, block_size=100)

    def test_load_validates_rows(self, int_schema):
        heap = HeapFile("r", int_schema, block_size=16)
        with pytest.raises(Exception):
            heap.load([("bad", 1)])


class TestHeapFileReads:
    @pytest.fixture
    def heap(self, int_schema):
        heap = HeapFile("r", int_schema, block_size=16)
        heap.load([(i, i * 10) for i in range(6)])
        return heap

    def test_read_block_charges_one_read(self, heap, unit_charger):
        rows = heap.read_block(0, unit_charger)
        assert rows == [(0, 0), (1, 10)]
        assert unit_charger.counts[CostKind.BLOCK_READ] == 1

    def test_read_blocks_concatenates(self, heap, unit_charger):
        rows = heap.read_blocks([2, 0], unit_charger)
        assert rows == [(4, 40), (5, 50), (0, 0), (1, 10)]
        assert unit_charger.counts[CostKind.BLOCK_READ] == 2

    def test_read_bad_block_raises(self, heap, unit_charger):
        with pytest.raises(StorageError):
            heap.read_block(99, unit_charger)

    def test_scan_charges_every_block(self, heap, unit_charger):
        rows = list(heap.scan(unit_charger))
        assert len(rows) == 6
        assert unit_charger.counts[CostKind.BLOCK_READ] == heap.block_count

    def test_all_rows_is_free(self, heap, free_charger):
        assert len(heap.all_rows()) == 6

    def test_block_rows_uncharged(self, heap):
        assert heap.block_rows_uncharged(1) == [(2, 20), (3, 30)]
        with pytest.raises(StorageError):
            heap.block_rows_uncharged(10)


class TestSpool:
    def test_write_charges_temp_write(self, int_schema, unit_charger):
        spool = Spool(block_size=16)
        f = spool.create(int_schema)
        f.write([(1, 1), (2, 2), (3, 3)], unit_charger)
        assert unit_charger.counts[CostKind.TEMP_WRITE] == 3
        assert len(f) == 3

    def test_page_count_ceiling(self, int_schema, unit_charger):
        spool = Spool(block_size=16)  # bf = 2
        f = spool.create(int_schema)
        f.write([(i, i) for i in range(5)], unit_charger)
        assert f.page_count(16) == 3

    def test_sortedness_invalidated_by_write(self, int_schema, unit_charger):
        spool = Spool(block_size=16)
        f = spool.create(int_schema)
        f.write([(2, 2)], unit_charger)
        f.mark_sorted((0,))
        assert f.sort_key == (0,)
        f.write([(1, 1)], unit_charger)
        assert f.sort_key is None

    def test_peak_usage_tracked(self, int_schema, unit_charger):
        spool = Spool(block_size=16)
        a = spool.create(int_schema)
        b = spool.create(int_schema)
        a.write([(1, 1)] , unit_charger)
        b.write([(2, 2), (3, 3)], unit_charger)
        assert spool.peak_tuples == 3
        spool.release(a)
        assert spool.live_tuples == 2
        assert spool.peak_tuples == 3
        assert len(spool) == 2

    def test_bad_block_size_rejected(self):
        with pytest.raises(StorageError):
            Spool(block_size=0)
