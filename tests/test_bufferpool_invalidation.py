"""Mutations evict the buffer pool alongside every other derived cache.

Satellite contract: each of the three committed-mutation routes —
``Database.append_rows``, ``Database.drop_relation``, and a realtime
:class:`~repro.realtime.WriteTask` commit — must invalidate the mutated
relation everywhere derived state lives: the process-wide buffer pool
(default *and* any custom pool, via the broadcast), the plan cache, and
the synopsis catalog. One parametrized test covers all routes so a new
mutation path cannot forget one of the caches without failing here.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro import caches
from repro.realtime import QueryTask, TransactionScheduler, WriteTask
from repro.relational import cmp, rel
from repro.storage.bufferpool import BufferPool, default_pool


@pytest.fixture(autouse=True)
def fresh_caches():
    caches.get("plans").clear()
    caches.get("bufferpool").clear()
    yield
    caches.get("plans").clear()
    caches.get("bufferpool").clear()


def make_db() -> Database:
    db = Database(seed=7)
    db.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 100) for i in range(1_000)],
    )
    return db


def query():
    return rel("r1").where(cmp("a", "<", 5))


def mutate_append(db: Database) -> None:
    db.append_rows("r1", [(10**6 + i, 1) for i in range(5)])


def mutate_drop(db: Database) -> None:
    db.drop_relation("r1")


def mutate_write_task(db: Database) -> None:
    # A transaction must carry at least one query; run it with the pool
    # off so the *observation* below sees the commit's eviction, not the
    # follow-up query's re-admissions.
    import os

    previous = os.environ.get("REPRO_BUFFERPOOL")
    os.environ["REPRO_BUFFERPOOL"] = "0"
    try:
        result = TransactionScheduler(db).run(
            [
                WriteTask("w", "r1", [(10**6 + i, 1) for i in range(3)]),
                QueryTask("q", rel("r1").where(cmp("a", "<", 50))),
            ],
            deadline=5.0,
            seed=9,
        )
    finally:
        if previous is None:
            os.environ.pop("REPRO_BUFFERPOOL", None)
        else:
            os.environ["REPRO_BUFFERPOOL"] = previous
    assert result.met_deadline


MUTATIONS = [mutate_append, mutate_drop, mutate_write_task]
IDS = ["append_rows", "drop_relation", "write_task"]

# Plans cached *after* the commit's invalidation: the write-task route
# runs its own follow-up query, which re-caches exactly one fresh plan
# (were invalidation skipped, both pre-mutation plans would survive too).
PLANS_AFTER = {mutate_append: 0, mutate_drop: 0, mutate_write_task: 1}


@pytest.mark.parametrize("mutate", MUTATIONS, ids=IDS)
def test_mutation_evicts_bufferpool_plan_cache_and_synopses(mutate):
    db = make_db()
    custom = BufferPool(capacity=64)
    # Populate every derived cache: default pool + synopses on the first
    # run, a custom session pool on the second.
    db.estimate(
        query(), quota=5.0, seed=3,
        options=QueryOptions(synopses=True, bufferpool=True),
    )
    db.estimate(query(), quota=5.0, seed=4, options=QueryOptions(bufferpool=custom))
    assert caches.get("bufferpool").info().currsize > 0
    assert custom.info().currsize > 0
    assert caches.get("plans").info().currsize >= 1
    assert db.synopses.info().answers == 1

    mutate(db)

    # Buffer pool: every r1 entry gone, in the default and the custom pool.
    assert caches.get("bufferpool").info().currsize == 0
    assert custom.info().currsize == 0
    assert caches.get("bufferpool").info().invalidations > 0
    assert custom.info().invalidations > 0
    # Plan cache and synopsis catalog: invalidated in the same breath.
    assert caches.get("plans").info().currsize == PLANS_AFTER[mutate]
    info = db.synopses.info()
    assert info.answers == 0 and info.invalidations == 1


@pytest.mark.parametrize("mutate", MUTATIONS, ids=IDS)
def test_unrelated_relation_survives_mutation(mutate):
    db = make_db()
    db.create_relation(
        "r2",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 10) for i in range(1_000)],
    )
    db.estimate(
        rel("r2").where(cmp("a", "<", 5)), quota=5.0, seed=3,
        options=QueryOptions(bufferpool=True),
    )
    resident_before = caches.get("bufferpool").info().currsize
    assert resident_before > 0
    mutate(db)
    # r2's blocks are untouched; only r1 state was dropped.
    assert caches.get("bufferpool").info().currsize == resident_before


def test_post_mutation_reads_see_new_contents():
    db = make_db()
    exact_before = db.relation("r1").tuple_count
    db.estimate(query(), quota=5.0, seed=3, options=QueryOptions(bufferpool=True))
    db.append_rows("r1", [(10**6 + i, 1) for i in range(50)])
    assert db.relation("r1").tuple_count == exact_before + 50
    # A fresh read through the pool returns the grown relation's rows,
    # not stale cached blocks.
    relation = db.relation("r1")
    pool = default_pool()
    last = relation.block_count - 1
    from repro.timekeeping.charger import CostCharger
    from repro.timekeeping.profile import MachineProfile

    charger = CostCharger(MachineProfile.uniform(0.0))
    rows = relation.read_blocks([last], charger, pool=pool)
    assert rows == relation.block_rows_uncharged(last)
