"""Unit tests for the relation catalog."""

import pytest

from repro.catalog.catalog import Catalog
from repro.errors import CatalogError
from tests.conftest import make_relation


@pytest.fixture
def catalog(int_schema):
    c = Catalog()
    c.register("r1", make_relation("r1", int_schema, [(1, 1)]))
    return c


class TestRegister:
    def test_register_and_get(self, catalog):
        assert catalog.get("r1").name == "r1"

    def test_duplicate_name_rejected(self, catalog, int_schema):
        with pytest.raises(CatalogError):
            catalog.register("r1", make_relation("r1", int_schema, []))

    def test_empty_name_rejected(self, int_schema):
        with pytest.raises(CatalogError):
            Catalog().register("", make_relation("x", int_schema, []))


class TestLookup:
    def test_unknown_get_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get("ghost")

    def test_contains(self, catalog):
        assert "r1" in catalog
        assert "ghost" not in catalog

    def test_len_and_iter(self, catalog, int_schema):
        catalog.register("r2", make_relation("r2", int_schema, []))
        assert len(catalog) == 2
        assert list(catalog) == ["r1", "r2"]
        assert catalog.names() == ["r1", "r2"]


class TestDrop:
    def test_drop_removes(self, catalog):
        catalog.drop("r1")
        assert "r1" not in catalog

    def test_drop_unknown_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop("ghost")

    def test_name_reusable_after_drop(self, catalog, int_schema):
        catalog.drop("r1")
        catalog.register("r1", make_relation("r1", int_schema, [(2, 2)]))
        assert catalog.get("r1").tuple_count == 1
