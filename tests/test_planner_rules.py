"""Unit tests of the optimizer's rewrite rules and fixpoint driver."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.errors import ExpressionError
from repro.planner import (
    JoinChainReorder,
    PredicatePushdown,
    ProjectionPruning,
    RewriteContext,
    SelectionFusion,
    SetOpNormalize,
    default_rules,
    optimize_expression,
    reorder_is_safe,
)
from repro.relational.evaluator import rows_exact
from repro.relational.expression import (
    Join,
    Project,
    Select,
    difference,
    intersect,
    join,
    project,
    rel,
    select,
    union,
)
from repro.relational.predicate import And, TruePredicate, cmp
from tests.conftest import make_relation


def build_catalog() -> Catalog:
    """r1/r2/r3 share (id, a) so every set operation is compatible."""
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation("r1", schema, [(i, i % 7) for i in range(60)], 16),
    )
    catalog.register(
        "r2",
        make_relation("r2", schema, [(i, i % 5) for i in range(20, 70)], 16),
    )
    catalog.register(
        "r3",
        make_relation("r3", schema, [(i, i % 3) for i in range(40, 90)], 16),
    )
    return catalog


def build_chain_catalog() -> Catalog:
    """x/y/z with globally distinct attribute names (reorder-safe joins)."""
    catalog = Catalog()
    catalog.register(
        "x",
        make_relation(
            "x",
            Schema.of(xa=AttributeType.INT, xb=AttributeType.INT),
            [(i % 10, i % 4) for i in range(30)],
            16,
        ),
    )
    catalog.register(
        "y",
        make_relation(
            "y",
            Schema.of(ya=AttributeType.INT, yb=AttributeType.INT),
            [(i % 10, i) for i in range(80)],
            16,
        ),
    )
    catalog.register(
        "z",
        make_relation(
            "z",
            Schema.of(za=AttributeType.INT, zb=AttributeType.INT),
            [(i % 4, i) for i in range(12)],
            16,
        ),
    )
    return catalog


def rows_equal(catalog, before, after) -> None:
    """Exact-evaluator equality (tuples verbatim, order-insensitive)."""
    assert sorted(rows_exact(before, catalog)) == sorted(
        rows_exact(after, catalog)
    )
    assert before.schema(catalog) == after.schema(catalog)


# ----------------------------------------------------------------------
# SelectionFusion
# ----------------------------------------------------------------------
def test_fusion_merges_selection_stack():
    catalog = build_catalog()
    expr = select(select(rel("r1"), cmp("a", "<", 5)), cmp("id", ">", 10))
    out = SelectionFusion().apply(expr, RewriteContext(catalog))
    assert isinstance(out, Select) and not isinstance(out.child, Select)
    assert isinstance(out.predicate, And) and len(out.predicate.parts) == 2
    rows_equal(catalog, expr, out)


def test_fusion_flattens_nested_conjunctions():
    catalog = build_catalog()
    inner = select(rel("r1"), And((cmp("a", "<", 5), cmp("a", ">", 1))))
    expr = select(inner, cmp("id", ">", 10))
    out = SelectionFusion().apply(expr, RewriteContext(catalog))
    assert len(out.predicate.parts) == 3
    rows_equal(catalog, expr, out)


# ----------------------------------------------------------------------
# PredicatePushdown
# ----------------------------------------------------------------------
def test_pushdown_splits_join_conjuncts_by_side():
    catalog = build_catalog()
    # r1 ⋈ r2 on id renames the right side to (id_r, a_r).
    joined = join(rel("r1"), rel("r2"), on=["id"])
    expr = select(joined, And((cmp("a", "<", 5), cmp("a_r", ">", 1))))
    out = PredicatePushdown().apply(expr, RewriteContext(catalog))
    assert isinstance(out, Join)
    assert isinstance(out.left, Select) and isinstance(out.right, Select)
    # The right-side conjunct is renamed back to the child's own name.
    assert out.right.predicate.attributes() == {"a"}
    rows_equal(catalog, expr, out)


def test_pushdown_keeps_straddling_and_attribute_free_conjuncts():
    catalog = build_catalog()
    joined = join(rel("r1"), rel("r2"), on=["id"])
    straddling = cmp("a", "==", "a_r")  # not pushable: constant compare only
    expr = select(
        joined, And((cmp("a", "<", 5), TruePredicate(), straddling))
    )
    out = PredicatePushdown().apply(expr, RewriteContext(catalog))
    assert isinstance(out, Select)  # kept conjuncts stay above the join
    assert isinstance(out.child, Join)
    assert isinstance(out.child.left, Select)
    assert out.child.right == rel("r2")


def test_pushdown_no_match_without_single_side_conjunct():
    catalog = build_catalog()
    expr = select(join(rel("r1"), rel("r2"), on=["id"]), TruePredicate())
    assert PredicatePushdown().apply(expr, RewriteContext(catalog)) is None


@pytest.mark.parametrize("setop", [union, intersect, difference])
def test_pushdown_distributes_over_set_operations(setop):
    catalog = build_catalog()
    expr = select(setop(rel("r1"), rel("r2")), cmp("a", "<", 3))
    out = PredicatePushdown().apply(expr, RewriteContext(catalog))
    assert isinstance(out, type(setop(rel("r1"), rel("r2"))))
    assert isinstance(out.left, Select) and isinstance(out.right, Select)
    rows_equal(catalog, expr, out)


def test_pushdown_moves_below_projection():
    catalog = build_catalog()
    expr = select(project(rel("r1"), ["a"]), cmp("a", "<", 4))
    out = PredicatePushdown().apply(expr, RewriteContext(catalog))
    assert isinstance(out, Project) and isinstance(out.child, Select)
    rows_equal(catalog, expr, out)


# ----------------------------------------------------------------------
# ProjectionPruning / SetOpNormalize
# ----------------------------------------------------------------------
def test_projection_pruning_collapses_nested_projects():
    catalog = build_catalog()
    expr = project(project(rel("r1"), ["id", "a"]), ["a"])
    out = ProjectionPruning().apply(expr, RewriteContext(catalog))
    assert isinstance(out, Project) and out.child == rel("r1")
    rows_equal(catalog, expr, out)


def test_setop_normalize_orders_operands_and_dedupes():
    catalog = build_catalog()
    ctx = RewriteContext(catalog)
    rule = SetOpNormalize()
    swapped = rule.apply(intersect(rel("r2"), rel("r1")), ctx)
    assert swapped == intersect(rel("r1"), rel("r2"))
    # Already ordered / non-commutative: no match.
    assert rule.apply(intersect(rel("r1"), rel("r2")), ctx) is None
    assert rule.apply(difference(rel("r2"), rel("r1")), ctx) is None
    # Idempotence.
    assert rule.apply(union(rel("r1"), rel("r1")), ctx) == rel("r1")


# ----------------------------------------------------------------------
# JoinChainReorder
# ----------------------------------------------------------------------
def chain_expr():
    return join(
        join(rel("x"), rel("y"), on=[("xa", "ya")]),
        rel("z"),
        on=[("xb", "za")],
    )


def test_reorder_moves_smaller_join_innermost():
    catalog = build_chain_catalog()
    out = JoinChainReorder().apply(chain_expr(), RewriteContext(catalog))
    assert out is not None
    # x ⋈ z (30·12 points) replaced x ⋈ y (30·80) as the inner join.
    assert out.left.right == rel("z") and out.right == rel("y")
    # Same relation as a set of named tuples (column order permuted).
    def keyed(expr):
        names = expr.schema(catalog).names
        return sorted(
            sorted(zip(names, row)) for row in rows_exact(expr, catalog)
        )

    assert keyed(chain_expr()) == keyed(out)


def test_reorder_is_stable_after_one_swap():
    catalog = build_chain_catalog()
    ctx = RewriteContext(catalog)
    rule = JoinChainReorder()
    out = rule.apply(chain_expr(), ctx)
    assert rule.apply(out, ctx) is None  # no oscillation


def test_reorder_requires_outer_condition_on_leftmost_input():
    catalog = build_chain_catalog()
    expr = join(
        join(rel("x"), rel("y"), on=[("xa", "ya")]),
        rel("z"),
        on=[("yb", "zb")],  # references y, not x — cannot rotate past it
    )
    assert JoinChainReorder().apply(expr, RewriteContext(catalog)) is None


def test_reorder_gate_rejects_set_ops_and_name_clashes():
    chain_catalog = build_chain_catalog()
    assert reorder_is_safe(chain_expr(), chain_catalog)
    catalog = build_catalog()
    assert not reorder_is_safe(intersect(rel("r1"), rel("r2")), catalog)
    assert not reorder_is_safe(join(rel("r1"), rel("r2"), on=["id"]), catalog)


def test_driver_drops_reorder_on_unsafe_trees():
    catalog = build_catalog()
    expr = select(intersect(rel("r2"), rel("r1")), cmp("a", "<", 3))
    optimized, applications = optimize_expression(expr, catalog)
    assert all(a.rule != "reorder-join-inputs" for a in applications)
    rows_equal(catalog, expr, optimized)


# ----------------------------------------------------------------------
# Fixpoint driver
# ----------------------------------------------------------------------
def test_driver_reaches_fixpoint_and_logs_applications():
    catalog = build_catalog()
    expr = select(
        select(join(rel("r1"), rel("r2"), on=["id"]), cmp("a", "<", 5)),
        cmp("a_r", ">", 0),
    )
    optimized, applications = optimize_expression(expr, catalog)
    # Bottom-up: the inner selection pushes first, then the outer one.
    assert [a.rule for a in applications] == ["push-predicates"] * 2
    # Fully pushed: the root is the join, selections sit on the inputs.
    assert isinstance(optimized, Join)
    assert isinstance(optimized.left, Select)
    assert isinstance(optimized.right, Select)
    rows_equal(catalog, expr, optimized)
    # Idempotent: optimizing the optimized tree changes nothing.
    again, more = optimize_expression(optimized, catalog)
    assert again == optimized and more == ()


def test_driver_fuses_selection_stacks():
    catalog = build_catalog()
    expr = select(select(rel("r1"), cmp("a", "<", 5)), cmp("id", ">", 10))
    optimized, applications = optimize_expression(expr, catalog)
    assert [a.rule for a in applications] == ["fuse-selections"]
    assert isinstance(optimized, Select)
    assert not isinstance(optimized.child, Select)
    rows_equal(catalog, expr, optimized)


def test_driver_no_rules_fire_returns_same_tree():
    catalog = build_catalog()
    expr = select(rel("r1"), cmp("a", "<", 5))
    optimized, applications = optimize_expression(expr, catalog)
    assert optimized is expr and applications == ()


def test_driver_nonconvergence_raises():
    catalog = build_catalog()

    class PingPong:
        name = "ping-pong"

        def apply(self, node, ctx):
            if isinstance(node, Select):
                flipped = (
                    cmp("a", "<", 5)
                    if node.predicate == cmp("a", ">", 5)
                    else cmp("a", ">", 5)
                )
                return Select(node.child, flipped)
            return None

    with pytest.raises(ExpressionError, match="did not converge"):
        optimize_expression(
            select(rel("r1"), cmp("a", "<", 5)), catalog, rules=[PingPong()]
        )


def test_default_rules_are_fresh_instances():
    assert [r.name for r in default_rules()] == [
        "fuse-selections",
        "push-predicates",
        "prune-projections",
        "normalize-set-ops",
        "reorder-join-inputs",
    ]
