"""Tests for transaction-level deadline budgeting."""

import numpy as np
import pytest

from repro.core.database import Database
from repro.errors import TimeControlError
from repro.estimation.aggregates import sum_of
from repro.realtime.transaction import (
    FeedbackAllocator,
    ProportionalAllocator,
    QueryTask,
    TransactionScheduler,
)
from repro.relational.expression import rel, select
from repro.relational.predicate import cmp
from repro.timecontrol.stopping import ErrorConstrained
from repro.timekeeping.profile import MachineProfile


@pytest.fixture
def db():
    database = Database(
        profile=MachineProfile.sun3_60(noise_sigma=0.1).scaled(0.1), seed=21
    )
    rng = np.random.default_rng(1)
    database.create_relation(
        "r1",
        [("id", "int"), ("a", "int"), ("v", "int")],
        rows=[(i, i % 10, int(rng.integers(0, 50))) for i in range(800)],
        block_size=24,
    )
    return database


def three_tasks():
    return [
        QueryTask("low", select(rel("r1"), cmp("a", "<", 3))),
        QueryTask("high", select(rel("r1"), cmp("a", ">", 6)), weight=2.0),
        QueryTask("sum_v", rel("r1"), aggregate=sum_of("v")),
    ]


class TestQueryTask:
    def test_requires_name_and_positive_weight(self):
        with pytest.raises(TimeControlError):
            QueryTask("", rel("r1"))
        with pytest.raises(TimeControlError):
            QueryTask("x", rel("r1"), weight=0.0)


class TestAllocators:
    def test_proportional_shares_initial_budget(self):
        allocator = ProportionalAllocator()
        tasks = three_tasks()  # weights 1, 2, 1 → shares 1/4, 1/2, 1/4
        assert allocator.allocate(tasks, 0, 8.0) == pytest.approx(2.0)
        # Later allocations ignore leftover: still out of the initial 8.
        assert allocator.allocate(tasks, 1, 7.5) == pytest.approx(4.0)
        assert allocator.allocate(tasks, 2, 1.0) == pytest.approx(2.0)

    def test_feedback_splits_remaining(self):
        allocator = FeedbackAllocator()
        tasks = three_tasks()
        assert allocator.allocate(tasks, 0, 8.0) == pytest.approx(2.0)
        # Query 0 finished early: the leftover flows to the rest.
        assert allocator.allocate(tasks, 1, 7.0) == pytest.approx(7.0 * 2 / 3)
        assert allocator.allocate(tasks, 2, 3.0) == pytest.approx(3.0)


class TestScheduler:
    def test_runs_all_queries_within_deadline(self, db):
        scheduler = TransactionScheduler(db)
        outcome = scheduler.run(three_tasks(), deadline=9.0, seed=5)
        assert outcome.completed_queries == 3
        assert outcome.elapsed <= 9.0 + 1.0  # bounded even with overspend
        assert set(outcome.results) == {"low", "high", "sum_v"}
        assert all(q > 0 for q in outcome.quotas.values())

    def test_deadline_met_flag(self, db):
        scheduler = TransactionScheduler(db)
        outcome = scheduler.run(three_tasks(), deadline=12.0, seed=5)
        if outcome.completed_queries == 3 and outcome.elapsed <= 12.0:
            assert outcome.met_deadline
        assert "transaction" in outcome.summary()

    def test_impossible_deadline_aborts(self, db):
        scheduler = TransactionScheduler(db, min_query_quota=0.5)
        outcome = scheduler.run(three_tasks(), deadline=0.6, seed=5)
        assert not outcome.met_deadline
        assert outcome.completed_queries < 3

    def test_feedback_reuses_early_stopper_leftover(self, db):
        """With an error-constrained stop on query 1, the feedback
        allocator gives later queries more than their static share."""
        tasks = [
            QueryTask("quick", select(rel("r1"), cmp("a", "<", 5))),
            QueryTask("rest", select(rel("r1"), cmp("a", ">", 4))),
        ]
        scheduler = TransactionScheduler(
            db,
            allocator=FeedbackAllocator(),
            stopping=ErrorConstrained(target_relative_halfwidth=0.5),
        )
        outcome = scheduler.run(tasks, deadline=10.0, seed=3)
        assert outcome.completed_queries == 2
        consumed_first = sum(
            s.duration for s in outcome.results["quick"].report.stages
        )
        # The second query's quota ≈ deadline − consumed, i.e. it inherited
        # the first query's unused budget.
        assert outcome.quotas["rest"] == pytest.approx(
            10.0 - consumed_first, rel=0.01
        )

    def test_validation(self, db):
        scheduler = TransactionScheduler(db)
        with pytest.raises(TimeControlError):
            scheduler.run([], deadline=1.0)
        with pytest.raises(TimeControlError):
            scheduler.run(three_tasks(), deadline=0.0)
        duplicated = [QueryTask("x", rel("r1")), QueryTask("x", rel("r1"))]
        with pytest.raises(TimeControlError):
            scheduler.run(duplicated, deadline=1.0)

    def test_deadline_miss_rate_improves_with_feedback(self, db):
        """The headline of the [AbMo 88] use case: adaptive budgeting
        misses fewer deadlines than static budgeting."""
        def miss_rate(allocator_factory):
            misses = 0
            for seed in range(12):
                scheduler = TransactionScheduler(
                    db,
                    allocator=allocator_factory(),
                    stopping=ErrorConstrained(target_relative_halfwidth=0.4),
                )
                outcome = scheduler.run(three_tasks(), deadline=6.0, seed=seed)
                misses += not outcome.met_deadline
            return misses

        assert miss_rate(FeedbackAllocator) <= miss_rate(ProportionalAllocator)
