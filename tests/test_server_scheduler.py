"""The deadline-aware scheduler (repro.server.scheduler).

The server's contract is total: every request ends in exactly one typed
outcome, nothing ever raises to the submitting client, and nothing is
silently dropped. On top of that, the run queue is earliest-deadline-first
within priority tiers, queue wait is charged against the budget on the
shared simulated clock, and overload sheds the latest-deadline work.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.observability import RecordingSink
from repro.relational.expression import rel, select
from repro.relational.predicate import cmp
from repro.server.admission import AdmitAll, DegradeInfeasible, RejectInfeasible
from repro.server.request import Outcome, QueryRequest
from repro.server.scheduler import QueryServer
from repro.server.workload import (
    ClosedLoopClient,
    demo_database,
    open_loop_requests,
    run_closed_loop,
    selection_mix,
)

TUPLES = 1_000


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=5, tuples=TUPLES)


def query(threshold: int = TUPLES // 2):
    return select(rel("r1"), cmp("a", "<", threshold))


def request(quota=2.0, arrival=0.0, priority=0, seed=1, expr=None, **kw):
    return QueryRequest(
        expr=expr if expr is not None else query(),
        quota=quota,
        arrival=arrival,
        priority=priority,
        seed=seed,
        **kw,
    )


class TestTotalContract:
    def test_every_request_gets_exactly_one_typed_outcome(self, db):
        server = QueryServer(db, policy=DegradeInfeasible())
        requests = [
            request(quota=2.0, arrival=0.0, seed=1),
            request(quota=1e-4, arrival=0.1, seed=2),  # infeasible
            request(
                expr=rel("no_such_relation"), arrival=0.2, seed=3, quota=1.0
            ),  # unplannable
            request(quota=2.0, arrival=0.3, seed=4),
        ]
        outcomes = server.process(requests)
        assert len(outcomes) == len(requests)
        assert {o.request.request_id for o in outcomes} == {
            r.request_id for r in requests
        }
        for outcome in outcomes:
            assert isinstance(outcome.outcome, Outcome)
            assert outcome.reason

    def test_unplannable_query_is_rejected_with_reason(self, db):
        server = QueryServer(db)
        outcome = server.serve(
            request(expr=rel("no_such_relation"), quota=1.0, seed=1)
        )
        assert outcome.outcome is Outcome.REJECTED
        assert "planned" in outcome.reason

    def test_requires_a_simulated_clock(self):
        wall = Database(clock="wall")
        with pytest.raises(ValueError, match="simulated"):
            QueryServer(wall)


class TestScheduling:
    def test_edf_order_within_a_priority_tier(self, db):
        server = QueryServer(db, policy=AdmitAll())
        late = request(quota=9.0, arrival=0.0, seed=1, client_id="late")
        soon = request(quota=3.0, arrival=0.0, seed=2, client_id="soon")
        outcomes = server.process([late, soon])
        # Decision order == dispatch order: earliest deadline first.
        assert [o.request.client_id for o in outcomes] == ["soon", "late"]

    def test_priority_tiers_beat_deadlines(self, db):
        server = QueryServer(db, policy=AdmitAll())
        urgent = request(
            quota=9.0, arrival=0.0, priority=0, seed=1, client_id="urgent"
        )
        soon = request(
            quota=2.0, arrival=0.0, priority=1, seed=2, client_id="soon"
        )
        outcomes = server.process([urgent, soon])
        assert [o.request.client_id for o in outcomes] == ["urgent", "soon"]

    def test_queue_wait_is_charged_against_the_budget(self, db):
        sink = RecordingSink()
        server = QueryServer(db, policy=AdmitAll(), sink=sink)
        first = request(quota=2.0, arrival=0.0, seed=1)
        second = request(quota=6.0, arrival=0.0, seed=2)
        outcomes = server.process([first, second])
        waited = next(
            o for o in outcomes if o.request.request_id == second.request_id
        )
        assert waited.queue_wait > 0
        started = {
            e.request_id: e for e in sink.of_kind("request_started")
        }[second.request_id]
        # The budget handed to the session is quota minus time spent queued.
        assert started.budget == pytest.approx(6.0 - waited.queue_wait)
        assert started.budget < 6.0

    def test_idle_server_sleeps_to_next_arrival(self, db):
        server = QueryServer(db)
        outcome = server.serve(request(quota=2.0, arrival=0.0, seed=3))
        assert outcome.outcome is Outcome.ANSWERED
        resumed = server.serve(request(quota=2.0, arrival=50.0, seed=4))
        assert resumed.outcome is Outcome.ANSWERED
        assert server.clock.now() >= 50.0

    def test_serve_rebases_past_arrivals_to_now(self, db):
        server = QueryServer(db)
        server.serve(request(quota=2.0, seed=1))
        t = server.clock.now()
        outcome = server.serve(request(quota=2.0, arrival=0.0, seed=2))
        assert outcome.request.arrival == pytest.approx(t)
        assert outcome.outcome is Outcome.ANSWERED


class TestOverload:
    def test_enforcing_policy_sheds_displaced_work(self, db):
        """A high-priority burst displaces queued low-priority work.

        rB is feasible when admitted, but the priority-0 burst that arrives
        while rA runs is dispatched first; rB's projected budget at its turn
        goes negative and the scheduler sheds it instead of burning time.
        """
        server = QueryServer(db, policy=RejectInfeasible())
        ra = request(quota=2.0, arrival=0.0, priority=0, seed=1, client_id="a")
        rb = request(quota=5.8, arrival=0.0, priority=1, seed=2, client_id="b")
        h1 = request(quota=3.0, arrival=0.5, priority=0, seed=3, client_id="h")
        h2 = request(quota=5.0, arrival=0.6, priority=0, seed=4, client_id="h")
        outcomes = {
            o.request.request_id: o
            for o in server.process([ra, rb, h1, h2])
        }
        assert outcomes[ra.request_id].outcome is Outcome.ANSWERED
        shed = outcomes[rb.request_id]
        assert shed.outcome is Outcome.SHED
        assert "overload" in shed.reason or "budget exhausted" in shed.reason
        assert shed.admitted
        assert shed.queue_wait > 0

    def test_admit_all_burns_time_and_misses(self, db):
        server = QueryServer(db, policy=AdmitAll())
        requests = open_loop_requests(
            count=12,
            quota=2.0,
            overload=4.0,
            make_query=selection_mix(TUPLES),
            tuples=TUPLES,
            seed=9,
        )
        outcomes = server.process(requests)
        states = {o.outcome for o in outcomes}
        assert Outcome.MISSED in states  # doomed work ran and produced nothing
        assert Outcome.SHED not in states  # AdmitAll never sheds
        assert server.metrics.hit_ratio_admitted < 1.0

    def test_admission_on_protects_admitted_requests(self, db):
        server = QueryServer(db, policy=RejectInfeasible())
        requests = open_loop_requests(
            count=12,
            quota=2.0,
            overload=4.0,
            make_query=selection_mix(TUPLES),
            tuples=TUPLES,
            seed=9,
        )
        outcomes = server.process(requests)
        answered = sum(1 for o in outcomes if o.outcome is Outcome.ANSWERED)
        assert answered > 0
        assert server.metrics.hit_ratio_admitted >= 0.9


class TestClosedLoop:
    def test_clients_keep_one_request_in_flight(self, db):
        import numpy as np

        server = QueryServer(db, policy=DegradeInfeasible())
        clients = [
            ClosedLoopClient(
                client_id=f"user{i}",
                quota=1.0,
                think_time=0.2,
                make_query=selection_mix(TUPLES),
                requests_left=3,
                rng=np.random.default_rng(100 + i),
            )
            for i in range(2)
        ]
        outcomes = run_closed_loop(server, clients)
        assert len(outcomes) == 6  # 2 clients x 3 requests, all accounted for
        per_client = {}
        for outcome in outcomes:
            per_client.setdefault(outcome.request.client_id, []).append(outcome)
        for arrivals in per_client.values():
            times = [o.request.arrival for o in arrivals]
            assert times == sorted(times)  # think → submit → wait, in order

    def test_on_complete_feeds_followups(self, db):
        server = QueryServer(db)
        fired = []

        def chain(outcome):
            if len(fired) >= 2:
                return None
            fired.append(outcome.request.request_id)
            return request(
                quota=1.0, arrival=server.clock.now(), seed=50 + len(fired)
            )

        outcomes = server.process([request(quota=1.0, seed=49)], on_complete=chain)
        assert len(outcomes) == 3  # the seed request plus two follow-ups


class TestSharedState:
    def test_outcomes_accumulate_across_calls(self, db):
        server = QueryServer(db)
        server.serve(request(quota=1.0, seed=1))
        server.serve(request(quota=1.0, seed=2))
        assert len(server.outcomes) == 2
        assert server.metrics.completed == 2

    def test_shared_cost_model_calibrates_across_requests(self, db):
        server = QueryServer(db, share_cost_model=True)
        assert server._cost_model is not None
        before = server._cost_model.observation_counts()
        server.serve(request(quota=2.0, seed=1))
        after = server._cost_model.observation_counts()
        assert sum(after.values()) > sum(before.values())

    def test_trace_queries_interleaves_session_events(self, db):
        sink = RecordingSink()
        server = QueryServer(db, sink=sink, trace_queries=True)
        server.serve(request(quota=2.0, seed=1))
        kinds = set(sink.kinds())
        assert "request_started" in kinds
        assert "stage_end" in kinds  # per-query events share the stream
