"""Tests for run-time selectivity estimation (Figures 3.3/3.5)."""

import pytest

from repro.errors import EstimationError
from repro.estimation.selectivity import SelectivityTracker


@pytest.fixture
def tracker():
    return SelectivityTracker("join#1", initial=1.0)


class TestReviseSelectivities:
    def test_initial_before_any_stage(self, tracker):
        assert tracker.sel_prev == 1.0
        assert tracker.stages_observed == 0

    def test_pooled_over_stages(self, tracker):
        tracker.record_stage(tuples=10, points=100)
        tracker.record_stage(tuples=30, points=100)
        # Figure 3.3: sel^{i-1} = Σ tuples_j / Σ points_j = 40/200.
        assert tracker.sel_prev == pytest.approx(0.2)
        assert tracker.total_tuples == 40
        assert tracker.total_points == 200

    def test_intersect_style_initial(self):
        t = SelectivityTracker("int#1", initial=1 / 10_000)
        assert t.sel_prev == pytest.approx(1e-4)

    def test_invalid_initial_rejected(self):
        with pytest.raises(EstimationError):
            SelectivityTracker("x", initial=0.0)
        with pytest.raises(EstimationError):
            SelectivityTracker("x", initial=1.5)

    def test_negative_observation_rejected(self, tracker):
        with pytest.raises(EstimationError):
            tracker.record_stage(-1, 10)


class TestZeroSelectivityFix:
    def test_zero_observations_yield_positive_bound(self, tracker):
        tracker.record_stage(tuples=0, points=900)
        assert tracker.sel_prev == 0.0
        assert tracker.effective_sel_prev() > 0.0

    def test_bound_shrinks_with_more_data(self, tracker):
        tracker.record_stage(0, 100)
        early = tracker.zero_selectivity_bound()
        tracker.record_stage(0, 10_000)
        late = tracker.zero_selectivity_bound()
        assert late < early

    def test_bound_formula(self):
        t = SelectivityTracker("x", initial=1.0, zero_fix_beta=0.05)
        t.record_stage(0, 100)
        assert t.zero_selectivity_bound() == pytest.approx(
            1 - 0.05 ** (1 / 100)
        )

    def test_positive_observations_bypass_fix(self, tracker):
        tracker.record_stage(5, 100)
        assert tracker.effective_sel_prev() == pytest.approx(0.05)


class TestComputeSelPlus:
    def test_stage_one_returns_initial(self, tracker):
        assert tracker.sel_plus(48.0, candidate_points=100, space_points=10_000) == 1.0

    def test_d_beta_zero_is_sel_prev(self, tracker):
        tracker.record_stage(10, 100)
        sel = tracker.sel_plus(0.0, candidate_points=200, space_points=10_000)
        assert sel == pytest.approx(0.1)

    def test_margin_grows_with_d_beta(self, tracker):
        tracker.record_stage(10, 100)
        s12 = tracker.sel_plus(12.0, 200, 10_000)
        s48 = tracker.sel_plus(48.0, 200, 10_000)
        assert 0.1 < s12 < s48

    def test_margin_shrinks_with_candidate_size(self, tracker):
        tracker.record_stage(10, 100)
        small_stage = tracker.sel_plus(12.0, 50, 10_000)
        large_stage = tracker.sel_plus(12.0, 5_000, 10_000)
        assert large_stage < small_stage

    def test_clamped_to_one(self, tracker):
        tracker.record_stage(90, 100)
        assert tracker.sel_plus(1000.0, 10, 10_000) == 1.0

    def test_never_zero_even_after_zero_stage(self, tracker):
        tracker.record_stage(0, 900)
        sel = tracker.sel_plus(0.0, 100, 10_000)
        assert sel > 0.0

    def test_negative_d_beta_rejected(self, tracker):
        tracker.record_stage(1, 10)
        with pytest.raises(EstimationError):
            tracker.sel_plus(-1.0, 10, 100)

    def test_variance_zero_when_space_exhausted(self, tracker):
        tracker.record_stage(10, 100)
        assert tracker.variance(candidate_points=50, space_points=100) == 0.0

    def test_variance_requires_candidate_points(self, tracker):
        tracker.record_stage(10, 100)
        with pytest.raises(EstimationError):
            tracker.variance(0, 10_000)


class TestSeries:
    def test_per_stage_selectivities(self, tracker):
        tracker.record_stage(10, 100)
        tracker.record_stage(0, 50)
        tracker.record_stage(5, 0)  # zero-point stage is skipped
        assert tracker.per_stage_selectivities() == [0.1, 0.0]
