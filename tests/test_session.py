"""Tests of QuerySession / ExecutionContext (repro.core.session).

A session owns one run's mutable machinery; the Database facade's
``estimate`` entrypoint is a one-line wrapper over
``open_session(...).run()``, and the legacy ``count_estimate`` /
``sum_estimate`` / ``avg_estimate`` conveniences delegate to it with a
``DeprecationWarning``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.database import Database
from repro.core.session import ExecutionContext, QuerySession
from repro.costmodel.model import CostModel
from repro.errors import ReproError
from repro.estimation import avg_of, sum_of
from repro.observability import NULL_SINK, RecordingSink
from repro.relational import cmp, rel, select
from repro.timecontrol.strategies import OneAtATimeInterval, SingleInterval
from repro.timekeeping.profile import MachineProfile


@pytest.fixture
def db() -> Database:
    database = Database(
        profile=MachineProfile.uniform(0.01, noise_sigma=0.15), seed=42
    )
    database.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 10) for i in range(200)],
        block_size=16,
    )
    return database


EXPR = select(rel("r1"), cmp("a", "<", 3))


class TestSessionLifecycle:
    def test_open_session_builds_but_does_not_run(self, db):
        session = db.open_session(EXPR, quota=5.0, seed=1)
        assert not session.finished
        assert session.result is None
        assert session.report is None
        assert session.plan.stages_completed == 0

    def test_run_returns_result_and_finishes(self, db):
        session = db.open_session(EXPR, quota=5.0, seed=1)
        result = session.run()
        assert session.finished
        assert session.result is result
        assert session.report is result.report
        assert result.estimate is not None

    def test_session_is_single_use(self, db):
        session = db.open_session(EXPR, quota=5.0, seed=1)
        session.run()
        with pytest.raises(ReproError, match="already ran"):
            session.run()

    def test_machinery_stays_inspectable_after_run(self, db):
        session = db.open_session(EXPR, quota=5.0, seed=1)
        session.run()
        assert session.plan.stages_completed >= 1
        trackers = session.plan.trackers()
        assert trackers and trackers[0].observations

    def test_convenience_views_expose_context(self, db):
        sink = RecordingSink()
        session = db.open_session(EXPR, quota=5.0, seed=1, sink=sink)
        assert session.sink is sink
        assert session.charger is session.context.charger
        assert session.rng is session.context.rng
        assert session.plan.charger is session.context.charger

    def test_default_sink_is_null(self, db):
        session = db.open_session(EXPR, quota=5.0, seed=1)
        assert session.sink is NULL_SINK

    def test_default_strategy_is_one_at_a_time(self, db):
        session = db.open_session(EXPR, quota=5.0, seed=1)
        assert isinstance(session.strategy, OneAtATimeInterval)
        override = db.open_session(
            EXPR, quota=5.0, seed=1, strategy=SingleInterval(d_alpha=2.0)
        )
        assert isinstance(override.strategy, SingleInterval)


class TestSessionIndependence:
    def test_two_sessions_share_no_mutable_state(self, db):
        a = db.open_session(EXPR, quota=5.0, seed=7)
        b = db.open_session(EXPR, quota=5.0, seed=7)
        assert a.charger is not b.charger
        assert a.rng is not b.rng
        assert a.plan is not b.plan
        assert a.context.cost_model is not b.context.cost_model

    def test_same_seed_sessions_replay_identically(self, db):
        first = db.open_session(EXPR, quota=5.0, seed=7).run()
        second = db.open_session(EXPR, quota=5.0, seed=7).run()
        assert first.estimate == second.estimate
        assert first.report.termination == second.report.termination
        assert len(first.report.stages) == len(second.report.stages)

    def test_unseeded_sessions_draw_independent_streams(self, db):
        a = db.open_session(EXPR, quota=5.0)
        b = db.open_session(EXPR, quota=5.0)
        assert a.rng.random() != b.rng.random()


class TestFacadeRoutesThroughSessions:
    def test_estimate_equals_session_run(self, db):
        via_facade = db.estimate(EXPR, quota=5.0, seed=3)
        via_session = db.open_session(EXPR, quota=5.0, seed=3).run()
        assert via_facade.estimate == via_session.estimate
        assert via_facade.report.termination == via_session.report.termination

    def test_estimate_sets_sum_aggregate(self, db):
        result = db.estimate(EXPR, sum_of("a"), quota=5.0, seed=3)
        assert result.report.aggregate == "sum"
        assert result.estimate is not None

    def test_estimate_sets_avg_aggregate(self, db):
        result = db.estimate(EXPR, avg_of("a"), quota=5.0, seed=3)
        assert result.report.aggregate == "avg"
        assert result.estimate is not None
        exact = db.aggregate(EXPR, avg_of("a"))
        assert result.estimate.value == pytest.approx(exact, rel=0.5)


class TestDeprecatedWrappers:
    def test_count_estimate_warns_and_delegates(self, db):
        with pytest.warns(DeprecationWarning, match="count_estimate"):
            via_wrapper = db.count_estimate(EXPR, quota=5.0, seed=3)
        via_entrypoint = db.estimate(EXPR, quota=5.0, seed=3)
        assert via_wrapper.estimate == via_entrypoint.estimate

    def test_sum_estimate_warns_and_delegates(self, db):
        with pytest.warns(DeprecationWarning, match="sum_estimate"):
            via_wrapper = db.sum_estimate(EXPR, "a", quota=5.0, seed=3)
        via_entrypoint = db.estimate(EXPR, sum_of("a"), quota=5.0, seed=3)
        assert via_wrapper.estimate == via_entrypoint.estimate
        assert via_wrapper.report.aggregate == "sum"

    def test_avg_estimate_warns_and_delegates(self, db):
        with pytest.warns(DeprecationWarning, match="avg_estimate"):
            via_wrapper = db.avg_estimate(EXPR, "a", quota=5.0, seed=3)
        via_entrypoint = db.estimate(EXPR, avg_of("a"), quota=5.0, seed=3)
        assert via_wrapper.estimate == via_entrypoint.estimate
        assert via_wrapper.report.aggregate == "avg"

    def test_invalid_selectivity_source_rejected(self, db):
        with pytest.raises(ReproError, match="selectivity_source"):
            db.open_session(EXPR, quota=5.0, selectivity_source="psychic")


class TestExecutionContext:
    def test_context_defaults_to_null_sink(self):
        rng = np.random.default_rng(0)
        db = Database(profile=MachineProfile.uniform(0.0), seed=0)
        context = ExecutionContext(
            rng=rng,
            charger=db._make_charger(rng),
            cost_model=CostModel(),
        )
        assert context.sink is NULL_SINK

    def test_session_usable_standalone(self, db):
        """QuerySession works without the facade, given a context."""
        rng = np.random.default_rng(5)
        context = ExecutionContext(
            rng=rng,
            charger=db._make_charger(rng),
            cost_model=CostModel(),
        )
        session = QuerySession(EXPR, db.catalog, 5.0, context)
        result = session.run()
        assert result.report.stages
