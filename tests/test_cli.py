"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_table(self, capsys):
        assert main(["--only", "5.1", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5.1" in out
        assert "d_beta" in out

    def test_multiple_tables(self, capsys):
        assert main(["--only", "5.2", "5.3", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5.2" in out and "Figure 5.3" in out

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "9.9"])

    def test_default_runs_everything(self, capsys):
        assert main(["--runs", "1"]) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 5.1", "Figure 5.2", "Figure 5.3"):
            assert marker in out
