"""Tests for Goodman's estimator and the distinct-count baselines."""

import itertools
import math
from collections import Counter

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimation.goodman import (
    chao1,
    good_turing_coverage,
    goodman_estimate,
    goodman_raw,
    jackknife1,
)


def enumerate_expectation(population: list[int], m: int) -> float:
    """E[goodman_raw] over all without-replacement samples of size m."""
    n = len(population)
    values = []
    for sample in itertools.combinations(range(n), m):
        occupancy = list(Counter(population[i] for i in sample).values())
        values.append(goodman_raw(n, m, occupancy))
    return sum(values) / len(values)


class TestGoodmanRaw:
    def test_exact_at_full_sample(self):
        # Sampling everything: estimate must equal observed distinct count.
        assert goodman_raw(5, 5, [2, 2, 1]) == pytest.approx(3.0)

    def test_unbiased_small_case(self):
        """Classic check: population {a,a,b}, samples of 2 → E[D̂] = 2."""
        assert enumerate_expectation([0, 0, 1], 2) == pytest.approx(2.0)

    def test_unbiased_larger_case(self):
        # Population of 6 with classes sized ≤ 3; m=3 satisfies Goodman's
        # unbiasedness condition (max class size ≤ m).
        population = [0, 0, 1, 1, 2, 2]
        assert enumerate_expectation(population, 3) == pytest.approx(3.0)

    def test_unbiased_uneven_classes(self):
        population = [0, 0, 0, 1, 2]
        assert enumerate_expectation(population, 3) == pytest.approx(3.0)

    def test_overflow_returns_inf(self):
        # A deep occupancy term (j=8) from a huge population: the series
        # coefficient Π (N−n+t)/(n−t) explodes past any float bound.
        result = goodman_raw(10**6, 10, [8, 1, 1])
        assert math.isinf(result)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(EstimationError):
            goodman_raw(3, 5, [1])
        with pytest.raises(EstimationError):
            goodman_raw(5, 0, [])

    def test_occupancy_exceeding_sample_rejected(self):
        with pytest.raises(EstimationError):
            goodman_raw(10, 2, [2, 2])

    def test_nonpositive_occupancy_rejected(self):
        with pytest.raises(EstimationError):
            goodman_raw(10, 2, [0])


class TestBaselines:
    def test_chao1_with_doubletons(self):
        # d=3, f1=2, f2=1 → 3 + 4/2 = 5
        assert chao1([1, 1, 2]) == pytest.approx(5.0)

    def test_chao1_without_doubletons(self):
        # d=2, f1=2, f2=0 → 2 + 2·1/2 = 3
        assert chao1([1, 1]) == pytest.approx(3.0)

    def test_jackknife1(self):
        # d=2, f1=1, n=4 → 2 + 1·3/4
        assert jackknife1(4, [1, 3]) == pytest.approx(2.75)

    def test_jackknife_requires_positive_sample(self):
        with pytest.raises(EstimationError):
            jackknife1(0, [1])

    def test_coverage(self):
        assert good_turing_coverage([1, 2, 3]) == pytest.approx(1 - 1 / 6)

    def test_coverage_floor_positive(self):
        assert good_turing_coverage([1]) > 0.0


class TestGoodmanEstimate:
    def test_empty_occupancy_gives_zero(self):
        est = goodman_estimate(100, 10, [])
        assert est.value == 0.0

    def test_full_census_exact(self):
        est = goodman_estimate(4, 4, [2, 2])
        assert est.exact and est.value == 2.0 and est.variance == 0.0

    def test_value_in_feasible_range(self):
        rng = np.random.default_rng(0)
        est = goodman_estimate(1000, 50, [1] * 40 + [2] * 5, rng=rng)
        assert 45 <= est.value <= 1000

    def test_falls_back_when_goodman_explodes(self):
        rng = np.random.default_rng(0)
        est = goodman_estimate(10**6, 10, [8, 1, 1], rng=rng)
        assert math.isfinite(est.value)
        assert 3 <= est.value <= 10**6

    def test_bootstrap_variance_nonnegative_and_reproducible(self):
        occupancy = [1] * 10 + [3] * 3
        a = goodman_estimate(500, 19, occupancy, rng=np.random.default_rng(5))
        b = goodman_estimate(500, 19, occupancy, rng=np.random.default_rng(5))
        assert a.variance == b.variance >= 0.0

    def test_consistency_toward_truth(self):
        """With growing samples from a fixed population, the estimate
        approaches the true distinct count."""
        rng = np.random.default_rng(3)
        population = [i % 50 for i in range(1000)]  # 50 classes
        errors = []
        for m in (100, 400, 900):
            draws = rng.choice(population, size=m, replace=False)
            occupancy = list(Counter(draws).values())
            est = goodman_estimate(1000, m, occupancy, rng=rng)
            errors.append(abs(est.value - 50) / 50)
        assert errors[-1] < 0.1
        assert errors[-1] <= errors[0] + 0.05
