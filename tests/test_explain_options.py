"""``Database.explain`` takes the same options bundle as ``estimate``.

Mirrors ``test_options_api.py`` for the explain entrypoint: a
:class:`QueryOptions` bundle configures the probe sessions, per-call
keyword overrides beat the bundle, unknown names are rejected with the
valid list, and ``optimize`` is ignored (explain builds both variants by
definition).
"""

from __future__ import annotations

import pytest

from repro import QueryOptions
from repro.errors import ReproError
from repro.relational.expression import join, rel
from repro.relational.predicate import cmp
from repro.server.workload import demo_database

EXPR = join(rel("r1").where(cmp("a", "<", 5_000)), rel("r2"), on=["a"])


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=23, tuples=400, analyze=True)


def sig(explanation):
    return (
        explanation.optimized,
        [a.rule for a in explanation.applications],
        explanation.before_costs.total,
        explanation.after_costs.total,
    )


class TestExplainOptions:
    def test_options_bundle_accepted(self, db):
        plain = db.explain(EXPR)
        bundled = db.explain(EXPR, options=QueryOptions())
        assert sig(bundled) == sig(plain)

    def test_options_configure_the_probes(self, db):
        hybrid = db.explain(
            EXPR, options=QueryOptions(selectivity_source="hybrid")
        )
        runtime = db.explain(EXPR)
        # Prestored hints change the predicted stage prices.
        assert sig(hybrid) != sig(runtime) or (
            hybrid.before_costs.total != runtime.before_costs.total
        )

    def test_keyword_override_beats_the_bundle(self, db):
        via_bundle = db.explain(
            EXPR, options=QueryOptions(selectivity_source="hybrid")
        )
        overridden = db.explain(
            EXPR,
            options=QueryOptions(selectivity_source="hybrid"),
            selectivity_source="runtime",
        )
        plain = db.explain(EXPR)
        assert sig(overridden) == sig(plain)
        assert sig(overridden) != sig(via_bundle) or (
            overridden.before_costs.total != via_bundle.before_costs.total
        )

    def test_options_equal_keywords(self, db):
        via_options = db.explain(
            EXPR, options=QueryOptions(selectivity_source="hybrid")
        )
        via_keyword = db.explain(EXPR, selectivity_source="hybrid")
        assert sig(via_options) == sig(via_keyword)

    def test_unknown_keyword_rejected_with_valid_names(self, db):
        with pytest.raises(ReproError, match="valid options"):
            db.explain(EXPR, strategee=None)

    def test_explicit_optimize_is_ignored(self, db):
        """Explain builds both variants regardless of the optimize setting."""
        forced_off = db.explain(EXPR, options=QueryOptions(optimize=False))
        plain = db.explain(EXPR)
        assert sig(forced_off) == sig(plain)

    def test_partitions_option_accepted(self, db):
        """The probe sessions accept the partitions knob like any other."""
        sharded = db.explain(EXPR, options=QueryOptions(partitions=4))
        plain = db.explain(EXPR)
        # Invariant 10: predicted costs are partition-independent.
        assert sig(sharded) == sig(plain)

    def test_explain_charges_nothing(self, db):
        baseline = db.count(EXPR)  # free oracle for comparison
        db.explain(EXPR, options=QueryOptions(partitions=2))
        assert db.count(EXPR) == baseline
