"""The synopsis catalog: stores, warm-start, absorption, invalidation."""

import pytest

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro.errors import EstimationError, ReproError
from repro.estimation.aggregates import count, sum_of
from repro.estimation.estimate import Estimate
from repro.estimation.selectivity import SelectivityTracker
from repro.observability import RecordingSink
from repro import caches
from repro.realtime import (
    QueryTask,
    TransactionScheduler,
    WriteTask,
    run_transaction,
)
from repro.relational import cmp, rel
from repro.server import (
    DegradeInfeasible,
    Outcome,
    QueryRequest,
    QueryServer,
    synopsis_degraded_estimate,
)
from repro.synopses import (
    SelectivityPosterior,
    SynopsisCatalog,
    aggregate_key,
    relation_fingerprint,
)
from repro.synopses.catalog import MAX_PRIOR_POINTS, MIN_PRIOR_POINTS


@pytest.fixture(autouse=True)
def fresh_plan_cache():
    caches.get("plans").clear()
    yield
    caches.get("plans").clear()


def make_db(seed: int = 7, rows: int = 20_000) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 100) for i in range(rows)],
    )
    return db


def query():
    return rel("r1").where(cmp("a", "<", 5))


SYN = QueryOptions(synopses=True)


# ---------------------------------------------------------------------------
# Catalog stores
# ---------------------------------------------------------------------------
class TestCatalogStores:
    def test_posterior_pools_and_counts_runs(self):
        cat = SynopsisCatalog()
        cat.record_selectivity(("h", "fp"), ["r1"], 10, 100)
        cat.record_selectivity(("h", "fp"), ["r1"], 30, 100)
        post = cat.posterior(("h", "fp"))
        assert post == SelectivityPosterior(40.0, 200.0, runs=2)
        assert post.mean == pytest.approx(0.2)

    def test_posterior_evidence_is_capped(self):
        cat = SynopsisCatalog()
        cat.record_selectivity(("h", "fp"), ["r1"], 0, int(MAX_PRIOR_POINTS))
        cat.record_selectivity(("h", "fp"), ["r1"], 10, 100)
        post = cat.posterior(("h", "fp"))
        assert post.points == MAX_PRIOR_POINTS
        assert 0 < post.mean < 0.1  # the new evidence survives rescaling

    def test_zero_point_observations_are_ignored(self):
        cat = SynopsisCatalog()
        cat.record_selectivity(("h", "fp"), ["r1"], 0, 0)
        assert cat.posterior(("h", "fp")) is None

    def test_answer_keeps_best_evidence(self):
        cat = SynopsisCatalog()
        expr = query()
        weak = Estimate(value=10.0, variance=4.0, sample_points=50,
                        population_points=1000)
        strong = Estimate(value=12.0, variance=1.0, sample_points=500,
                          population_points=1000)
        cat.record_answer(expr, count(), "fp", strong, blocks=9)
        cat.record_answer(expr, count(), "fp", weak, blocks=2)
        entry = cat.answer(expr.structural_hash(), count(), "fp")
        assert entry.value == 12.0 and entry.sample_points == 500
        assert entry.runs == 2  # the weaker run still counted as a run
        est = entry.estimate()
        assert est.variance == 1.0 and est.population_points == 1000

    def test_answers_keyed_by_aggregate(self):
        cat = SynopsisCatalog()
        expr = query()
        est = Estimate(value=5.0, variance=1.0, sample_points=10,
                       population_points=100)
        cat.record_answer(expr, count(), "fp", est, blocks=1)
        assert cat.answer(expr.structural_hash(), sum_of("a"), "fp") is None

    def test_aggregate_key(self):
        assert aggregate_key(count()) == "count"
        assert aggregate_key(sum_of("qty")) == "sum:qty"

    def test_relation_fingerprint_tracks_sizes(self):
        db = make_db(rows=1000)
        before = relation_fingerprint(db.catalog, ["r1"])
        db.append_rows("r1", [(10**6, 1)])
        after = relation_fingerprint(db.catalog, ["r1"])
        assert before != after
        assert before.startswith("r1:1000:")

    def test_decay_validation(self):
        with pytest.raises(ReproError):
            SynopsisCatalog(decay=1.0)

    def test_snapshot_restore_round_trip(self):
        cat = SynopsisCatalog()
        cat.record_selectivity(("h", "fp"), ["r1"], 10, 100)
        cat.record_relation("r1", 4, 300)
        token = cat.snapshot()
        cat.invalidate_relation("r1")
        assert cat.posterior(("h", "fp")).points < 100
        cat.restore(token)
        assert cat.posterior(("h", "fp")).points == 100.0
        assert cat.relation_summary("r1").blocks_sampled == 4


# ---------------------------------------------------------------------------
# Invalidation and aging
# ---------------------------------------------------------------------------
class TestInvalidation:
    def test_posteriors_age_then_drop(self):
        cat = SynopsisCatalog(decay=0.5)
        cat.record_selectivity(("h", "fp"), ["r1"], 1, 3)
        event = cat.invalidate_relation("r1")
        assert event.posteriors_aged == 1
        assert cat.posterior(("h", "fp")).points == pytest.approx(1.5)
        event = cat.invalidate_relation("r1")
        assert event.posteriors_dropped == 1
        assert cat.posterior(("h", "fp")) is None

    def test_answers_drop_into_refresh_queue(self):
        cat = SynopsisCatalog()
        expr = query()
        est = Estimate(value=5.0, variance=1.0, sample_points=10,
                       population_points=100)
        cat.record_answer(expr, count(), "fp", est, blocks=1)
        event = cat.invalidate_relation("r1")
        assert event.answers_dropped == 1
        assert cat.answer(expr.structural_hash(), count(), "fp") is None
        pending = cat.pending_refresh()
        assert len(pending) == 1 and pending[0].value == 5.0

    def test_unrelated_relation_untouched(self):
        cat = SynopsisCatalog()
        cat.record_selectivity(("h", "fp"), ["r1"], 1, 100)
        event = cat.invalidate_relation("r2")
        assert event.posteriors_aged == event.posteriors_dropped == 0
        assert cat.posterior(("h", "fp")).points == 100.0

    def test_record_answer_clears_refresh_entry(self):
        cat = SynopsisCatalog()
        expr = query()
        est = Estimate(value=5.0, variance=1.0, sample_points=10,
                       population_points=100)
        cat.record_answer(expr, count(), "fp-old", est, blocks=1)
        cat.invalidate_relation("r1")
        assert cat.pending_refresh()
        cat.record_answer(expr, count(), "fp-new", est, blocks=1)
        assert not cat.pending_refresh()

    def test_requeue_returns_claimed_entry(self):
        cat = SynopsisCatalog()
        expr = query()
        est = Estimate(value=5.0, variance=1.0, sample_points=10,
                       population_points=100)
        cat.record_answer(expr, count(), "fp", est, blocks=1)
        cat.invalidate_relation("r1")
        (entry,) = cat.pending_refresh()
        assert cat.pop_refresh() is entry
        assert not cat.pending_refresh()
        cat.requeue_refresh(entry)  # the refresh run failed
        assert cat.pending_refresh() == [entry]
        # A later real run of the same shape still supersedes the stale
        # entry: record_answer pops the queue by shape.
        cat.record_answer(expr, count(), "fp-new", est, blocks=1)
        assert not cat.pending_refresh()


# ---------------------------------------------------------------------------
# Tracker warm-start semantics
# ---------------------------------------------------------------------------
class TestTrackerWarmStart:
    def test_prior_pools_with_observations(self):
        t = SelectivityTracker("select#1", initial=1.0)
        t.warm_start(10.0, 100.0)
        assert t.sel_prev == pytest.approx(0.1)
        t.record_stage(30, 100)
        assert t.sel_prev == pytest.approx(40 / 200)
        # The run's own evidence stays observed-only.
        assert t.total_tuples == 30 and t.total_points == 100

    def test_sel_plus_uses_prior_before_stage_one(self):
        cold = SelectivityTracker("select#1", initial=1.0)
        warm = SelectivityTracker("select#1", initial=1.0)
        warm.warm_start(10.0, 1000.0)
        assert cold.sel_plus(24.0, 50, 10_000) == 1.0
        assert warm.sel_plus(24.0, 50, 10_000) < 0.5

    def test_zero_selectivity_bound_pools_prior(self):
        t = SelectivityTracker("select#1", initial=1.0, zero_fix_beta=0.05)
        t.warm_start(0.001, 100.0)
        t.record_stage(0, 100)
        cold = SelectivityTracker("select#1", initial=1.0, zero_fix_beta=0.05)
        cold.record_stage(0, 100)
        assert t.zero_selectivity_bound() < cold.zero_selectivity_bound()

    def test_warm_start_guards(self):
        pinned = SelectivityTracker("s", initial=0.5, pinned=True)
        with pytest.raises(EstimationError):
            pinned.warm_start(1.0, 10.0)
        observed = SelectivityTracker("s", initial=1.0)
        observed.record_stage(1, 10)
        with pytest.raises(EstimationError):
            observed.warm_start(1.0, 10.0)
        fresh = SelectivityTracker("s", initial=1.0)
        with pytest.raises(EstimationError):
            fresh.warm_start(1.0, 0.0)

    def test_salvage_restore_keeps_prior(self):
        t = SelectivityTracker("s", initial=1.0)
        t.warm_start(10.0, 100.0)
        token = t.snapshot()
        t.record_stage(5, 50)
        t.restore(token)
        assert t.prior_points == 100.0 and t.stages_observed == 0
        assert t.sel_prev == pytest.approx(0.1)

    def test_per_stage_series_excludes_prior(self):
        t = SelectivityTracker("s", initial=1.0)
        t.warm_start(10.0, 100.0)
        t.record_stage(2, 10)
        assert t.per_stage_selectivities() == [0.2]


# ---------------------------------------------------------------------------
# End-to-end warm-start through Database
# ---------------------------------------------------------------------------
class TestEndToEnd:
    def test_repeat_run_hits_catalog(self):
        db = make_db()
        db.estimate(query(), quota=5.0, seed=3, options=SYN)
        info = db.synopses.info()
        assert info.posteriors == 1 and info.answers == 1
        sink = RecordingSink()
        db.estimate(query(), quota=5.0, seed=3,
                    options=SYN.replace(sink=sink))
        hits = sink.of_kind("synopsis_hit")
        assert len(hits) == 1 and hits[0].scope == "warm_start"
        assert hits[0].prior_points > 0

    def test_disabled_sessions_never_touch_catalog(self):
        db = make_db()
        db.estimate(query(), quota=5.0, seed=3)  # default: off
        db.estimate(query(), quota=5.0, seed=3, options=QueryOptions(synopses=False))
        info = db.synopses.info()
        assert info.posteriors == info.answers == 0
        assert info.hits == info.misses == 0

    def test_env_switch_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNOPSES", "1")
        db = make_db()
        db.estimate(query(), quota=5.0, seed=3)
        assert db.synopses.info().answers == 1
        monkeypatch.setenv("REPRO_SYNOPSES", "0")
        db2 = make_db()
        db2.estimate(query(), quota=5.0, seed=3)
        assert db2.synopses.info().answers == 0

    def test_explicit_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNOPSES", "1")
        db = make_db()
        db.estimate(query(), quota=5.0, seed=3,
                    options=QueryOptions(synopses=False))
        assert db.synopses.info().answers == 0

    def test_prestored_mode_neither_borrows_nor_deposits_posteriors(self):
        db = make_db()
        db.estimate(query(), quota=5.0, seed=3, options=SYN)
        db.analyze()
        sink = RecordingSink()
        db.estimate(
            query(), quota=5.0, seed=4,
            options=SYN.replace(selectivity_source="prestored", sink=sink),
        )
        assert not sink.of_kind("synopsis_hit")

    def test_catalogs_are_per_database_but_shareable(self):
        db1 = make_db(seed=1)
        db1.estimate(query(), quota=5.0, seed=3, options=SYN)
        db2 = make_db(seed=2)
        assert db2.synopses.info().answers == 0
        shared = Database(seed=3, synopsis_catalog=db1.synopses)
        assert shared.synopses is db1.synopses


# ---------------------------------------------------------------------------
# Mutation invalidates derived state (satellite: plan cache + catalog)
# ---------------------------------------------------------------------------
class TestMutation:
    def test_append_rows_grows_and_invalidates_synopses(self):
        db = make_db(rows=1000)
        db.estimate(query(), quota=5.0, seed=3, options=SYN)
        assert db.synopses.info().answers == 1
        added = db.append_rows("r1", [(10**6 + i, 1) for i in range(5)])
        assert added == 5
        assert db.relation("r1").tuple_count == 1005
        info = db.synopses.info()
        assert info.answers == 0 and info.invalidations == 1
        assert info.refresh_pending == 1

    def test_append_rows_invalidates_plan_cache(self):
        from repro.planner.cache import invalidate_plan_cache_relation

        db = make_db(rows=1000)
        expr = query()
        db.estimate(expr, quota=5.0, seed=3)
        assert caches.get("plans").info().currsize == 1
        db.append_rows("r1", [(10**6, 1)])
        assert caches.get("plans").info().currsize == 0
        # And the helper reports how many entries it evicted.
        db.estimate(expr, quota=5.0, seed=3)
        assert invalidate_plan_cache_relation("r1") == 1
        assert invalidate_plan_cache_relation("unrelated") == 0

    def test_append_rows_drops_stale_statistics(self):
        db = make_db(rows=1000)
        db.analyze()
        assert "r1" in db.statistics
        db.append_rows("r1", [(10**6, 1)])
        assert "r1" not in db.statistics

    def test_drop_relation_invalidates(self):
        db = make_db(rows=1000)
        db.estimate(query(), quota=5.0, seed=3, options=SYN)
        db.drop_relation("r1")
        assert db.synopses.info().answers == 0


# ---------------------------------------------------------------------------
# Realtime write transactions
# ---------------------------------------------------------------------------
class TestWriteTransactions:
    def test_write_task_validation(self):
        from repro.errors import TimeControlError

        with pytest.raises(TimeControlError):
            WriteTask("", "r1")
        with pytest.raises(TimeControlError):
            WriteTask("w", "")
        with pytest.raises(TimeControlError):
            TransactionScheduler(make_db()).run(
                [WriteTask("w", "r1", [(1, 1)])], deadline=1.0
            )

    def test_scheduler_applies_writes_and_invalidates(self):
        db = make_db(rows=1000)
        db.estimate(query(), quota=5.0, seed=3, options=SYN)
        scheduler = TransactionScheduler(db)
        result = scheduler.run(
            [
                WriteTask("w", "r1", [(10**6 + i, 1) for i in range(3)]),
                QueryTask("q", query()),
            ],
            deadline=5.0,
            seed=9,
        )
        assert result.met_deadline
        assert db.relation("r1").tuple_count == 1003
        assert db.synopses.info().invalidations == 1
        assert "w" not in result.quotas  # writes get no sampling budget

    def test_adapter_applies_writes_through_server(self):
        db = make_db(rows=1000)
        server = QueryServer(db, synopses=True)
        server.serve(QueryRequest(expr=query(), quota=5.0, seed=3))
        assert db.synopses.info().answers == 1
        result = run_transaction(
            server,
            [
                WriteTask("w", "r1", [(10**6, 1)]),
                QueryTask("q", query()),
            ],
            deadline=5.0,
            seed=9,
        )
        assert result.met_deadline
        assert db.relation("r1").tuple_count == 1001
        assert db.synopses.info().invalidations == 1


# ---------------------------------------------------------------------------
# Server: synopsis-backed degraded answers, UNCOVERED, refresh hook
# ---------------------------------------------------------------------------
class TestServerSynopses:
    def test_degrade_prefers_synopsis_with_recorded_variance(self):
        db = make_db()
        server = QueryServer(db, policy=DegradeInfeasible(), synopses=True)
        answered = server.serve(QueryRequest(expr=query(), quota=5.0, seed=3))
        assert answered.outcome is Outcome.ANSWERED
        recorded = db.synopses.answer(
            query().structural_hash(),
            count(),
            relation_fingerprint(db.catalog, ["r1"]),
        )
        degraded = server.serve(QueryRequest(expr=query(), quota=1e-4, seed=4))
        assert degraded.outcome is Outcome.DEGRADED
        assert "synopsis" in degraded.reason
        assert degraded.estimate.value == recorded.value
        assert degraded.estimate.variance == recorded.variance

    def test_synopsis_beats_prestored(self):
        db = make_db()
        db.analyze()
        server = QueryServer(db, policy=DegradeInfeasible(), synopses=True)
        server.serve(QueryRequest(expr=query(), quota=5.0, seed=3))
        degraded = server.serve(QueryRequest(expr=query(), quota=1e-4, seed=4))
        assert "synopsis" in degraded.reason
        # A sampled-variance interval is tighter than the flat ±100% one.
        assert degraded.estimate.relative_error_bound(0.95) < 1.0

    def test_prestored_fallback_when_no_synopsis(self):
        db = make_db()
        db.analyze()
        server = QueryServer(db, policy=DegradeInfeasible(), synopses=True)
        degraded = server.serve(QueryRequest(expr=query(), quota=1e-4, seed=4))
        assert degraded.outcome is Outcome.DEGRADED
        assert "prestored" in degraded.reason

    def test_uncovered_outcome_when_nothing_covers(self):
        db = make_db()
        server = QueryServer(db, policy=DegradeInfeasible(), synopses=True)
        outcome = server.serve(QueryRequest(expr=query(), quota=1e-4, seed=4))
        assert outcome.outcome is Outcome.UNCOVERED
        assert outcome.estimate is None

    def test_synopsis_degraded_estimate_misses_after_mutation(self):
        db = make_db(rows=1000)
        db.estimate(query(), quota=5.0, seed=3, options=SYN)
        assert synopsis_degraded_estimate(db, query()) is not None
        db.append_rows("r1", [(10**6, 1)])
        assert synopsis_degraded_estimate(db, query()) is None

    def test_refresh_synopses_rederives_and_charges_clock(self):
        db = make_db(rows=1000)
        server = QueryServer(db, synopses=True)
        server.serve(QueryRequest(expr=query(), quota=5.0, seed=3))
        db.append_rows("r1", [(10**6 + i, 3) for i in range(20)])
        assert db.synopses.info().refresh_pending == 1
        before = server.clock.now()
        refreshed = server.refresh_synopses(budget=5.0)
        assert refreshed == 1
        assert server.clock.now() > before  # capacity was really spent
        info = db.synopses.info()
        assert info.answers == 1 and info.refresh_pending == 0
        assert synopsis_degraded_estimate(db, query()) is not None

    def test_refresh_requeues_entry_when_run_fails(self):
        db = make_db(rows=1000)
        server = QueryServer(db, synopses=True)
        server.serve(QueryRequest(expr=query(), quota=5.0, seed=3))
        db.append_rows("r1", [(10**6, 1)])
        assert db.synopses.info().refresh_pending == 1
        # A budget too small for any feasible stage produces a run with no
        # estimate; the entry must return to the queue, not vanish.
        assert server.refresh_synopses(budget=1e-4) == 0
        assert db.synopses.info().refresh_pending == 1
        assert server.refresh_synopses(budget=5.0) == 1
        assert db.synopses.info().refresh_pending == 0

    def test_refresh_noop_when_disabled_or_drained(self):
        db = make_db(rows=1000)
        off = QueryServer(db)
        assert off.refresh_synopses(budget=5.0) == 0
        on = QueryServer(db, synopses=True)
        assert on.refresh_synopses(budget=5.0) == 0  # nothing queued
