"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute, Schema
from repro.catalog.types import AttributeType
from repro.storage.heapfile import HeapFile
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile


@pytest.fixture
def int_schema() -> Schema:
    """Two-int schema (id, a) with 8-byte tuples."""
    return Schema.of(id=AttributeType.INT, a=AttributeType.INT)


@pytest.fixture
def wide_schema() -> Schema:
    """A 200-byte paper-style schema."""
    return Schema(
        (
            Attribute("id", AttributeType.INT, 4),
            Attribute("a", AttributeType.INT, 4),
            Attribute("b", AttributeType.INT, 4),
            Attribute("pad", AttributeType.STR, 188),
        )
    )


@pytest.fixture
def free_charger() -> CostCharger:
    """A charger that charges zero time (pure-logic tests)."""
    return CostCharger(MachineProfile.uniform(0.0))


@pytest.fixture
def unit_charger() -> CostCharger:
    """A deterministic charger: every unit costs exactly 1 second."""
    return CostCharger(MachineProfile.uniform(1.0))


def make_relation(
    name: str,
    schema: Schema,
    rows: list[tuple],
    block_size: int = 40,
) -> HeapFile:
    heap = HeapFile(name, schema, block_size)
    heap.load(rows)
    return heap


@pytest.fixture
def small_catalog(int_schema) -> Catalog:
    """r1: 100 tuples a=i%10; r2: 100 tuples overlapping ids 50..149."""
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation("r1", int_schema, [(i, i % 10) for i in range(100)]),
    )
    catalog.register(
        "r2",
        make_relation("r2", int_schema, [(i, i % 10) for i in range(50, 150)]),
    )
    return catalog


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
