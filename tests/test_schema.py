"""Unit tests for Schema (repro.catalog.schema)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.schema import Attribute, Schema
from repro.catalog.types import AttributeType
from repro.errors import SchemaError


class TestConstruction:
    def test_of_builds_ordered_schema(self):
        s = Schema.of(a=AttributeType.INT, b=AttributeType.STR)
        assert s.names == ("a", "b")
        assert s.arity == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Attribute("a", AttributeType.INT), Attribute("a", AttributeType.INT)))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_attribute_default_width_applied(self):
        a = Attribute("x", AttributeType.STR)
        assert a.width == 16

    def test_attribute_explicit_width(self):
        a = Attribute("x", AttributeType.STR, 188)
        assert a.width == 188

    def test_attribute_negative_width_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", AttributeType.INT, -1)

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeType.INT)

    def test_from_pairs_with_widths(self):
        s = Schema.from_pairs(
            [("a", AttributeType.INT), ("p", AttributeType.STR)],
            widths={"p": 100},
        )
        assert s.attribute("p").width == 100


class TestSizes:
    def test_tuple_size_sums_widths(self):
        s = Schema.of(a=AttributeType.INT, b=AttributeType.FLOAT)
        assert s.tuple_size == 12

    def test_paper_tuple_is_200_bytes(self, wide_schema):
        assert wide_schema.tuple_size == 200

    def test_paper_blocking_factor_is_5(self, wide_schema):
        assert wide_schema.blocking_factor(1024) == 5

    def test_blocking_factor_at_least_one(self):
        s = Schema.of(p=AttributeType.STR)
        assert s.blocking_factor(8) == 1

    def test_blocking_factor_rejects_nonpositive(self, wide_schema):
        with pytest.raises(SchemaError):
            wide_schema.blocking_factor(0)


class TestLookup:
    def test_index_of(self, wide_schema):
        assert wide_schema.index_of("a") == 1

    def test_index_of_unknown_raises(self, wide_schema):
        with pytest.raises(SchemaError):
            wide_schema.index_of("nope")

    def test_contains(self, wide_schema):
        assert "a" in wide_schema
        assert "zz" not in wide_schema

    def test_iter_yields_attributes(self, wide_schema):
        assert [a.name for a in wide_schema] == ["id", "a", "b", "pad"]


class TestProject:
    def test_project_keeps_given_order(self, wide_schema):
        assert wide_schema.project(["b", "id"]).names == ("b", "id")

    def test_project_unknown_attr_raises(self, wide_schema):
        with pytest.raises(SchemaError):
            wide_schema.project(["ghost"])

    def test_project_empty_raises(self, wide_schema):
        with pytest.raises(SchemaError):
            wide_schema.project([])

    def test_project_duplicates_raise(self, wide_schema):
        with pytest.raises(SchemaError):
            wide_schema.project(["a", "a"])


class TestJoin:
    def test_join_concatenates(self):
        left = Schema.of(a=AttributeType.INT)
        right = Schema.of(b=AttributeType.INT)
        assert left.join(right).names == ("a", "b")

    def test_join_renames_clashes(self):
        left = Schema.of(a=AttributeType.INT, b=AttributeType.INT)
        right = Schema.of(a=AttributeType.INT)
        assert left.join(right).names == ("a", "b", "a_r")

    def test_join_renames_double_clash(self):
        left = Schema.of(a=AttributeType.INT, a_r=AttributeType.INT)
        right = Schema.of(a=AttributeType.INT)
        assert left.join(right).names == ("a", "a_r", "a_r_r")


class TestCompatibility:
    def test_same_schemas_compatible(self, int_schema):
        other = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
        assert int_schema.is_compatible(other)

    def test_different_names_incompatible(self, int_schema):
        other = Schema.of(id=AttributeType.INT, z=AttributeType.INT)
        assert not int_schema.is_compatible(other)

    def test_different_types_incompatible(self, int_schema):
        other = Schema.of(id=AttributeType.INT, a=AttributeType.FLOAT)
        assert not int_schema.is_compatible(other)

    def test_require_compatible_raises(self, int_schema):
        other = Schema.of(x=AttributeType.INT)
        with pytest.raises(SchemaError, match="union"):
            int_schema.require_compatible(other, "union")


class TestValidateRow:
    def test_valid_row_passes(self, int_schema):
        assert int_schema.validate_row((1, 2)) == (1, 2)

    def test_wrong_arity_raises(self, int_schema):
        with pytest.raises(SchemaError):
            int_schema.validate_row((1, 2, 3))

    def test_wrong_type_raises(self, int_schema):
        with pytest.raises(SchemaError):
            int_schema.validate_row((1, "two"))

    def test_coercion_applied(self):
        s = Schema.of(x=AttributeType.FLOAT)
        assert s.validate_row((3,)) == (3.0,)


@given(
    names=st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        min_size=1,
        max_size=6,
        unique=True,
    )
)
def test_property_tuple_size_positive_and_projectable(names):
    """Any well-formed schema has a positive tuple size and projects onto
    each single attribute."""
    schema = Schema(tuple(Attribute(n, AttributeType.INT) for n in names))
    assert schema.tuple_size == 4 * len(names)
    for name in names:
        sub = schema.project([name])
        assert sub.names == (name,)
