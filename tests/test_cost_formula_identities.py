"""Identity tests between predicted and realized cost-formula features.

Equation (4.4) is a counting argument: at stage ``s`` the full-fulfillment
merges read ``N_{1,s−1} + N_{2,s−1} + s·(n_{1s}+n_{2s})`` tuples across
``2s−1`` pairwise merges. These tests observe the *realized* features fed to
the cost model during execution and check them against the closed formulas
the predictor uses — i.e. the prediction machinery and the execution
machinery agree about the physics, so only selectivities and noise separate
prediction from actuality.
"""

import math

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.costmodel import steps as step_names
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.errors import QuotaExpired, TimeControlError
from repro.relational.expression import intersect, join, rel, select
from repro.relational.predicate import cmp
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


class SpyCostModel(CostModel):
    """Records every observed (step, features, seconds) triple."""

    def __init__(self) -> None:
        super().__init__()
        self.observed: list[tuple[str, list[float], float]] = []

    def observe(self, step, features, seconds):
        self.observed.append((step, [float(x) for x in features], seconds))
        super().observe(step, features, seconds)

    def of(self, step: str) -> list[list[float]]:
        return [f for s, f, _ in self.observed if s == step]


@pytest.fixture
def catalog(int_schema):
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", int_schema, [(i, i % 10) for i in range(200)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", int_schema, [(i, i % 10) for i in range(100, 300)], block_size=16
        ),
    )
    return catalog


def run_stages(catalog, expr, fractions, seed=0, full=True):
    rng = np.random.default_rng(seed)
    charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
    spy = SpyCostModel()
    plan = StagedPlan(
        expr, catalog, charger, spy, rng, full_fulfillment=full
    )
    for fraction in fractions:
        plan.advance_stage(fraction)
    return plan, spy


class TestMergeReadFormula:
    def test_equation_4_4_reads(self, catalog):
        """Realized merge reads equal N_{1,s−1}+N_{2,s−1}+s(n1s+n2s)."""
        expr = join(rel("r1"), rel("r2"), on=["a"])
        plan, spy = run_stages(catalog, expr, [0.1, 0.15, 0.2])
        merges = spy.of(step_names.JOIN_MERGE)
        assert len(merges) == 3
        # Reconstruct the per-stage input sizes from the scans' history is
        # implicit: both children are scans, so n_js equals the stage's new
        # tuples. Walk the formula stage by stage.
        n1_hist, n2_hist = [], []
        cum1 = cum2 = 0
        for s, features in enumerate(merges, start=1):
            reads, _outputs, merge_count = features
            # The executor interleaves: recover n_js from the scans via the
            # recorded merge counts. For stage s the formula must hold with
            # some (n1s, n2s); get them from the plan history instead.
            stats = plan.history[s - 1]
            n1s = n2s = stats.blocks_read  # not per-relation; recompute below
            assert merge_count == 2 * s - 1

        # Cross-check stage by stage with per-relation numbers.
        scan1, scan2 = plan.scans
        # Re-run with the same seed to capture per-stage per-relation sizes.
        rng = np.random.default_rng(0)
        charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
        spy2 = SpyCostModel()
        plan2 = StagedPlan(expr, catalog, charger, spy2, rng)
        cum1 = cum2 = 0
        for s, fraction in enumerate([0.1, 0.15, 0.2], start=1):
            before1 = plan2.scans[0].cum_tuples
            before2 = plan2.scans[1].cum_tuples
            plan2.advance_stage(fraction)
            n1s = plan2.scans[0].cum_tuples - before1
            n2s = plan2.scans[1].cum_tuples - before2
            reads = spy2.of(step_names.JOIN_MERGE)[s - 1][0]
            expected = cum1 + cum2 + s * (n1s + n2s)
            assert reads == expected, f"stage {s}"
            cum1 += n1s
            cum2 += n2s

    def test_partial_fulfillment_reads_new_only(self, catalog):
        expr = intersect(rel("r1"), rel("r2"))
        plan, spy = run_stages(
            catalog, expr, [0.1, 0.15], full=False
        )
        merges = spy.of(step_names.INTERSECT_MERGE)
        for s, features in enumerate(merges, start=1):
            _reads, _out, merge_count = features
            assert merge_count == 1  # new×new only


class TestSortFormula:
    def test_nlogn_features_match_input_sizes(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        rng = np.random.default_rng(1)
        charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
        spy = SpyCostModel()
        plan = StagedPlan(expr, catalog, charger, spy, rng)
        before1 = plan.scans[0].cum_tuples
        before2 = plan.scans[1].cum_tuples
        plan.advance_stage(0.2)
        n1 = plan.scans[0].cum_tuples - before1
        n2 = plan.scans[1].cum_tuples - before2
        nlogn, linear, _one = spy.of(step_names.JOIN_SORT)[0]
        expected = sum(n * math.log2(n) for n in (n1, n2) if n > 1)
        assert nlogn == pytest.approx(expected)
        assert linear == n1 + n2


class TestSelectFeatureIdentity:
    def test_select_features_match_io(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        plan, spy = run_stages(catalog, expr, [0.25], seed=2)
        n, pages, one = spy.of(step_names.SELECT_OP)[0]
        scanned = plan.scans[0].cum_tuples
        out = plan.terms[0].root.cum_out_tuples
        bf = plan.scans[0].schema.blocking_factor(plan.block_size)
        assert n == scanned
        assert pages == -(-out // bf)
        assert one == 1.0


class TestFailureInjection:
    def test_interrupt_mid_stage_never_corrupts_counts(self, catalog):
        """A timer interrupt mid-stage either lets the stage be retried
        cleanly (when it died during block reads — the burned blocks are
        simply discarded sample) or fails loudly on reuse (when it died
        between node advances). It must never silently mis-combine stage
        bookkeeping: after any successful stage the evaluated points equal
        the cross product of the sampled tuples."""
        expr = join(rel("r1"), rel("r2"), on=["a"])
        rng = np.random.default_rng(3)
        charger = CostCharger(MachineProfile.uniform(0.01), rng=rng)
        plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
        plan.advance_stage(0.1)  # healthy first stage
        charger.arm(charger.clock.now() + 0.05, hard=True)
        with pytest.raises(QuotaExpired):
            plan.advance_stage(0.3)
        charger.disarm()
        try:
            plan.advance_stage(0.1)
        except TimeControlError:
            return  # loud refusal is an acceptable outcome
        # Retry succeeded: the invariant must hold exactly.
        expected_points = 1
        for scan in plan.scans:
            expected_points *= scan.cum_tuples
        assert plan.terms[0].root.points_so_far == expected_points
        assert plan.estimate().variance >= 0.0

    def test_interrupted_executor_reports_cleanly(self, catalog):
        from repro.timecontrol.executor import TimeConstrainedExecutor
        from repro.timecontrol.stopping import HardDeadline
        from repro.timecontrol.strategies import OneAtATimeInterval

        expr = join(rel("r1"), rel("r2"), on=["a"])
        rng = np.random.default_rng(4)
        # A machine so slow stage 1 cannot finish inside the quota.
        charger = CostCharger(MachineProfile.uniform(5.0), rng=rng)
        plan = StagedPlan(expr, catalog, charger, CostModel(), rng)
        executor = TimeConstrainedExecutor(
            plan,
            OneAtATimeInterval(d_beta=12.0),
            stopping=HardDeadline(),
            measure_overspend=False,
        )
        report = executor.run(quota=20.0)
        assert report.termination in ("interrupted", "no_feasible_stage")
        if report.termination == "interrupted":
            assert report.estimate is None
            assert report.stages[-1].aborted_mid_stage
