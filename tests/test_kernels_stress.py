"""Kernel-switch stress: the 50-session interleave, kernels on vs off.

Re-runs the session-isolation stress workload (see
``test_session_stress.py``) under both execution paths and demands
bit-identical run signatures: interleaving 50 vectorized sessions must
match running the same 50 sessions serially with the row-at-a-time
fallback, and vice versa. This is the end-to-end acceptance check that the
kernel layer changes wall-clock behaviour only — every estimate, stage
fraction, simulated duration, and block count is path-invariant even with
50 plans' worth of kernel state (consolidated runs, column caches) alive
at once.
"""

from __future__ import annotations

import random

import pytest

from tests.test_session_stress import SESSIONS, make_db, signature, spec


def run_serial(vectorized: bool | None) -> dict[int, tuple]:
    db = make_db()
    signatures = {}
    for i in range(SESSIONS):
        session = db.open_session(vectorized=vectorized, **spec(i))
        signatures[i] = signature(session.run())
    return signatures


@pytest.fixture(scope="module")
def serial_rowwise():
    return run_serial(vectorized=False)


def test_vectorized_serial_matches_rowwise_serial(serial_rowwise):
    assert run_serial(vectorized=True) == serial_rowwise


def test_vectorized_interleaved_matches_rowwise_serial(serial_rowwise):
    db = make_db()
    sessions = {
        i: db.open_session(vectorized=True, **spec(i)) for i in range(SESSIONS)
    }
    order = list(range(SESSIONS))
    random.Random(13).shuffle(order)
    interleaved = {i: signature(sessions[i].run()) for i in order}
    assert interleaved == serial_rowwise


def test_mixed_paths_interleaved_match_too(serial_rowwise):
    """Alternating vectorized and fallback sessions on one database."""
    db = make_db()
    sessions = {
        i: db.open_session(vectorized=(i % 2 == 0), **spec(i))
        for i in range(SESSIONS)
    }
    order = list(range(SESSIONS))
    random.Random(17).shuffle(order)
    mixed = {i: signature(sessions[i].run()) for i in order}
    assert mixed == serial_rowwise


def test_env_switch_selects_the_fallback_path(monkeypatch, serial_rowwise):
    """``REPRO_KERNELS=0`` routes whole sessions through the reference path."""
    monkeypatch.setenv("REPRO_KERNELS", "0")
    db = make_db()
    for i in (0, 1, 2, 3):
        session = db.open_session(**spec(i))  # vectorized=None → env
        assert session.plan.vectorized is False
        assert signature(session.run()) == serial_rowwise[i]
    monkeypatch.setenv("REPRO_KERNELS", "1")
    session = db.open_session(**spec(4))
    assert session.plan.vectorized is True
    assert signature(session.run()) == serial_rowwise[4]
