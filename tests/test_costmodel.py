"""Tests for the adaptive cost model (OnlineLinearModel, CostModel)."""

import numpy as np
import pytest

from repro.costmodel.linear import OnlineLinearModel, StepSpec
from repro.costmodel.model import CostModel
from repro.costmodel.steps import (
    SCAN_READ,
    SELECT_OP,
    STAGE_OVERHEAD,
    default_step_specs,
)
from repro.errors import CostModelError


@pytest.fixture
def spec():
    return StepSpec("test.step", prior=(1.0, 0.5), scales=(10.0, 1.0), weight=0.5)


class TestStepSpec:
    def test_dim(self, spec):
        assert spec.dim == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(CostModelError):
            StepSpec("x", prior=(1.0,), scales=(1.0, 1.0))

    def test_nonpositive_scales_rejected(self):
        with pytest.raises(CostModelError):
            StepSpec("x", prior=(1.0,), scales=(0.0,))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(CostModelError):
            StepSpec("x", prior=(1.0,), scales=(1.0,), weight=0.0)


class TestOnlineLinearModel:
    def test_prior_prediction(self, spec):
        model = OnlineLinearModel(spec)
        assert model.predict([2.0, 1.0]) == pytest.approx(2.5)

    def test_prediction_floored_at_zero(self):
        model = OnlineLinearModel(
            StepSpec("x", prior=(-1.0,), scales=(1.0,))
        )
        assert model.predict([5.0]) == 0.0

    def test_wrong_dim_rejected(self, spec):
        model = OnlineLinearModel(spec)
        with pytest.raises(CostModelError):
            model.predict([1.0])
        with pytest.raises(CostModelError):
            model.observe([1.0], 1.0)

    def test_negative_seconds_rejected(self, spec):
        with pytest.raises(CostModelError):
            OnlineLinearModel(spec).observe([1.0, 1.0], -0.1)

    def test_converges_to_true_predictions(self, spec):
        """Feeding noise-free data from a different linear law makes the
        model's *predictions* converge (coefficients may trade off along
        collinear directions, which is fine — predictions are what QCOST
        uses)."""
        model = OnlineLinearModel(spec)
        rng = np.random.default_rng(0)
        true = np.array([0.2, 0.05])
        for _ in range(50):
            x = np.array([rng.uniform(1, 30), 1.0])
            model.observe(x, float(true @ x))
        # Accurate within the feature range the data covered (collinearity
        # leaves the far extrapolation toward u→0 weakly determined).
        for u in (10.0, 18.0, 25.0):
            x = np.array([u, 1.0])
            assert model.predict(x) == pytest.approx(float(true @ x), rel=0.1)

    def test_single_observation_moves_toward_truth(self, spec):
        model = OnlineLinearModel(spec)
        before = model.predict([20.0, 1.0])  # prior: 20.5
        model.observe([20.0, 1.0], 5.0)
        after = model.predict([20.0, 1.0])
        assert abs(after - 5.0) < abs(before - 5.0)

    def test_observation_count(self, spec):
        model = OnlineLinearModel(spec)
        model.observe([1.0, 1.0], 1.0)
        assert model.observations == 1


class TestCostModel:
    def test_default_specs_cover_all_steps(self):
        specs = default_step_specs()
        assert SCAN_READ in specs and SELECT_OP in specs
        assert STAGE_OVERHEAD in specs

    def test_predict_with_prior(self):
        model = CostModel()
        assert model.predict(SCAN_READ, [1.0, 1.0]) > 0.0

    def test_unknown_step_rejected(self):
        with pytest.raises(CostModelError):
            CostModel().predict("nope.step", [1.0])

    def test_observe_changes_prediction(self):
        model = CostModel()
        before = model.predict(SCAN_READ, [10.0, 1.0])
        model.observe(SCAN_READ, [10.0, 1.0], before * 0.1)
        after = model.predict(SCAN_READ, [10.0, 1.0])
        assert after < before

    def test_non_adaptive_freezes_coefficients(self):
        model = CostModel(adaptive=False)
        before = model.predict(SCAN_READ, [10.0, 1.0])
        model.observe(SCAN_READ, [10.0, 1.0], 0.0)
        assert model.predict(SCAN_READ, [10.0, 1.0]) == before
        assert model.observation_counts() == {SCAN_READ: 0}

    def test_observation_counts(self):
        model = CostModel()
        model.observe(SCAN_READ, [1.0, 1.0], 0.5)
        model.observe(SCAN_READ, [2.0, 1.0], 0.9)
        assert model.observation_counts()[SCAN_READ] == 2

    def test_coefficients_exposed(self):
        model = CostModel()
        coefs = model.coefficients(STAGE_OVERHEAD)
        assert len(coefs) == 1 and coefs[0] > 0


class TestPriorsAreMiscalibrated:
    """The designer priors must over-estimate the calibrated machine —
    that mismatch is what the adaptive claim is about."""

    def test_scan_prior_above_true_block_cost(self):
        from repro.timekeeping.profile import CostKind, MachineProfile

        prior = default_step_specs()[SCAN_READ].prior[0]
        true = MachineProfile.sun3_60().rate(CostKind.BLOCK_READ)
        assert prior > 1.5 * true
