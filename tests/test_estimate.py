"""Tests for Estimate and the normal quantile function."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.estimation.estimate import Estimate, normal_quantile


class TestNormalQuantile:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.95, 1.644854),
            (0.995, 2.575829),
            (0.025, -1.959964),
            (0.0001, -3.719016),
        ],
    )
    def test_known_values(self, p, expected):
        assert normal_quantile(p) == pytest.approx(expected, abs=1e-4)

    def test_bounds_rejected(self):
        with pytest.raises(EstimationError):
            normal_quantile(0.0)
        with pytest.raises(EstimationError):
            normal_quantile(1.0)

    @given(st.floats(0.001, 0.999))
    def test_property_antisymmetric(self, p):
        assert normal_quantile(p) == pytest.approx(-normal_quantile(1 - p), abs=1e-7)

    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    def test_property_monotone(self, p, q):
        if p < q:
            assert normal_quantile(p) <= normal_quantile(q)


class TestEstimate:
    def test_std_error(self):
        est = Estimate(value=10.0, variance=4.0)
        assert est.std_error == 2.0

    def test_confidence_interval_symmetric(self):
        est = Estimate(value=10.0, variance=4.0)
        lo, hi = est.confidence_interval(0.95)
        assert lo == pytest.approx(10 - 1.96 * 2, abs=0.01)
        assert hi == pytest.approx(10 + 1.96 * 2, abs=0.01)

    def test_wider_at_higher_confidence(self):
        est = Estimate(value=10.0, variance=4.0)
        lo95, hi95 = est.confidence_interval(0.95)
        lo99, hi99 = est.confidence_interval(0.99)
        assert lo99 < lo95 and hi99 > hi95

    def test_zero_variance_degenerate_interval(self):
        est = Estimate(value=5.0, variance=0.0)
        assert est.confidence_interval(0.9) == (5.0, 5.0)

    def test_invalid_level_rejected(self):
        est = Estimate(value=5.0, variance=1.0)
        with pytest.raises(EstimationError):
            est.confidence_interval(1.0)

    def test_negative_variance_rejected(self):
        with pytest.raises(EstimationError):
            Estimate(value=1.0, variance=-0.1)

    def test_relative_error_bound(self):
        est = Estimate(value=100.0, variance=25.0)
        assert est.relative_error_bound(0.95) == pytest.approx(
            1.96 * 5 / 100, abs=0.001
        )

    def test_relative_error_bound_at_zero_value(self):
        est = Estimate(value=0.0, variance=1.0)
        assert math.isinf(est.relative_error_bound())
