"""Tests for the time-constrained executor (Figure 3.1 semantics)."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.errors import TimeControlError
from repro.relational.evaluator import count_exact
from repro.relational.expression import join, rel, select
from repro.relational.predicate import cmp
from repro.timecontrol.executor import TimeConstrainedExecutor
from repro.timecontrol.stopping import ErrorConstrained, HardDeadline
from repro.timecontrol.strategies import (
    FixedFractionHeuristic,
    OneAtATimeInterval,
)
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


def calibrated_cost_model(rate: float) -> CostModel:
    """A cost model whose priors match a ``MachineProfile.uniform(rate)``
    machine (weakly held), so predictions are unbiased from stage 1 and the
    d_β = 0 configuration becomes the paper's ~50% coin flip."""
    from repro.costmodel.linear import StepSpec
    from repro.costmodel.steps import default_step_specs

    specs = {}
    for name, spec in default_step_specs().items():
        # Every feature of every step charges `rate` per unit on a uniform
        # machine; constants likewise.
        specs[name] = StepSpec(
            name,
            prior=tuple(rate for _ in spec.prior),
            scales=spec.scales,
            weight=0.05,
        )
    return CostModel(specs=specs)


@pytest.fixture
def catalog(int_schema):
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation(
            "r1", int_schema, [(i, i % 10) for i in range(200)], block_size=16
        ),
    )
    catalog.register(
        "r2",
        make_relation(
            "r2", int_schema, [(i, i % 10) for i in range(100, 300)], block_size=16
        ),
    )
    return catalog


def build_executor(
    catalog,
    expr,
    seed=0,
    noise=0.15,
    strategy=None,
    stopping=None,
    measure_overspend=True,
    profile=None,
    cost_model=None,
    **plan_kwargs,
):
    rng = np.random.default_rng(seed)
    profile = profile or MachineProfile.uniform(0.01, noise_sigma=noise)
    charger = CostCharger(profile, rng=rng)
    plan = StagedPlan(
        expr, catalog, charger, cost_model or CostModel(), rng, **plan_kwargs
    )
    return TimeConstrainedExecutor(
        plan,
        strategy or OneAtATimeInterval(d_beta=12.0),
        stopping=stopping,
        measure_overspend=measure_overspend,
    )


class TestBasicRun:
    def test_returns_estimate_within_quota(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        executor = build_executor(catalog, expr)
        report = executor.run(quota=2.0)
        assert report.estimate is not None
        assert report.stages_completed_in_time >= 1
        assert 0.0 <= report.utilization <= 1.0

    def test_quota_must_be_positive(self, catalog):
        executor = build_executor(catalog, rel("r1"))
        with pytest.raises(TimeControlError):
            executor.run(quota=0.0)

    def test_generous_quota_exhausts_and_is_exact(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        executor = build_executor(catalog, expr, noise=0.0)
        report = executor.run(quota=1e9)
        assert report.termination == "exhausted"
        assert report.estimate is not None and report.estimate.exact
        assert report.estimate.value == count_exact(expr, catalog)

    def test_stage_reports_are_consistent(self, catalog):
        executor = build_executor(catalog, select(rel("r1"), cmp("a", "<", 3)))
        report = executor.run(quota=2.0)
        for i, stage in enumerate(report.stages, start=1):
            assert stage.index == i
            assert stage.duration >= 0
            assert stage.fraction > 0
        assert report.blocks_within_quota <= report.total_blocks

    def test_seeded_runs_reproducible(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        a = build_executor(catalog, expr, seed=9).run(quota=2.0)
        b = build_executor(catalog, expr, seed=9).run(quota=2.0)
        assert a.estimate is not None and b.estimate is not None
        assert a.estimate.value == b.estimate.value
        assert len(a.stages) == len(b.stages)


class TestOverspendAccounting:
    def test_overspending_run_flagged(self, catalog):
        """Across many seeds at d_beta=0 some run must overspend, and its
        accounting must be coherent."""
        expr = select(rel("r1"), cmp("a", "<", 3))
        saw_overspend = False
        for seed in range(30):
            executor = build_executor(
                catalog,
                expr,
                seed=seed,
                noise=0.3,
                strategy=OneAtATimeInterval(d_beta=0.0),
                cost_model=calibrated_cost_model(0.01),
            )
            report = executor.run(quota=1.0)
            if report.overspent:
                saw_overspend = True
                assert report.overspend_seconds > 0
                assert report.termination in ("deadline",)
                last = report.stages[-1]
                assert not last.completed_in_time
                # The overspending stage is excluded from the "within
                # quota" aggregates.
                assert report.blocks_within_quota < report.total_blocks
        assert saw_overspend

    def test_utilization_excludes_overspent_stage(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        for seed in range(30):
            report = build_executor(
                catalog, expr, seed=seed, noise=0.3,
                strategy=OneAtATimeInterval(d_beta=0.0),
                cost_model=calibrated_cost_model(0.01),
            ).run(quota=1.0)
            if report.overspent:
                useful = sum(
                    s.duration for s in report.stages if s.completed_in_time
                )
                assert report.utilization == pytest.approx(
                    min(useful / 1.0, 1.0)
                )
                return
        pytest.skip("no overspending run found")


class TestHardInterrupt:
    def test_live_hard_mode_aborts_mid_stage(self, catalog):
        """With measure_overspend=False and a hard criterion, an
        overspending stage is killed by the timer interrupt and the previous
        estimate is returned."""
        expr = select(rel("r1"), cmp("a", "<", 3))
        saw_interrupt = False
        for seed in range(40):
            executor = build_executor(
                catalog,
                expr,
                seed=seed,
                noise=0.3,
                strategy=OneAtATimeInterval(d_beta=0.0),
                stopping=HardDeadline(),
                measure_overspend=False,
                cost_model=calibrated_cost_model(0.01),
            )
            report = executor.run(quota=1.0)
            if report.termination == "interrupted":
                saw_interrupt = True
                assert report.stages[-1].aborted_mid_stage
                # Clock may only be marginally past the deadline (the
                # in-flight charge completes, nothing more runs).
                clock = executor.plan.charger.clock.now()
                assert clock >= report.started_at + 1.0
        assert saw_interrupt

    def test_interrupted_first_stage_has_no_estimate(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        executor = build_executor(
            catalog,
            expr,
            noise=0.0,
            profile=MachineProfile.uniform(10.0, noise_sigma=0.0),
            stopping=HardDeadline(),
            measure_overspend=False,
        )
        report = executor.run(quota=15.0)  # stage 1 cannot finish
        if report.termination == "interrupted":
            assert report.estimate is None


class TestStoppingIntegration:
    def test_error_constrained_stops_early(self, catalog):
        expr = select(rel("r1"), cmp("a", "<", 3))
        executor = build_executor(
            catalog,
            expr,
            noise=0.0,
            stopping=ErrorConstrained(target_relative_halfwidth=0.8),
        )
        report = executor.run(quota=1e6)
        assert report.termination in ("stopping_criterion", "exhausted")
        if report.termination == "stopping_criterion":
            assert report.estimate.relative_error_bound(0.95) <= 0.8

    def test_max_stages_cap(self, catalog):
        executor = build_executor(catalog, rel("r1"), noise=0.0)
        executor.max_stages = 2
        report = executor.run(quota=1e9)
        assert len(report.stages) <= 2


class TestHeuristicStrategy:
    def test_heuristic_runs_to_completion(self, catalog):
        expr = join(rel("r1"), rel("r2"), on=["a"])
        executor = build_executor(
            catalog, expr, strategy=FixedFractionHeuristic(gamma=0.5)
        )
        report = executor.run(quota=3.0)
        assert report.estimate is not None
        assert report.stages_completed_in_time >= 1


class TestMultiTermQueries:
    def test_union_estimate_under_quota(self, catalog):
        from repro.relational.expression import union

        expr = union(rel("r1"), rel("r2"))
        executor = build_executor(catalog, expr, noise=0.0)
        report = executor.run(quota=1e9)
        assert report.termination == "exhausted"
        assert report.estimate.value == pytest.approx(
            count_exact(expr, catalog)
        )
