"""Tests for the workload generators and paper setups."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads.generators import (
    intersection_relations,
    join_relations,
    paper_schema,
    rows_chunked,
    selection_relation,
    uniform_relation,
    zipf_relation,
)
from repro.workloads.paper import (
    make_intersection_setup,
    make_join_setup,
    make_selection_setup,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestPaperSchema:
    def test_200_byte_tuples(self):
        assert paper_schema().tuple_size == 200

    def test_five_tuples_per_1k_block(self):
        assert paper_schema().blocking_factor(1024) == 5


class TestSelectionRelation:
    def test_exact_output_cardinality(self, rng):
        rows = selection_relation(rng, tuples=1_000, output_tuples=123)
        assert sum(1 for r in rows if r[1] < 123) == 123

    def test_a_is_permutation(self, rng):
        rows = selection_relation(rng, tuples=500, output_tuples=10)
        assert sorted(r[1] for r in rows) == list(range(500))

    def test_invalid_output_count_rejected(self, rng):
        with pytest.raises(ReproError):
            selection_relation(rng, tuples=10, output_tuples=11)


class TestIntersectionRelations:
    def test_full_overlap(self, rng):
        r1, r2 = intersection_relations(rng, tuples=300, common_tuples=300)
        assert set(r1) == set(r2)

    def test_partial_overlap_exact(self, rng):
        r1, r2 = intersection_relations(rng, tuples=300, common_tuples=120)
        assert len(set(r1) & set(r2)) == 120
        assert len(r1) == len(r2) == 300

    def test_shuffled_differently(self, rng):
        r1, r2 = intersection_relations(rng, tuples=300, common_tuples=300)
        assert r1 != r2  # same content, different block layout

    def test_invalid_common_rejected(self, rng):
        with pytest.raises(ReproError):
            intersection_relations(rng, tuples=10, common_tuples=11)


class TestJoinRelations:
    def test_exact_join_cardinality(self, rng):
        r1, r2, exact = join_relations(rng, tuples=700, fanout=7)
        from collections import Counter

        c1 = Counter(r[1] for r in r1)
        c2 = Counter(r[1] for r in r2)
        joined = sum(c1[v] * c2.get(v, 0) for v in c1)
        assert joined == exact == (700 // 7) * 49

    def test_paper_cardinality_near_70k(self, rng):
        _, _, exact = join_relations(rng, tuples=10_000, fanout=7)
        assert exact == 69_972

    def test_orphans_do_not_match(self, rng):
        r1, r2, exact = join_relations(rng, tuples=705, fanout=7)
        assert len(r1) == len(r2) == 705  # orphan tuples kept

    def test_invalid_fanout_rejected(self, rng):
        with pytest.raises(ReproError):
            join_relations(rng, tuples=10, fanout=0)


class TestOtherGenerators:
    def test_uniform_relation_ranges(self, rng):
        rows = uniform_relation(rng, tuples=200, a_range=10)
        assert len(rows) == 200
        assert all(0 <= r[1] < 10 for r in rows)

    def test_zipf_relation_skewed(self, rng):
        rows = zipf_relation(rng, tuples=2_000, a_range=100, skew=1.5)
        from collections import Counter

        counts = Counter(r[1] for r in rows)
        top = counts.most_common(1)[0][1]
        assert top > 2_000 / 100 * 3  # heavily skewed head

    def test_zipf_requires_skew_above_one(self, rng):
        with pytest.raises(ReproError):
            zipf_relation(rng, tuples=10, a_range=5, skew=1.0)

    def test_rows_chunked(self):
        chunks = list(rows_chunked([(i,) for i in range(5)], 2))
        assert [len(c) for c in chunks] == [2, 2, 1]


class TestPaperSetups:
    def test_selection_setup_exact_count(self):
        setup = make_selection_setup(output_tuples=1_000, tuples=2_000, seed=1)
        assert setup.database.count(setup.query) == setup.exact_count == 1_000

    def test_intersection_setup_exact_count(self):
        setup = make_intersection_setup(tuples=1_000, common_tuples=600, seed=1)
        assert setup.database.count(setup.query) == setup.exact_count == 600

    def test_join_setup_exact_count(self):
        setup = make_join_setup(tuples=1_400, fanout=7, seed=1)
        assert setup.database.count(setup.query) == setup.exact_count

    def test_join_setup_carries_initial_selectivity(self):
        setup = make_join_setup(tuples=700, seed=1)
        assert setup.initial_selectivities == {"join": 0.1}

    def test_describe(self):
        setup = make_selection_setup(output_tuples=100, tuples=1_000, seed=1)
        assert "COUNT" in setup.describe()
