"""Admission control and degraded answers (repro.server.admission/degrade).

The feasibility test is the paper's cost machinery pointed at a new
question: can the cheapest useful stage fit the budget this request will
have left at dispatch? These tests pin the pricing function, the three
policies, and the zero-sampling fallback built on prestored statistics.
"""

from __future__ import annotations

import pytest

from repro.errors import TimeControlError
from repro.estimation.aggregates import avg_of, sum_of
from repro.relational.expression import rel, select
from repro.relational.predicate import cmp
from repro.server.admission import (
    AdmissionAction,
    AdmitAll,
    DegradeInfeasible,
    FeasibilityReport,
    RejectInfeasible,
    minimum_stage_cost,
)
from repro.server.degrade import degraded_estimate
from repro.server.request import Outcome, QueryRequest
from repro.server.scheduler import QueryServer
from repro.server.workload import demo_database

TUPLES = 1_000


@pytest.fixture(scope="module")
def db():
    return demo_database(seed=11, tuples=TUPLES)


@pytest.fixture(scope="module")
def bare_db():
    """Same relations, never analyzed — no prestored statistics."""
    return demo_database(seed=11, tuples=TUPLES, analyze=False)


def query():
    return select(rel("r1"), cmp("a", "<", TUPLES // 2))


class TestMinimumStageCost:
    def test_positive_and_small_relative_to_a_generous_quota(self, db):
        probe = db.open_session(query(), quota=10.0, seed=0)
        cost = minimum_stage_cost(probe)
        assert cost > 0
        assert cost < 10.0

    def test_probe_pricing_charges_nothing(self, db):
        probe = db.open_session(query(), quota=10.0, seed=0)
        before = probe.context.charger.clock.now()
        minimum_stage_cost(probe)
        assert probe.context.charger.clock.now() == before

    def test_price_reflects_query_shape(self, bare_db):
        from repro.relational.expression import intersect

        sel = minimum_stage_cost(bare_db.open_session(query(), quota=10.0, seed=0))
        both = minimum_stage_cost(
            bare_db.open_session(
                intersect(rel("r1"), rel("r2")), quota=10.0, seed=0
            )
        )
        assert both > sel  # two relations' minimum stage costs more than one


class TestFeasibilityReport:
    def test_budget_at_start_subtracts_projected_wait(self):
        report = FeasibilityReport(
            min_stage_cost=0.2, projected_wait=1.5, budget_now=2.0
        )
        assert report.budget_at_start == pytest.approx(0.5)

    def test_feasible_applies_safety_margin(self):
        report = FeasibilityReport(
            min_stage_cost=0.4, projected_wait=0.0, budget_now=0.5
        )
        assert report.feasible(safety_margin=1.0)
        assert not report.feasible(safety_margin=1.5)


class TestPolicies:
    def feasible_report(self):
        return FeasibilityReport(
            min_stage_cost=0.1, projected_wait=0.0, budget_now=2.0
        )

    def infeasible_report(self):
        return FeasibilityReport(
            min_stage_cost=1.0, projected_wait=1.8, budget_now=2.0
        )

    def request(self):
        return QueryRequest(expr=query(), quota=2.0)

    def test_reject_infeasible(self):
        policy = RejectInfeasible(safety_margin=1.5)
        assert (
            policy.decide(self.request(), self.feasible_report()).action
            is AdmissionAction.ADMIT
        )
        verdict = policy.decide(self.request(), self.infeasible_report())
        assert verdict.action is AdmissionAction.REJECT
        assert "infeasible" in verdict.reason

    def test_degrade_infeasible(self):
        policy = DegradeInfeasible()
        assert (
            policy.decide(self.request(), self.feasible_report()).action
            is AdmissionAction.ADMIT
        )
        verdict = policy.decide(self.request(), self.infeasible_report())
        assert verdict.action is AdmissionAction.DEGRADE
        assert "without sampling" in verdict.reason

    def test_admit_all_never_enforces(self):
        policy = AdmitAll()
        assert not policy.enforce_at_dispatch
        verdict = policy.decide(self.request(), self.infeasible_report())
        assert verdict.action is AdmissionAction.ADMIT

    def test_describe_names_the_margin(self):
        assert "1.5" in RejectInfeasible().describe()
        assert "AdmitAll" in AdmitAll().describe()


class TestDegradedEstimate:
    def test_count_from_prestored_hints(self, db):
        estimate = degraded_estimate(db, query())
        assert estimate is not None
        assert estimate.value > 0
        # The CI is deliberately wide: sized for ±100% at 95% confidence.
        assert estimate.relative_error_bound(0.95) == pytest.approx(1.0)

    def test_sum_and_avg_use_histogram_mean(self, db):
        total = degraded_estimate(db, rel("r1"), aggregate=sum_of("b"))
        mean = degraded_estimate(db, rel("r1"), aggregate=avg_of("b"))
        assert total is not None and mean is not None
        assert total.value == pytest.approx(mean.value * TUPLES, rel=1e-9)

    def test_unanalyzed_database_yields_none(self, bare_db):
        assert degraded_estimate(bare_db, query()) is None

    def test_narrower_halfwidth_respected(self, db):
        estimate = degraded_estimate(db, query(), relative_halfwidth=0.5)
        assert estimate.relative_error_bound(0.95) == pytest.approx(0.5)


class TestDegradePathThroughServer:
    def test_infeasible_request_degrades_on_analyzed_database(self, db):
        server = QueryServer(db, policy=DegradeInfeasible())
        outcome = server.serve(
            QueryRequest(expr=query(), quota=1e-4, seed=1)
        )
        assert outcome.outcome is Outcome.DEGRADED
        assert outcome.estimate is not None
        assert outcome.queue_wait == 0.0
        # Degraded answers are instant: no simulated time was consumed.
        assert server.clock.now() == 0.0

    def test_degrade_without_coverage_is_uncovered_not_rejected(self, bare_db):
        server = QueryServer(bare_db, policy=DegradeInfeasible())
        outcome = server.serve(
            QueryRequest(expr=query(), quota=1e-4, seed=1)
        )
        # A degrade decision with nothing to answer from is a coverage
        # gap — its own terminal state, distinct from admission rejection.
        assert outcome.outcome is Outcome.UNCOVERED
        assert not outcome.answered
        assert outcome.estimate is None
        assert "analyze" in outcome.reason
        assert server.metrics.count(Outcome.UNCOVERED) == 1
        assert server.metrics.count(Outcome.REJECTED) == 0


class TestQueryRequest:
    def test_validation(self):
        with pytest.raises(TimeControlError):
            QueryRequest(expr=query(), quota=0.0)
        with pytest.raises(TimeControlError):
            QueryRequest(expr=query(), quota=1.0, arrival=-1.0)

    def test_deadline_and_ids(self):
        first = QueryRequest(expr=query(), quota=2.0, arrival=3.0)
        second = QueryRequest(expr=query(), quota=2.0)
        assert first.deadline == pytest.approx(5.0)
        assert first.request_id != second.request_id
        assert first.request_id.startswith("client/")

    def test_explicit_request_id_is_kept(self):
        request = QueryRequest(expr=query(), quota=1.0, request_id="mine/1")
        assert request.request_id == "mine/1"


class TestProjectedWaitAccumulates:
    """Queue wait must be projected in dispatch order, pricing each
    ticket's spend at the clock position its turn starts — the same
    arithmetic overload shedding uses. (Regression: every spend was
    priced at a fixed ``now``, over-estimating wait and over-rejecting.)
    """

    def ticket(self, deadline, seq, quota, seed):
        from repro.server.scheduler import _Ticket

        return _Ticket(
            priority=0,
            deadline=deadline,
            seq=seq,
            request=QueryRequest(expr=query(), quota=quota, seed=seed),
            arrival=0.0,
            min_cost=0.1,
        )

    def test_two_queued_tickets_price_at_their_turns(self, db):
        server = QueryServer(db)
        # Both tickets' quotas exceed their remaining budgets, so each
        # runs to its own deadline: t1 occupies 0→2, after which t2 has
        # only 1s left to 3.0. True wait for work behind them: 3.0.
        t1 = self.ticket(deadline=2.0, seq=0, quota=5.0, seed=1)
        t2 = self.ticket(deadline=3.0, seq=1, quota=5.0, seed=2)
        arriving = QueryRequest(expr=query(), quota=3.5, seed=3)
        wait = server._projected_wait(arriving, 3.5, [t1, t2], now=0.0)
        assert wait == pytest.approx(3.0)
        # The pre-fix formula summed both spends at now=0 — 2s + 3s = 5s
        # of phantom wait, 2s of which t2 can never actually use.
        stale = sum(t.planned_spend(0.0) for t in (t1, t2))
        assert stale == pytest.approx(5.0)

    def test_corrected_projection_admits_where_stale_rejected(self, db):
        server = QueryServer(db)
        t1 = self.ticket(deadline=2.0, seq=0, quota=5.0, seed=1)
        t2 = self.ticket(deadline=3.0, seq=1, quota=5.0, seed=2)
        arriving = QueryRequest(expr=query(), quota=3.5, seed=3)
        wait = server._projected_wait(arriving, 3.5, [t1, t2], now=0.0)
        stale = sum(t.planned_spend(0.0) for t in (t1, t2))
        policy = RejectInfeasible()
        min_cost = 0.2  # far below the 0.5s budget the request keeps
        corrected = FeasibilityReport(
            min_stage_cost=min_cost, projected_wait=wait, budget_now=3.5
        )
        regressed = FeasibilityReport(
            min_stage_cost=min_cost, projected_wait=stale, budget_now=3.5
        )
        assert (
            policy.decide(arriving, corrected).action
            is AdmissionAction.ADMIT
        )
        assert (
            policy.decide(arriving, regressed).action
            is AdmissionAction.REJECT
        )

    def test_projection_includes_a_non_preemptable_runner(self, db):
        # At a preemption checkpoint the mid-flight ticket precedes any
        # arrival that cannot preempt it (no strictly-earlier key)...
        server = QueryServer(db)
        running = self.ticket(deadline=2.0, seq=0, quota=5.0, seed=1)
        arriving = QueryRequest(expr=query(), quota=3.5, seed=2)
        wait = server._projected_wait(
            arriving, 3.5, [], now=0.0, running=running
        )
        assert wait == pytest.approx(2.0)

    def test_projection_excludes_a_preemptable_runner(self, db):
        # ...while an arrival whose key would preempt the runner does not
        # wait for it at all.
        server = QueryServer(db)
        running = self.ticket(deadline=9.0, seq=0, quota=5.0, seed=1)
        arriving = QueryRequest(expr=query(), quota=3.5, seed=2)
        wait = server._projected_wait(
            arriving, 3.5, [], now=0.0, running=running
        )
        assert wait == pytest.approx(0.0)
