"""Unit tests of the buffer pool (system S1's buffer manager).

Covers the pool in isolation — hit/miss accounting, LRU order, capacity
and eviction, pinning via live :class:`PooledBatch` objects, decode-once
column sharing, explicit invalidation, event emission and JSONL round-trip,
and the unified ``*_cache_info()`` / ``clear_*_cache()`` surface shared
with the planner and kernel caches. Engine-level identity contracts live
in ``test_bufferpool_identity.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import caches
from repro.kernels import KernelCacheInfo
from repro.kernels.columns import ColumnBatch
from repro.observability import RecordingSink
from repro.observability.trace import event_from_dict
from repro.storage.bufferpool import (
    BufferPool,
    BufferPoolInfo,
    PooledBatch,
    default_pool,
    invalidate_bufferpool_relation,
)
from repro.storage.events import BufferEvicted, BufferHit, BufferInvalidated
from tests.conftest import make_relation


@pytest.fixture
def heap(int_schema):
    """25 rows over 5-row blocks → 5 blocks."""
    return make_relation(
        "r1", int_schema, [(i, i % 10) for i in range(25)], block_size=40
    )


def read(pool, heap, block_ids, charger):
    return heap.read_blocks(block_ids, charger, pool=pool)


class TestLookupAndLRU:
    def test_miss_then_hit(self, heap, free_charger):
        pool = BufferPool(capacity=8)
        rows_cold = read(pool, heap, [0, 1], free_charger)
        rows_warm = read(pool, heap, [0, 1], free_charger)
        assert rows_cold == rows_warm == heap.block_rows_uncharged(0) + (
            heap.block_rows_uncharged(1)
        )
        info = pool.info()
        assert (info.hits, info.misses, info.currsize) == (2, 2, 2)

    def test_every_block_charged_even_on_hit(self, heap, unit_charger):
        pool = BufferPool(capacity=8)
        read(pool, heap, [0, 1, 0], unit_charger)
        cold = unit_charger.clock.now()
        read(pool, heap, [0, 1, 0], unit_charger)
        assert unit_charger.clock.now() == pytest.approx(2 * cold)

    def test_lru_evicts_least_recently_used(self, heap, free_charger):
        pool = BufferPool(capacity=2)
        read(pool, heap, [0], free_charger)
        read(pool, heap, [1], free_charger)
        read(pool, heap, [0], free_charger)  # refresh 0; 1 is now LRU
        read(pool, heap, [2], free_charger)  # evicts 1
        info = pool.info()
        assert info.evictions == 1
        assert pool.info().currsize == 2
        before = pool.info().hits
        read(pool, heap, [0], free_charger)
        assert pool.info().hits == before + 1  # 0 survived
        read(pool, heap, [1], free_charger)
        assert pool.info().misses == 4  # 1 did not

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=0)

    def test_same_name_different_heap_never_aliases(self, int_schema, free_charger):
        other = make_relation("r1", int_schema, [(i, 99) for i in range(25)])
        heap = make_relation("r1", int_schema, [(i, i % 10) for i in range(25)])
        pool = BufferPool(capacity=8)
        read(pool, heap, [0], free_charger)
        rows = read(pool, other, [0], free_charger)
        assert rows == other.block_rows_uncharged(0)
        assert pool.info().hits == 0 and pool.info().misses == 2


class TestDecodeOnceAndPinning:
    def test_pooled_batch_columns_match_plain_decode(self, heap, free_charger):
        pool = BufferPool(capacity=8)
        rows, batch = heap.read_blocks_decoded(
            [0, 2, 4], free_charger, pool=pool
        )
        assert isinstance(batch, PooledBatch)
        assert batch.rows is rows
        plain = ColumnBatch(rows, heap.schema)
        for position in range(len(heap.schema.attributes)):
            np.testing.assert_array_equal(
                batch.column(position), plain.column(position)
            )

    def test_decoded_arrays_shared_across_batches(self, heap, free_charger):
        pool = BufferPool(capacity=8)
        _, first = heap.read_blocks_decoded([0], free_charger, pool=pool)
        _, second = heap.read_blocks_decoded([0], free_charger, pool=pool)
        assert first.column(1) is second.column(1)  # one decode, pool-wide

    def test_live_batch_pins_entries_against_eviction(self, heap, free_charger):
        pool = BufferPool(capacity=2)
        _, batch = heap.read_blocks_decoded([0, 1], free_charger, pool=pool)
        assert pool.info().pinned == 2
        read(pool, heap, [2, 3, 4], free_charger)
        # Pinned entries survive even though capacity is exceeded.
        info = pool.info()
        assert info.currsize >= 2
        assert batch.column(0) is not None  # still usable
        del batch
        import gc

        gc.collect()
        assert pool.info().pinned == 0
        read(pool, heap, [2], free_charger)  # next admit can evict freely
        assert pool.info().currsize <= 2 + 1

    def test_empty_read_produces_empty_batch(self, heap, free_charger):
        pool = BufferPool(capacity=8)
        rows, batch = heap.read_blocks_decoded([], free_charger, pool=pool)
        assert rows == [] and len(batch) == 0
        assert batch.column(0).shape == (0,)


class TestInvalidation:
    def test_invalidate_relation_drops_only_that_relation(
        self, int_schema, free_charger
    ):
        r1 = make_relation("r1", int_schema, [(i, 0) for i in range(25)])
        r2 = make_relation("r2", int_schema, [(i, 0) for i in range(25)])
        pool = BufferPool(capacity=16)
        read(pool, r1, [0, 1], free_charger)
        read(pool, r2, [0, 1], free_charger)
        assert pool.invalidate_relation("r1") == 2
        info = pool.info()
        assert info.currsize == 2 and info.invalidations == 2
        assert pool.invalidate_relation("r1") == 0

    def test_broadcast_reaches_every_live_pool(self, heap, free_charger):
        caches.get("bufferpool").clear()
        custom = BufferPool(capacity=8)
        read(custom, heap, [0], free_charger)
        read(default_pool(), heap, [1], free_charger)
        assert invalidate_bufferpool_relation("r1") == 2
        assert custom.info().currsize == 0
        assert default_pool().info().currsize == 0

    def test_clear_resets_counters(self, heap, free_charger):
        pool = BufferPool(capacity=8)
        read(pool, heap, [0, 0], free_charger)
        pool.clear()
        assert pool.info() == BufferPoolInfo(
            hits=0, misses=0, maxsize=8, currsize=0,
            evictions=0, invalidations=0, pinned=0,
        )


class TestEvents:
    def test_hit_miss_eviction_invalidation_events(self, heap, free_charger):
        sink = RecordingSink()
        pool = BufferPool(capacity=2, sink=sink)
        read(pool, heap, [0, 1], free_charger)
        read(pool, heap, [0, 2], free_charger)  # hit 0, admit 2, evict 1
        pool.invalidate_relation("r1")
        hits = sink.of_kind("buffer_hit")
        assert [(e.blocks, e.hits, e.misses) for e in hits] == [
            (2, 0, 2),
            (2, 1, 1),
        ]
        assert [e.block_id for e in sink.of_kind("buffer_evicted")] == [1]
        (invalidated,) = sink.of_kind("buffer_invalidated")
        assert invalidated.relation == "r1" and invalidated.entries == 2

    def test_events_round_trip_through_jsonl(self):
        events = [
            BufferHit(relation="r1", blocks=4, hits=3, misses=1),
            BufferEvicted(relation="r1", block_id=7),
            BufferInvalidated(relation="r1", entries=12),
        ]
        for event in events:
            payload = json.loads(json.dumps(event.to_dict()))
            assert event_from_dict(payload) == event

    def test_raising_sink_never_breaks_the_read(self, heap, free_charger):
        class ClosedSink:
            def emit(self, event):
                raise ValueError("I/O operation on closed file")

        pool = BufferPool(capacity=2, sink=ClosedSink())
        rows = read(pool, heap, [0, 1, 2], free_charger)  # miss + evict paths
        assert len(rows) == 15
        assert pool.invalidate_relation("r1") >= 1  # invalidate path too

    def test_route_events_is_scoped(self, heap, free_charger):
        ours = RecordingSink()
        pool = BufferPool(capacity=8)
        with pool.route_events(ours):
            read(pool, heap, [0], free_charger)
        read(pool, heap, [0], free_charger)  # outside the scope
        assert len(ours.of_kind("buffer_hit")) == 1


class TestUnifiedCacheSurface:
    def test_bufferpool_cache_info_tracks_default_pool(self, heap, free_charger):
        caches.get("bufferpool").clear()
        read(default_pool(), heap, [0, 0], free_charger)
        info = caches.get("bufferpool").info()
        assert isinstance(info, BufferPoolInfo)
        assert (info.hits, info.misses) == (1, 1)
        caches.get("bufferpool").clear()
        assert caches.get("bufferpool").info().currsize == 0

    def test_kernel_cache_info_counts_compiles(self):
        from repro.catalog.schema import Schema
        from repro.catalog.types import AttributeType
        from repro.kernels.cache import compiled_predicate
        from repro.relational.predicate import cmp

        caches.get("kernels").clear()
        schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
        first = compiled_predicate(cmp("a", "<", 5), schema)
        again = compiled_predicate(cmp("a", "<", 5), schema)
        assert again is first
        info = caches.get("kernels").info()
        assert isinstance(info, KernelCacheInfo)
        assert info.hits >= 1 and info.misses >= 1 and info.currsize >= 1
        caches.get("kernels").clear()
        assert caches.get("kernels").info().currsize == 0

    def test_all_three_caches_exported_from_package_root(self):
        import repro

        for name in (
            "plan_cache_info",
            "clear_plan_cache",
            "kernel_cache_info",
            "clear_kernel_cache",
            "bufferpool_cache_info",
            "clear_bufferpool_cache",
            "BufferPool",
            "BufferPoolInfo",
            "KernelCacheInfo",
            "PooledBatch",
            "default_pool",
            "invalidate_bufferpool_relation",
            "BufferHit",
            "BufferEvicted",
            "BufferInvalidated",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name
