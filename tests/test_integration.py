"""Integration tests: the paper's end-to-end claims on scaled-down workloads.

These run the whole stack — workload generation, staged sampling, run-time
selectivity estimation, adaptive cost formulas, time control — and check the
*statistical* behaviours the paper reports, with run counts small enough for
CI (the benchmarks run the full-size versions).
"""

import numpy as np
import pytest

from repro.timecontrol.stopping import ErrorConstrained
from repro.timecontrol.strategies import (
    FixedFractionHeuristic,
    OneAtATimeInterval,
    SingleInterval,
)
from repro.workloads.paper import (
    make_intersection_setup,
    make_join_setup,
    make_selection_setup,
)


def batch(setup, strategy_factory, runs=25, quota=None, **kwargs):
    kwargs.setdefault("initial_selectivities", setup.initial_selectivities)
    results = []
    for i in range(runs):
        results.append(
            setup.database.estimate(
                setup.query,
                quota=quota or setup.quota,
                strategy=strategy_factory(),
                seed=5000 + i,
                **kwargs,
            )
        )
    return results


@pytest.fixture(scope="module")
def selection_setup():
    return make_selection_setup(output_tuples=1_000, seed=3)


class TestRiskControl:
    def test_risk_decreases_with_d_beta(self, selection_setup):
        """The headline claim of Figure 5.1: larger d_β, lower risk."""
        risk = {}
        for d_beta in (0.0, 48.0):
            results = batch(
                selection_setup, lambda d=d_beta: OneAtATimeInterval(d_beta=d)
            )
            risk[d_beta] = sum(r.overspent for r in results) / len(results)
        assert risk[48.0] < risk[0.0]
        assert risk[0.0] > 0.2  # d_β = 0 gambles roughly even odds

    def test_stages_increase_with_d_beta(self, selection_setup):
        stages = {}
        for d_beta in (0.0, 48.0):
            results = batch(
                selection_setup, lambda d=d_beta: OneAtATimeInterval(d_beta=d)
            )
            stages[d_beta] = sum(r.stages for r in results) / len(results)
        assert stages[48.0] > stages[0.0]

    def test_overspend_is_small_when_it_happens(self, selection_setup):
        """Adaptive formulas keep ovsp well under the quota (paper: ~0.1 s
        of a 10 s quota)."""
        results = batch(selection_setup, lambda: OneAtATimeInterval(d_beta=0.0))
        overspends = [r.overspend_seconds for r in results if r.overspent]
        assert overspends, "expected some overspending at d_beta=0"
        assert np.mean(overspends) < 0.10 * selection_setup.quota
        assert max(overspends) < 0.25 * selection_setup.quota


class TestEstimateQuality:
    def test_selection_estimate_close(self, selection_setup):
        results = batch(selection_setup, lambda: OneAtATimeInterval(d_beta=24.0))
        errors = [
            r.relative_error(selection_setup.exact_count)
            for r in results
            if r.estimate is not None
        ]
        assert np.mean(errors) < 0.25

    def test_join_estimate_close(self):
        setup = make_join_setup(seed=3)
        results = batch(setup, lambda: OneAtATimeInterval(d_beta=24.0), runs=15)
        errors = [
            r.relative_error(setup.exact_count)
            for r in results
            if r.estimate is not None
        ]
        assert np.mean(errors) < 0.4

    def test_larger_quota_gives_smaller_error(self):
        setup = make_selection_setup(output_tuples=1_000, seed=4)
        mean_error = {}
        for quota in (2.0, 20.0):
            results = batch(
                setup, lambda: OneAtATimeInterval(d_beta=24.0),
                runs=20, quota=quota,
            )
            errs = [
                r.relative_error(setup.exact_count)
                for r in results
                if r.estimate is not None
            ]
            mean_error[quota] = np.mean(errs)
        assert mean_error[20.0] < mean_error[2.0]

    def test_ci_covers_truth_reasonably_often(self, selection_setup):
        results = batch(selection_setup, lambda: OneAtATimeInterval(d_beta=24.0))
        covered = 0
        usable = 0
        for r in results:
            if r.estimate is None:
                continue
            usable += 1
            lo, hi = r.confidence_interval(0.95)
            covered += lo <= selection_setup.exact_count <= hi
        # The SRS variance approximation plus cluster sampling undercovers a
        # little; require a sane floor rather than nominal 95%.
        assert covered / usable > 0.6


class TestStrategiesEndToEnd:
    def test_single_interval_controls_risk(self):
        setup = make_selection_setup(output_tuples=1_000, seed=5)
        risky = batch(setup, lambda: SingleInterval(d_alpha=0.0), runs=15)
        safe = batch(setup, lambda: SingleInterval(d_alpha=4.0), runs=15)
        risk_risky = sum(r.overspent for r in risky)
        risk_safe = sum(r.overspent for r in safe)
        assert risk_safe <= risk_risky

    def test_heuristic_is_usable_but_less_efficient(self):
        setup = make_selection_setup(output_tuples=1_000, seed=6)
        stat = batch(setup, lambda: OneAtATimeInterval(d_beta=24.0), runs=10)
        heur = batch(setup, lambda: FixedFractionHeuristic(gamma=0.5), runs=10)
        assert all(r.estimate is not None for r in heur)
        blocks_stat = np.mean([r.blocks for r in stat])
        blocks_heur = np.mean([r.blocks for r in heur])
        # γ=0.5 halves each stage: it cannot beat the statistical strategy
        # on evaluated sample size.
        assert blocks_heur < blocks_stat


class TestIntersectionPhenomena:
    def test_termination_for_lack_of_time_at_high_d_beta(self):
        """Section 5.B: at large d_β the time left is not enough for a
        further full-fulfillment stage."""
        setup = make_intersection_setup(seed=3)
        results = batch(setup, lambda: OneAtATimeInterval(d_beta=72.0), runs=10)
        assert all(not r.overspent for r in results)
        mean_stages = np.mean([r.stages for r in results])
        assert mean_stages < 2.5

    def test_partial_fulfillment_uses_leftover_time(self):
        """Section 5.B's remark: the partial plan 'may have its place here
        to use the small amount of time left' — cheaper stages mean it can
        keep going when full fulfillment stops."""
        setup = make_intersection_setup(seed=3)
        full = batch(
            setup, lambda: OneAtATimeInterval(d_beta=72.0), runs=10,
            full_fulfillment=True,
        )
        partial = batch(
            setup, lambda: OneAtATimeInterval(d_beta=72.0), runs=10,
            full_fulfillment=False,
        )
        assert np.mean([r.stages for r in partial]) >= np.mean(
            [r.stages for r in full]
        )


class TestErrorConstrainedEndToEnd:
    def test_stops_once_precise_enough(self):
        setup = make_selection_setup(output_tuples=5_000, seed=7)
        result = setup.database.estimate(
            setup.query,
            quota=60.0,
            strategy=OneAtATimeInterval(d_beta=24.0),
            stopping=ErrorConstrained(target_relative_halfwidth=0.25),
            seed=11,
        )
        assert result.termination in ("stopping_criterion", "exhausted")
        assert result.estimate.relative_error_bound(0.95) <= 0.25
