"""The process-wide logical-plan cache: keying, hits, bypass, eviction."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro import caches
from repro.planner import plan_logical
from repro.planner.cache import PLAN_CACHE_MAXSIZE, cache_key
from repro.relational.expression import intersect, join, rel, select
from repro.relational.predicate import And, cmp
from tests.conftest import make_relation


@pytest.fixture(autouse=True)
def fresh_cache():
    caches.get("plans").clear()
    yield
    caches.get("plans").clear()


def build_catalog(r1_rows: int = 40) -> Catalog:
    schema = Schema.of(id=AttributeType.INT, a=AttributeType.INT)
    catalog = Catalog()
    catalog.register(
        "r1",
        make_relation("r1", schema, [(i, i % 7) for i in range(r1_rows)], 16),
    )
    catalog.register(
        "r2",
        make_relation("r2", schema, [(i, i % 5) for i in range(30)], 16),
    )
    return catalog


def pushable():
    return select(join(rel("r1"), rel("r2"), on=["id"]), cmp("a", "<", 4))


def test_repeat_planning_hits_and_returns_equal_outcome():
    catalog = build_catalog()
    first = plan_logical(pushable(), catalog)
    second = plan_logical(pushable(), catalog)
    assert not first.cache_hit and second.cache_hit
    assert second.expression == first.expression
    assert second.applications == first.applications
    info = caches.get("plans").info()
    assert info.hits == 1 and info.misses == 1 and info.currsize == 1


def test_canonically_equal_queries_share_one_entry():
    catalog = build_catalog()
    a = intersect(rel("r1"), rel("r2"))
    b = intersect(rel("r2"), rel("r1"))  # commuted operands, same identity
    assert cache_key(a, catalog) == cache_key(b, catalog)
    # Equal And operand order, same identity too.
    p = select(rel("r1"), And((cmp("a", "<", 4), cmp("id", ">", 2))))
    q = select(rel("r1"), And((cmp("id", ">", 2), cmp("a", "<", 4))))
    assert cache_key(p, catalog) == cache_key(q, catalog)
    plan_logical(a, catalog)
    assert plan_logical(b, catalog).cache_hit


def test_key_fingerprints_base_relation_sizes():
    small = build_catalog(r1_rows=40)
    grown = build_catalog(r1_rows=80)
    assert cache_key(pushable(), small) != cache_key(pushable(), grown)
    plan_logical(pushable(), small)
    # Same query text over different data must plan fresh.
    assert not plan_logical(pushable(), grown).cache_hit


def test_hint_provider_bypasses_cache():
    catalog = build_catalog()

    def hint(expr):
        return 0.5

    first = plan_logical(pushable(), catalog, hint=hint)
    second = plan_logical(pushable(), catalog, hint=hint)
    assert not first.cache_hit and not second.cache_hit
    info = caches.get("plans").info()
    assert info.currsize == 0 and info.hits == 0 and info.misses == 0


def test_clear_resets_entries_and_counters():
    catalog = build_catalog()
    plan_logical(pushable(), catalog)
    plan_logical(pushable(), catalog)
    caches.get("plans").clear()
    info = caches.get("plans").info()
    assert info.hits == 0 and info.misses == 0 and info.currsize == 0
    assert not plan_logical(pushable(), catalog).cache_hit


def test_lru_eviction_bounds_size():
    catalog = build_catalog()
    for i in range(PLAN_CACHE_MAXSIZE + 10):
        plan_logical(select(rel("r1"), cmp("a", "<", i)), catalog)
    info = caches.get("plans").info()
    assert info.currsize == PLAN_CACHE_MAXSIZE
    # The oldest entry was evicted: replanning it misses.
    assert not plan_logical(
        select(rel("r1"), cmp("a", "<", 0)), catalog
    ).cache_hit
    # The newest survives.
    assert plan_logical(
        select(rel("r1"), cmp("a", "<", PLAN_CACHE_MAXSIZE + 9)), catalog
    ).cache_hit


def test_session_plans_report_cache_hits(monkeypatch):
    from repro.core.database import Database

    monkeypatch.setenv("REPRO_OPTIMIZE", "1")  # robust to planner-off CI legs
    db = Database(seed=1)
    db.create_relation(
        "r1", [("id", "int"), ("a", "int")],
        rows=[(i, i % 7) for i in range(60)],
    )
    db.create_relation(
        "r2", [("id", "int"), ("a", "int")],
        rows=[(i, i % 5) for i in range(60)],
    )
    s1 = db.open_session(pushable(), quota=5.0, seed=0)
    s2 = db.open_session(pushable(), quota=5.0, seed=1)
    assert not s1.plan.plan_cache_hit and s2.plan.plan_cache_hit
    assert s2.plan.optimized_expr == s1.plan.optimized_expr
    # Cached or fresh, runs are replayable: same seed → same outcome.
    r1 = db.open_session(pushable(), quota=5.0, seed=7).run()
    r2 = db.open_session(pushable(), quota=5.0, seed=7).run()
    assert r1.estimate == r2.estimate
    assert len(r1.report.stages) == len(r2.report.stages)
