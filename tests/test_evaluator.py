"""Tests for the exact evaluator against set-semantics references."""

import pytest

from repro.relational.evaluator import ExactEvaluator, count_exact, rows_exact
from repro.relational.expression import (
    difference,
    intersect,
    join,
    project,
    rel,
    select,
    union,
)
from repro.relational.predicate import cmp
from repro.timekeeping.profile import CostKind


@pytest.fixture
def r1_rows(small_catalog):
    return set(small_catalog.get("r1").all_rows())


@pytest.fixture
def r2_rows(small_catalog):
    return set(small_catalog.get("r2").all_rows())


class TestLeafAndSelect:
    def test_scan_returns_all_rows(self, small_catalog, r1_rows):
        assert set(rows_exact(rel("r1"), small_catalog)) == r1_rows

    def test_select_matches_comprehension(self, small_catalog, r1_rows):
        out = rows_exact(select(rel("r1"), cmp("a", "<", 3)), small_catalog)
        assert set(out) == {r for r in r1_rows if r[1] < 3}

    def test_select_composes(self, small_catalog, r1_rows):
        e = select(select(rel("r1"), cmp("a", "<", 5)), cmp("a", ">", 2))
        assert set(rows_exact(e, small_catalog)) == {
            r for r in r1_rows if 2 < r[1] < 5
        }


class TestJoin:
    def test_join_matches_nested_loop(self, small_catalog, r1_rows, r2_rows):
        out = rows_exact(join(rel("r1"), rel("r2"), on=["a"]), small_catalog)
        expected = {l + r for l in r1_rows for r in r2_rows if l[1] == r[1]}
        assert set(out) == expected

    def test_join_count(self, small_catalog):
        # 100 tuples each, a = i%10 → 10 values × 10 × 10 matches.
        assert count_exact(join(rel("r1"), rel("r2"), on=["a"]), small_catalog) == 1000


class TestSetOps:
    def test_intersection(self, small_catalog, r1_rows, r2_rows):
        out = rows_exact(intersect(rel("r1"), rel("r2")), small_catalog)
        assert set(out) == r1_rows & r2_rows

    def test_union(self, small_catalog, r1_rows, r2_rows):
        out = rows_exact(union(rel("r1"), rel("r2")), small_catalog)
        assert set(out) == r1_rows | r2_rows

    def test_difference(self, small_catalog, r1_rows, r2_rows):
        out = rows_exact(difference(rel("r1"), rel("r2")), small_catalog)
        assert set(out) == r1_rows - r2_rows


class TestProject:
    def test_project_deduplicates(self, small_catalog):
        out = rows_exact(project(rel("r1"), ["a"]), small_catalog)
        assert sorted(out) == [(v,) for v in range(10)]

    def test_project_over_join(self, small_catalog):
        e = project(join(rel("r1"), rel("r2"), on=["a"]), ["a"])
        assert count_exact(e, small_catalog) == 10


class TestCharging:
    def test_scan_charges_block_reads(self, small_catalog, unit_charger):
        ExactEvaluator(small_catalog, unit_charger).count(rel("r1"))
        assert (
            unit_charger.counts[CostKind.BLOCK_READ]
            == small_catalog.get("r1").block_count
        )

    def test_join_charges_sort_and_merge(self, small_catalog, unit_charger):
        ExactEvaluator(small_catalog, unit_charger).count(
            join(rel("r1"), rel("r2"), on=["a"])
        )
        assert unit_charger.counts[CostKind.TEMP_WRITE] == 200
        assert unit_charger.counts[CostKind.SORT_TUPLE] == 200
        assert unit_charger.counts[CostKind.MERGE_TUPLE] == 200
        assert unit_charger.counts[CostKind.OUTPUT_TUPLE] == 1000

    def test_count_exact_is_free(self, small_catalog):
        # count_exact uses a zero-rate profile — verify it cannot
        # accidentally cost anything by comparing against a unit charger.
        assert count_exact(rel("r1"), small_catalog) == 100


class TestValidation:
    def test_invalid_expression_rejected_before_work(
        self, small_catalog, unit_charger
    ):
        e = select(rel("r1"), cmp("ghost", "<", 1))
        with pytest.raises(Exception):
            ExactEvaluator(small_catalog, unit_charger).count(e)
        # Validation happens before any charged work.
        assert unit_charger.total_charged() == 0.0
