"""Bit-identity pins for the buffer pool (invariant 9).

The pool is a wall-clock optimization and nothing else: charged simulated
costs, estimates, stage schedules, and per-session trace streams must be
bit-identical with the pool on or off, cold or warm, interleaved or
serial, faulted or not. These tests pin that contract over both kernel
paths, the three canonical query shapes, a 50-session interleave stress,
and injected-fault replay; ``test_bufferpool.py`` covers the pool's own
mechanics.
"""

from __future__ import annotations

import random

import pytest

from repro.core.database import Database
from repro.core.options import QueryOptions
from repro.errors import InjectedFault
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.observability import RecordingSink
from repro import caches
from repro.relational import cmp, join, rel
from repro.server.workload import demo_database
from repro.storage.bufferpool import BufferPool
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import MachineProfile
from tests.conftest import make_relation


@pytest.fixture(autouse=True)
def fresh_caches():
    caches.get("plans").clear()
    caches.get("bufferpool").clear()
    yield
    caches.get("plans").clear()
    caches.get("bufferpool").clear()


def make_db(seed: int = 11) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 97) for i in range(12_000)],
    )
    db.create_relation(
        "r2",
        [("a", "int"), ("c", "int")],
        rows=[(i % 13, i) for i in range(3_000)],
    )
    return db


QUERIES = [
    (rel("r1").where(cmp("a", "<", 10)), 4.0),
    (rel("r1").where(cmp("a", "<", 10)).where(cmp("id", ">", 100)), 4.0),
    (join(rel("r1"), rel("r2"), on=["a"]), 900.0),
]


def run_signature(db: Database, expr, quota: float, seed: int, **options):
    """Everything observable about a run, traces included."""
    sink = RecordingSink()
    result = db.estimate(
        expr, quota=quota, seed=seed, options=QueryOptions(sink=sink, **options)
    )
    report = result.report
    return (
        None if report.estimate is None else (
            report.estimate.value,
            report.estimate.variance,
            report.estimate.sample_points,
        ),
        [
            (s.index, s.fraction, s.duration, s.blocks_read, s.new_points)
            for s in report.stages
        ],
        report.termination,
        sum(s.duration for s in report.stages),
        [e.to_dict() for e in sink],
    )


@pytest.mark.parametrize("vectorized", [False, True], ids=["python", "vectorized"])
@pytest.mark.parametrize("expr,quota", QUERIES, ids=["select", "conjunct", "join"])
class TestOnOffIdentity:
    def test_pool_on_equals_pool_off(self, vectorized, expr, quota):
        off = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=False,
        )
        caches.get("plans").clear()
        on = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=BufferPool(),
        )
        assert on == off

    def test_warm_pool_equals_cold_pool(self, vectorized, expr, quota):
        """A pool full of this very query's blocks changes nothing."""
        db = make_db()
        pool = BufferPool()
        opts = dict(vectorized=vectorized, bufferpool=pool)
        cold = run_signature(db, expr, quota, seed=5, **opts)
        assert pool.info().misses > 0  # the run really went through it
        caches.get("plans").clear()
        warm = run_signature(db, expr, quota, seed=5, **opts)
        assert pool.info().hits > 0  # ... and the replay really hit
        assert warm == cold


class TestSharedPoolStress:
    """The session-stress mix over one shared pool = pool off, bit for bit."""

    SESSIONS = 50

    @staticmethod
    def _spec(i: int) -> dict:
        from repro.estimation.aggregates import sum_of
        from repro.relational.expression import intersect, select

        kind = i % 4
        if kind == 0:
            expr, aggregate = select(rel("r1"), cmp("a", "<", 100 + 20 * i)), None
        elif kind == 1:
            expr, aggregate = select(rel("r2"), cmp("a", ">", 10 * i)), None
        elif kind == 2:
            expr, aggregate = rel("r1"), sum_of("b")
        else:
            expr, aggregate = intersect(rel("r1"), rel("r2")), None
        return {
            "expr": expr,
            "quota": 0.5 + (i % 5) * 0.5,
            "seed": 1_000 + i,
            "aggregate": aggregate,
        }

    @staticmethod
    def _signature(result) -> tuple:
        report = result.report
        estimate = report.estimate
        return (
            None if estimate is None else estimate.value,
            None if estimate is None else estimate.variance,
            report.termination,
            len(report.stages),
            report.total_blocks,
            tuple((s.fraction, s.duration, s.blocks_read) for s in report.stages),
        )

    def test_interleaved_shared_pool_matches_pool_off(self):
        db_off = demo_database(seed=29, tuples=1_200, analyze=False)
        baseline = {}
        for i in range(self.SESSIONS):
            session = db_off.open_session(bufferpool=False, **self._spec(i))
            baseline[i] = self._signature(session.run())

        db_on = demo_database(seed=29, tuples=1_200, analyze=False)
        pool = BufferPool()
        sessions = {
            i: db_on.open_session(bufferpool=pool, **self._spec(i))
            for i in range(self.SESSIONS)
        }
        order = list(range(self.SESSIONS))
        random.Random(7).shuffle(order)
        interleaved = {i: self._signature(sessions[i].run()) for i in order}
        assert interleaved == baseline
        info = pool.info()
        assert info.hits > 0  # the sessions really shared blocks


class TestFaults:
    def test_faulted_read_is_never_admitted(self, int_schema):
        heap = make_relation("r1", int_schema, [(i, 0) for i in range(25)])
        pool = BufferPool(capacity=8)
        charger = CostCharger(MachineProfile.uniform(0.0))
        import numpy as np

        injector = FaultInjector(
            FaultPlan(read_error_prob=1.0), np.random.default_rng(3)
        )
        with pytest.raises(InjectedFault):
            heap.read_blocks([0, 1], charger, injector, pool)
        assert pool.info().currsize == 0  # nothing poisoned the cache
        assert pool.info().misses == 0

    def test_partial_batch_admits_only_preceding_blocks(self, int_schema):
        heap = make_relation("r1", int_schema, [(i, 0) for i in range(25)])
        pool = BufferPool(capacity=8)
        charger = CostCharger(MachineProfile.uniform(0.0))
        import numpy as np

        # max_injections=1 with p=1: the very first block read faults,
        # later reads pass — so a retry-style second call admits cleanly.
        injector = FaultInjector(
            FaultPlan(read_error_prob=1.0, max_injections=1),
            np.random.default_rng(3),
        )
        with pytest.raises(InjectedFault):
            heap.read_blocks([0, 1], charger, injector, pool)
        assert pool.info().currsize == 0
        rows = heap.read_blocks([0, 1], charger, injector, pool)
        assert len(rows) == 10
        assert pool.info().currsize == 2

    @pytest.mark.parametrize(
        "vectorized", [False, True], ids=["python", "vectorized"]
    )
    def test_chaos_replay_identical_pool_on_and_off(self, vectorized):
        plan = FaultPlan(
            read_error_prob=0.03,
            slow_read_prob=0.05,
            stage_overrun_prob=0.20,
            stage_overrun_seconds=0.02,
            seed_salt=7,
        )
        expr, quota = QUERIES[0]
        off = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=False, fault_plan=plan,
        )
        caches.get("plans").clear()
        on = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=BufferPool(), fault_plan=plan,
        )
        assert on == off
