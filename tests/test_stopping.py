"""Tests for stopping criteria (Section 3.2)."""

import math

import pytest

from repro.errors import TimeControlError
from repro.estimation.estimate import Estimate
from repro.timecontrol.stopping import (
    AnyOf,
    ErrorConstrained,
    HardDeadline,
    SoftDeadline,
    StopState,
    unlimited_quota,
)


def state(remaining=1.0, estimate=None, history=None, stage=1):
    return StopState(
        stage=stage,
        remaining_seconds=remaining,
        estimate=estimate,
        estimate_history=history or ([] if estimate is None else [estimate]),
    )


class TestDeadlines:
    def test_hard_is_hard(self):
        assert HardDeadline().hard is True

    def test_soft_is_soft(self):
        assert SoftDeadline().hard is False

    def test_stop_when_time_exhausted(self):
        for criterion in (HardDeadline(), SoftDeadline()):
            assert criterion.should_stop(state(remaining=0.0))
            assert criterion.should_stop(state(remaining=-1.0))
            assert not criterion.should_stop(state(remaining=0.5))


class TestErrorConstrained:
    def test_stops_at_target_precision(self):
        # value 100, std 2 → 95% half-width ≈ 3.92 → 3.9% relative.
        tight = Estimate(value=100.0, variance=4.0)
        criterion = ErrorConstrained(target_relative_halfwidth=0.05)
        assert criterion.should_stop(state(estimate=tight))

    def test_keeps_going_when_imprecise(self):
        loose = Estimate(value=100.0, variance=400.0)
        criterion = ErrorConstrained(target_relative_halfwidth=0.05)
        assert not criterion.should_stop(state(estimate=loose))

    def test_exact_estimate_always_stops(self):
        exact = Estimate(value=0.0, variance=0.0, exact=True)
        criterion = ErrorConstrained(target_relative_halfwidth=0.01)
        assert criterion.should_stop(state(estimate=exact))

    def test_no_estimate_keeps_going(self):
        criterion = ErrorConstrained()
        assert not criterion.should_stop(state(estimate=None))

    def test_stall_detection(self):
        criterion = ErrorConstrained(
            target_relative_halfwidth=1e-9, stall_stages=3, stall_tolerance=0.02
        )
        flat = [Estimate(value=v, variance=100.0) for v in (100.0, 100.5, 100.2)]
        assert criterion.should_stop(
            state(estimate=flat[-1], history=flat, stage=3)
        )
        moving = [Estimate(value=v, variance=100.0) for v in (80.0, 100.0, 120.0)]
        assert not criterion.should_stop(
            state(estimate=moving[-1], history=moving, stage=3)
        )

    def test_invalid_parameters(self):
        with pytest.raises(TimeControlError):
            ErrorConstrained(target_relative_halfwidth=0.0)
        with pytest.raises(TimeControlError):
            ErrorConstrained(confidence=1.0)


class TestAnyOf:
    def test_fires_when_any_fires(self):
        combined = AnyOf([SoftDeadline(), ErrorConstrained(0.05)])
        precise = Estimate(value=100.0, variance=1.0)
        assert combined.should_stop(state(remaining=5.0, estimate=precise))
        assert combined.should_stop(state(remaining=0.0, estimate=None))
        loose = Estimate(value=100.0, variance=10_000.0)
        assert not combined.should_stop(state(remaining=5.0, estimate=loose))

    def test_hardness_inherited(self):
        assert AnyOf([SoftDeadline(), HardDeadline()]).hard
        assert not AnyOf([SoftDeadline(), ErrorConstrained()]).hard

    def test_empty_rejected(self):
        with pytest.raises(TimeControlError):
            AnyOf([])

    def test_describe(self):
        combined = AnyOf([SoftDeadline(), ErrorConstrained()])
        assert "SoftDeadline" in combined.describe()


def test_unlimited_quota_is_inf():
    assert math.isinf(unlimited_quota())
