"""Invariant 10 — partitioned execution is bit-identical to unsharded.

The contract (``docs/architecture.md``): for the same seed, partitions
on/off — and any shard worker count — produce bit-identical estimates,
charged costs, and stage schedules. Partitioning is a *block-granularity*
overlay: global block ids, contents, and the sampler's global permutation
are untouched, so the only permitted trace difference is the presence of
``shard_scan_started``/``shard_merged`` events (which the sharded path
emits and the global path cannot). That is deliberately *weaker* than the
buffer pool's invariant 9, which pins traces verbatim.

The battery mirrors ``test_bufferpool_identity.py``: on/off across both
kernel paths × pool on/off × three query shapes, a 50-session stress mix
over one shared partitioned relation, and fault-replay identity.
"""

from __future__ import annotations

import pytest

from repro import caches
from repro.core.database import Database
from repro.core.options import QueryOptions
from repro.faults.plan import FaultPlan
from repro.observability import RecordingSink
from repro.relational.expression import join, rel
from repro.relational.predicate import cmp
from repro.storage.bufferpool import BufferPool

SHARD_KINDS = ("shard_scan_started", "shard_merged")


@pytest.fixture(autouse=True)
def fresh_caches():
    for name in ("plans", "bufferpool", "shards"):
        caches.get(name).clear()
    yield
    for name in ("plans", "bufferpool", "shards"):
        caches.get(name).clear()


def make_db(seed: int = 11, partitions: int | None = 4) -> Database:
    db = Database(seed=seed)
    db.create_relation(
        "r1",
        [("id", "int"), ("a", "int")],
        rows=[(i, i % 97) for i in range(12_000)],
        partitions=partitions,
    )
    db.create_relation(
        "r2",
        [("a", "int"), ("c", "int")],
        rows=[(i % 13, i) for i in range(3_000)],
        partitions=partitions,
        partition_strategy="hash",
    )
    return db


QUERIES = [
    (rel("r1").where(cmp("a", "<", 10)), 4.0),
    (rel("r1").where(cmp("a", "<", 10)).where(cmp("id", ">", 100)), 4.0),
    (join(rel("r1"), rel("r2"), on=["a"]), 900.0),
]


def run_signature(db: Database, expr, quota: float, seed: int, **options):
    """Everything invariant 10 pins, plus traces minus shard events."""
    sink = RecordingSink()
    result = db.estimate(
        expr, quota=quota, seed=seed, options=QueryOptions(sink=sink, **options)
    )
    report = result.report
    return (
        None if report.estimate is None else (
            report.estimate.value,
            report.estimate.variance,
            report.estimate.sample_points,
        ),
        [
            (s.index, s.fraction, s.duration, s.blocks_read, s.new_points)
            for s in report.stages
        ],
        report.termination,
        sum(s.duration for s in report.stages),
        [e.to_dict() for e in sink if e.kind not in SHARD_KINDS],
    )


@pytest.mark.parametrize("vectorized", [False, True], ids=["python", "vectorized"])
@pytest.mark.parametrize("expr,quota", QUERIES, ids=["select", "conjunct", "join"])
class TestOnOffIdentity:
    def test_partitions_on_equals_off(self, vectorized, expr, quota):
        off = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=False, partitions=False,
        )
        caches.get("plans").clear()
        on = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=False, partitions=2,
        )
        assert on == off

    def test_identity_holds_through_the_pool(self, vectorized, expr, quota):
        """Sharded pool keys vs global pool keys — same answers either way."""
        off = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=BufferPool(), partitions=False,
        )
        caches.get("plans").clear()
        on = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=BufferPool(), partitions=2,
        )
        assert on == off

    def test_worker_count_is_invisible(self, vectorized, expr, quota):
        one = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=BufferPool(), partitions=1,
        )
        caches.get("plans").clear()
        four = run_signature(
            make_db(), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=BufferPool(), partitions=4,
        )
        assert four == one

    def test_unpartitioned_relation_ignores_the_switch(self, vectorized, expr, quota):
        """partitions=N over plain heap files is a no-op, not an error."""
        plain_off = run_signature(
            make_db(partitions=None), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=False, partitions=False,
        )
        caches.get("plans").clear()
        plain_on = run_signature(
            make_db(partitions=None), expr, quota, seed=5,
            vectorized=vectorized, bufferpool=False, partitions=4,
        )
        assert plain_on == plain_off


class TestSharedShardStress:
    """50 interleaved sessions over one partitioned db = unsharded, bit for bit."""

    SESSIONS = 50

    @staticmethod
    def mix(db: Database, partitions_opt, pool) -> list:
        signatures = []
        for i in range(TestSharedShardStress.SESSIONS):
            expr, quota = QUERIES[i % len(QUERIES)]
            signatures.append(
                run_signature(
                    db, expr, quota, seed=100 + i,
                    vectorized=bool(i % 2),
                    bufferpool=pool,
                    partitions=partitions_opt,
                )
            )
        return signatures

    def test_stress_mix_identical(self):
        baseline = self.mix(make_db(), False, False)
        caches.get("plans").clear()
        sharded = self.mix(make_db(), 4, BufferPool())
        assert sharded == baseline


class TestFaultReplayIdentity:
    """Seed-replayable faults stay replayable across the sharded path."""

    PLAN = FaultPlan(read_error_prob=0.05, slow_read_prob=0.05, seed_salt=3)

    def run_faulted(self, partitions_opt):
        db = make_db(seed=21)
        sink = RecordingSink()
        result = db.estimate(
            QUERIES[0][0], quota=QUERIES[0][1], seed=8,
            options=QueryOptions(
                sink=sink, fault_plan=self.PLAN, partitions=partitions_opt
            ),
        )
        return (
            [e.to_dict() for e in sink if e.kind not in SHARD_KINDS],
            [
                (f.stage, f.kind, f.relation, f.block_id)
                for f in result.report.faults
            ],
            result.report.termination,
        )

    def test_fault_stream_identical_on_off(self):
        off = self.run_faulted(False)
        caches.get("plans").clear()
        on = self.run_faulted(2)
        assert on == off
