"""Unit tests for selection formulas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.errors import ExpressionError, SchemaError
from repro.relational.predicate import (
    And,
    Comparison,
    Or,
    TruePredicate,
    attr,
    cmp,
)


@pytest.fixture
def schema():
    return Schema.of(a=AttributeType.INT, b=AttributeType.INT)


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,row,expected",
        [
            ("<", 5, (3, 0), True),
            ("<", 5, (5, 0), False),
            ("<=", 5, (5, 0), True),
            (">", 5, (6, 0), True),
            (">=", 5, (5, 0), True),
            ("==", 5, (5, 0), True),
            ("!=", 5, (5, 0), False),
        ],
    )
    def test_operators(self, schema, op, value, row, expected):
        fn = Comparison("a", op, value).compile(schema)
        assert fn(row) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("a", "~", 5)

    def test_attr_to_attr_comparison(self, schema):
        fn = cmp("a", "<", attr("b")).compile(schema)
        assert fn((1, 2)) is True
        assert fn((2, 1)) is False

    def test_unknown_attribute_fails_at_compile(self, schema):
        with pytest.raises(SchemaError):
            cmp("ghost", "<", 5).compile(schema)

    def test_comparison_count(self):
        assert cmp("a", "<", 5).comparison_count() == 1

    def test_attributes(self, schema):
        assert cmp("a", "<", attr("b")).attributes() == {"a", "b"}


class TestCombinators:
    def test_and(self, schema):
        fn = (cmp("a", ">", 1) & cmp("b", "<", 5)).compile(schema)
        assert fn((2, 4)) is True
        assert fn((2, 6)) is False
        assert fn((0, 4)) is False

    def test_or(self, schema):
        fn = (cmp("a", ">", 1) | cmp("b", "<", 5)).compile(schema)
        assert fn((0, 4)) is True
        assert fn((2, 9)) is True
        assert fn((0, 9)) is False

    def test_not(self, schema):
        fn = (~cmp("a", ">", 1)).compile(schema)
        assert fn((0, 0)) is True
        assert fn((2, 0)) is False

    def test_nested_counts(self):
        pred = (cmp("a", ">", 1) & cmp("b", "<", 5)) | ~cmp("a", "==", 0)
        assert pred.comparison_count() == 3

    def test_and_requires_two_parts(self):
        with pytest.raises(ExpressionError):
            And((cmp("a", "<", 1),))

    def test_or_requires_two_parts(self):
        with pytest.raises(ExpressionError):
            Or((cmp("a", "<", 1),))

    def test_nested_attributes(self):
        pred = (cmp("a", ">", 1) & cmp("b", "<", 5)) | ~cmp("a", "==", 0)
        assert pred.attributes() == {"a", "b"}


class TestTruePredicate:
    def test_always_true(self, schema):
        fn = TruePredicate().compile(schema)
        assert fn((0, 0)) is True

    def test_zero_comparisons(self):
        assert TruePredicate().comparison_count() == 0
        assert TruePredicate().attributes() == set()


@given(st.integers(-100, 100), st.integers(-100, 100), st.integers(-100, 100))
def test_property_demorgan(a, b, threshold):
    """¬(p ∧ q) ≡ ¬p ∨ ¬q over arbitrary rows and thresholds."""
    schema = Schema.of(a=AttributeType.INT, b=AttributeType.INT)
    p = cmp("a", "<", threshold)
    q = cmp("b", ">", threshold)
    lhs = (~(p & q)).compile(schema)
    rhs = ((~p) | (~q)).compile(schema)
    assert lhs((a, b)) == rhs((a, b))
