"""Tests for the charged operator primitives (sort, merges, unary ops)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.operators import (
    apply_select,
    dedupe_sorted,
    external_sort,
    key_for_positions,
    merge_difference,
    merge_intersect,
    merge_join,
    merge_union,
    project_rows,
    whole_row_key,
)
from repro.timekeeping.profile import CostKind

rows_strategy = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 3)), max_size=30
)


class TestExternalSort:
    def test_sorts_by_whole_row(self, free_charger):
        rows = [(3, 1), (1, 2), (2, 0)]
        assert external_sort(rows, whole_row_key, free_charger) == [
            (1, 2),
            (2, 0),
            (3, 1),
        ]

    def test_sorts_by_key_positions(self, free_charger):
        rows = [(3, 1), (1, 2), (2, 0)]
        out = external_sort(rows, key_for_positions([1]), free_charger)
        assert [r[1] for r in out] == [0, 1, 2]

    def test_charges_nlogn_and_linear(self, unit_charger):
        rows = [(i,) for i in range(8)]
        external_sort(rows, whole_row_key, unit_charger)
        assert unit_charger.counts[CostKind.SORT_UNIT] == pytest.approx(
            8 * math.log2(8)
        )
        assert unit_charger.counts[CostKind.SORT_TUPLE] == 8

    def test_empty_and_singleton_free_of_nlogn(self, unit_charger):
        external_sort([], whole_row_key, unit_charger)
        external_sort([(1,)], whole_row_key, unit_charger)
        assert unit_charger.counts[CostKind.SORT_UNIT] == 0

    def test_does_not_mutate_input(self, free_charger):
        rows = [(2,), (1,)]
        external_sort(rows, whole_row_key, free_charger)
        assert rows == [(2,), (1,)]


class TestMergeSetOps:
    def test_intersect_basic(self, free_charger):
        left = [(1,), (2,), (3,)]
        right = [(2,), (3,), (4,)]
        assert merge_intersect(left, right, free_charger, 5) == [(2,), (3,)]

    def test_intersect_collapses_duplicates(self, free_charger):
        left = [(1,), (1,), (2,)]
        right = [(1,), (2,), (2,)]
        assert merge_intersect(left, right, free_charger, 5) == [(1,), (2,)]

    def test_union_basic(self, free_charger):
        left = [(1,), (3,)]
        right = [(2,), (3,)]
        assert merge_union(left, right, free_charger, 5) == [(1,), (2,), (3,)]

    def test_difference_basic(self, free_charger):
        left = [(1,), (2,), (3,)]
        right = [(2,)]
        assert merge_difference(left, right, free_charger, 5) == [(1,), (3,)]

    def test_empty_sides(self, free_charger):
        assert merge_intersect([], [(1,)], free_charger, 5) == []
        assert merge_union([], [(1,)], free_charger, 5) == [(1,)]
        assert merge_difference([], [(1,)], free_charger, 5) == []
        assert merge_difference([(1,)], [], free_charger, 5) == [(1,)]

    def test_merge_charges(self, unit_charger):
        merge_intersect([(1,), (2,)], [(2,)], unit_charger, 5)
        assert unit_charger.counts[CostKind.MERGE_INIT] == 1
        assert unit_charger.counts[CostKind.MERGE_TUPLE] == 3
        assert unit_charger.counts[CostKind.OUTPUT_TUPLE] == 1
        assert unit_charger.counts[CostKind.PAGE_WRITE] == 1

    @settings(max_examples=80, deadline=None)
    @given(left=rows_strategy, right=rows_strategy)
    def test_property_setops_match_python_sets(self, left, right):
        from repro.timekeeping.charger import CostCharger
        from repro.timekeeping.profile import MachineProfile

        charger = CostCharger(MachineProfile.uniform(0.0))
        ls = sorted(set(left))
        rs = sorted(set(right))
        assert merge_intersect(ls, rs, charger, 5) == sorted(set(ls) & set(rs))
        assert merge_union(ls, rs, charger, 5) == sorted(set(ls) | set(rs))
        assert merge_difference(ls, rs, charger, 5) == sorted(set(ls) - set(rs))


class TestMergeJoin:
    def test_basic_equi_join(self, free_charger):
        left = sorted([(1, "x"), (2, "y")], key=lambda r: r[0])
        right = sorted([(1, "a"), (1, "b"), (3, "c")], key=lambda r: r[0])
        out = merge_join(left, right, [0], [0], free_charger, 5)
        assert out == [(1, "x", 1, "a"), (1, "x", 1, "b")]

    def test_cross_product_within_key_group(self, free_charger):
        left = [(1, "p"), (1, "q")]
        right = [(1, "a"), (1, "b")]
        out = merge_join(left, right, [0], [0], free_charger, 5)
        assert len(out) == 4

    def test_multi_attribute_key(self, free_charger):
        left = sorted([(1, 1, "l1"), (1, 2, "l2")])
        right = sorted([(1, 1, "r1"), (1, 3, "r2")])
        out = merge_join(left, right, [0, 1], [0, 1], free_charger, 5)
        assert out == [(1, 1, "l1", 1, 1, "r1")]

    def test_disjoint_keys_empty(self, free_charger):
        out = merge_join([(1,)], [(2,)], [0], [0], free_charger, 5)
        assert out == []

    @settings(max_examples=80, deadline=None)
    @given(left=rows_strategy, right=rows_strategy)
    def test_property_join_matches_nested_loop(self, left, right):
        from repro.timekeeping.charger import CostCharger
        from repro.timekeeping.profile import MachineProfile

        charger = CostCharger(MachineProfile.uniform(0.0))
        left = sorted(set(left), key=lambda r: r[0])
        right = sorted(set(right), key=lambda r: r[0])
        out = merge_join(left, right, [0], [0], charger, 5)
        expected = sorted(
            l + r for l in left for r in right if l[0] == r[0]
        )
        assert sorted(out) == expected


class TestUnaryOps:
    def test_apply_select_filters_and_charges(self, unit_charger):
        rows = [(i,) for i in range(10)]
        out = apply_select(rows, lambda r: r[0] % 2 == 0, unit_charger, 2)
        assert out == [(0,), (2,), (4,), (6,), (8,)]
        assert unit_charger.counts[CostKind.SELECT_CHECK] == 10
        assert unit_charger.counts[CostKind.PAGE_WRITE] == 3  # ceil(5/2)
        assert unit_charger.counts[CostKind.OP_INIT] == 1

    def test_apply_select_empty_output_writes_nothing(self, unit_charger):
        out = apply_select([(1,)], lambda r: False, unit_charger, 2)
        assert out == []
        assert unit_charger.counts[CostKind.PAGE_WRITE] == 0

    def test_dedupe_sorted_counts_occupancy(self, free_charger):
        rows = [(1,), (1,), (2,), (3,), (3,), (3,)]
        distinct, occupancy = dedupe_sorted(rows, free_charger, 5)
        assert distinct == [(1,), (2,), (3,)]
        assert occupancy == [2, 1, 3]

    def test_dedupe_empty(self, free_charger):
        assert dedupe_sorted([], free_charger, 5) == ([], [])

    def test_project_rows_reorders(self):
        assert project_rows([(1, 2, 3)], [2, 0]) == [(3, 1)]
