"""Regenerators for every evaluation table of the paper (Section 5).

Each ``figure_5_x`` function sweeps ``d_β ∈ {0, 12, 24, 48, 72}`` over the
corresponding workload and returns a :class:`Table` with the paper's columns
(plus the estimate's mean relative error, which the paper reports in its
companion papers). ``runs`` defaults to the paper's 200 independent
experiments per cell; pass a smaller number for quick looks.

The module also records the paper's published numbers
(:data:`PAPER_FIGURE_5_1` …) so harnesses can print measured-versus-paper
side by side; EXPERIMENTS.md discusses the comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.formatting import PAPER_COLUMNS, Table
from repro.experiments.runner import aggregate, run_cell
from repro.timecontrol.strategies import OneAtATimeInterval
from repro.workloads.paper import (
    D_BETA_GRID,
    PaperSetup,
    make_intersection_setup,
    make_join_setup,
    make_selection_setup,
)

PAPER_RUNS = 200

# Published rows: d_beta -> (stages, risk%, ovsp, utilization%, blocks).
# Transcribed from the paper's Figures 5.1-5.3 (OCR gaps marked None).
PAPER_FIGURE_5_1 = {
    0: (1.56, 56, 0.11, 63, 54),
    12: (1.73, 43, 0.09, 71, 61),
    24: (2.62, 26, 0.05, 92, 81),
    48: (3.56, 4, 0.03, 98, 84),
    72: (4.12, 2, 0.02, 98, 83),
}
PAPER_FIGURE_5_2 = {
    0: (1.56, 44, 0.18, 41.8, 25.9),
    12: (1.74, 26, 0.17, 47.9, 28.4),
    24: (1.85, 15, 0.12, 51.2, 27.5),
    48: (1.97, 3.0, 0.11, 54.1, 24.1),
    72: (2.00, 0, 0.00, 51.9, 22.1),
}
PAPER_FIGURE_5_3 = {
    0: (1.59, 41, 0.19, 71, 63),
    12: (1.94, 5.3, 0.18, 91, None),
    24: (None, 0, 0.00, 90, None),
    48: (None, 0, 0.00, 83, None),
    72: (None, 0, 0.00, None, None),
}


def _sweep(
    setup: PaperSetup,
    runs: int,
    d_betas: Sequence[float],
    seed0: int,
    title: str,
    paper_rows: dict | None = None,
    **estimate_kwargs,
) -> Table:
    table = Table(title=title, columns=PAPER_COLUMNS)
    for d_beta in d_betas:
        results = run_cell(
            setup,
            lambda d=d_beta: OneAtATimeInterval(d_beta=d),
            runs=runs,
            seed0=seed0,
            **estimate_kwargs,
        )
        cell = aggregate(f"{d_beta:g}", results, true_count=setup.exact_count)
        table.add(cell.row())
    table.notes.append(f"{runs} independent runs per row; quota {setup.quota:g}s")
    table.notes.append(f"exact COUNT = {setup.exact_count}")
    if paper_rows:
        table.notes.append(
            "paper rows (stages, risk%, ovsp, util%, blocks): "
            + "; ".join(
                f"d_beta={k}: {v}" for k, v in paper_rows.items()
            )
        )
    return table


def figure_5_1(
    runs: int = PAPER_RUNS,
    output_tuples: int = 1_000,
    d_betas: Sequence[float] = D_BETA_GRID,
    seed: int = 0,
) -> Table:
    """Figure 5.1 — time-control performance for the Selection operator.

    The paper shows sub-tables for different output cardinalities; pass
    ``output_tuples`` (1 000 and 5 000 reproduce both published panels).
    """
    setup = make_selection_setup(output_tuples=output_tuples, seed=seed)
    return _sweep(
        setup,
        runs,
        d_betas,
        seed0=10_000,
        title=(
            f"Figure 5.1 — Selection, {output_tuples} output tuples, "
            f"quota {setup.quota:g}s"
        ),
        paper_rows=PAPER_FIGURE_5_1 if output_tuples == 1_000 else None,
    )


def figure_5_2(
    runs: int = PAPER_RUNS,
    d_betas: Sequence[float] = D_BETA_GRID,
    seed: int = 0,
) -> Table:
    """Figure 5.2 — time-control performance for the Intersection operator."""
    setup = make_intersection_setup(seed=seed)
    return _sweep(
        setup,
        runs,
        d_betas,
        seed0=20_000,
        title=(
            f"Figure 5.2 — Intersection, {setup.exact_count} output tuples, "
            f"quota {setup.quota:g}s"
        ),
        paper_rows=PAPER_FIGURE_5_2,
    )


def figure_5_3(
    runs: int = PAPER_RUNS,
    d_betas: Sequence[float] = D_BETA_GRID,
    seed: int = 0,
) -> Table:
    """Figure 5.3 — time-control performance for the Join operator.

    As in the paper, the initial join selectivity is 0.1 rather than the
    maximum 1 (Section 5.C explains the clock-granularity motivation).
    """
    setup = make_join_setup(seed=seed)
    return _sweep(
        setup,
        runs,
        d_betas,
        seed0=30_000,
        title=(
            f"Figure 5.3 — Join, {setup.exact_count} output tuples, "
            f"quota {setup.quota:g}s"
        ),
        paper_rows=PAPER_FIGURE_5_3,
    )


def all_tables(runs: int = PAPER_RUNS) -> list[Table]:
    """Every reproduced evaluation table, in paper order."""
    return [
        figure_5_1(runs=runs, output_tuples=1_000),
        figure_5_1(runs=runs, output_tuples=5_000),
        figure_5_2(runs=runs),
        figure_5_3(runs=runs),
    ]
