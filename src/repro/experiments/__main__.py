"""Command-line experiment runner.

Regenerate the paper's tables and the ablations from a shell::

    python -m repro.experiments                 # every table, 60 runs/cell
    python -m repro.experiments --runs 200      # the paper's run count
    python -m repro.experiments --only 5.1 5.3  # a subset
    python -m repro.experiments --ablations     # the A1–A6 ablations too
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ablations import (
    ablation_adaptive_cost,
    ablation_distinct_estimators,
    ablation_estimator_quality,
    ablation_fulfillment,
    ablation_memory_resident,
    ablation_selectivity_sources,
    ablation_stopping,
    ablation_strategies,
    ablation_variance_formula,
    ablation_zero_fix,
)
from repro.experiments.tables import figure_5_1, figure_5_2, figure_5_3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SIGMOD'89 evaluation tables.",
    )
    parser.add_argument(
        "--runs", type=int, default=60, help="independent runs per cell"
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="ID",
        help="table ids to run (5.1, 5.1b, 5.2, 5.3)",
    )
    parser.add_argument(
        "--ablations", action="store_true", help="also run ablations A1-A6"
    )
    args = parser.parse_args(argv)

    tables = {
        "5.1": lambda: figure_5_1(runs=args.runs, output_tuples=1_000),
        "5.1b": lambda: figure_5_1(runs=args.runs, output_tuples=5_000),
        "5.2": lambda: figure_5_2(runs=args.runs),
        "5.3": lambda: figure_5_3(runs=args.runs),
    }
    selected = args.only if args.only else list(tables)
    unknown = [i for i in selected if i not in tables]
    if unknown:
        parser.error(f"unknown table ids {unknown}; choose from {list(tables)}")

    for table_id in selected:
        start = time.perf_counter()
        table = tables[table_id]()
        print(table.render())
        print(f"  [{time.perf_counter() - start:.1f}s]\n")

    if args.ablations:
        runs = max(args.runs // 2, 10)
        for build in (
            lambda: ablation_strategies(runs=runs),
            lambda: ablation_fulfillment(runs=runs),
            lambda: ablation_adaptive_cost(runs=runs),
            lambda: ablation_variance_formula(),
            lambda: ablation_estimator_quality(runs=max(runs // 2, 10)),
            lambda: ablation_distinct_estimators(runs=max(runs // 2, 10)),
            lambda: ablation_selectivity_sources(runs=runs),
            lambda: ablation_memory_resident(runs=runs),
            lambda: ablation_zero_fix(runs=runs),
            lambda: ablation_stopping(runs=runs),
        ):
            start = time.perf_counter()
            print(build().render())
            print(f"  [{time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
