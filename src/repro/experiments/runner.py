"""Batch experiment runner.

Section 5's tables aggregate 200 independent runs per cell: "Every entry in
any table has been obtained from 200 independent experiments on RA
operators." :func:`run_cell` executes one cell (one strategy configuration ×
one workload × N seeds) and :func:`aggregate` reduces the runs to the
paper's columns:

* ``stages`` — mean stages completed within the quota;
* ``risk``   — percentage of runs in which a stage overspent the quota;
* ``ovsp``   — mean seconds overspent, *among overspending runs only*;
* ``utilization`` — mean percentage of the quota used by in-time stages;
* ``blocks`` — mean disk blocks evaluated within the quota;

plus a reproduction extra the paper reports elsewhere: the mean relative
error of the returned estimate against the exact count.

Because every run executes in its own :class:`~repro.core.session.QuerySession`
(no mutable state shared between seeds), the cell's runs are embarrassingly
parallel: ``run_cell(..., workers=N)`` fans the seed range out over a
``ProcessPoolExecutor`` of fork-started workers and returns results in seed
order — bit-identical to the serial path, just wall-clock faster. The
default (``workers=0``) stays serial so determinism-sensitive callers (and
callers passing a shared ``cost_model`` or a trace ``sink``) keep the exact
single-process semantics.
"""

from __future__ import annotations

import math
import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.result import QueryResult
from repro.errors import CellRunError
from repro.timecontrol.strategies import TimeControlStrategy
from repro.workloads.paper import PaperSetup

StrategyFactory = Callable[[], TimeControlStrategy]


@dataclass(frozen=True)
class CellResult:
    """Aggregated measurements of one table cell."""

    label: str
    runs: int
    stages: float
    risk_pct: float
    ovsp_seconds: float
    utilization_pct: float
    blocks: float
    mean_relative_error: float | None

    def row(self) -> list[str]:
        err = (
            f"{self.mean_relative_error:.3f}"
            if self.mean_relative_error is not None
            else "-"
        )
        return [
            self.label,
            f"{self.stages:.2f}",
            f"{self.risk_pct:.0f}",
            f"{self.ovsp_seconds:.2f}",
            f"{self.utilization_pct:.0f}",
            f"{self.blocks:.1f}",
            err,
        ]


# Fork-inherited state of one parallel run_cell call. Set in the parent
# immediately before the pool forks, cleared right after; child processes
# receive a copy-on-write snapshot, so nothing (database, closures, strategy
# factories) ever needs to be pickled.
_FORK_STATE: tuple[PaperSetup, StrategyFactory, int, dict] | None = None


def _run_one(
    setup: PaperSetup,
    strategy_factory: StrategyFactory,
    seed: int,
    kwargs: dict,
) -> QueryResult:
    """One independent evaluation — a fresh session for a fresh seed.

    A failure is re-raised as :class:`CellRunError` naming the seed and the
    cell, so a crash deep inside one of 200 runs — possibly inside a forked
    worker, where the naked traceback would name no seed at all — points
    straight at the reproducing configuration.
    """
    strategy = strategy_factory()
    try:
        return setup.database.estimate(
            setup.query,
            quota=setup.quota,
            strategy=strategy,
            seed=seed,
            **kwargs,
        )
    except Exception as exc:
        raise CellRunError(
            seed,
            f"run_cell failed at seed {seed} "
            f"(query {setup.query}, quota {setup.quota:g}s, "
            f"strategy {strategy.describe()}): "
            f"{type(exc).__name__}: {exc}",
        ) from exc


def _run_fork_chunk(seeds: Sequence[int]) -> list[QueryResult]:
    """Worker entry point: run a contiguous chunk of seeds in-process."""
    assert _FORK_STATE is not None, "worker forked without run_cell state"
    setup, strategy_factory, _, kwargs = _FORK_STATE
    return [_run_one(setup, strategy_factory, seed, kwargs) for seed in seeds]


def _chunk_seeds(runs: int, seed0: int, workers: int) -> list[list[int]]:
    """Contiguous seed chunks, in order — ~4 chunks per worker for balance."""
    chunk_count = min(runs, max(workers * 4, 1))
    base, extra = divmod(runs, chunk_count)
    chunks: list[list[int]] = []
    start = seed0
    for i in range(chunk_count):
        size = base + (1 if i < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


def run_cell(
    setup: PaperSetup,
    strategy_factory: StrategyFactory,
    runs: int,
    seed0: int = 1000,
    workers: int = 0,
    **estimate_kwargs,
) -> list[QueryResult]:
    """Run one cell: ``runs`` independent evaluations with fresh seeds.

    ``workers=0`` (default) runs serially in-process. ``workers=N`` fans the
    seed range out over ``N`` forked worker processes; results come back in
    seed order and are bit-identical to the serial path, because each run is
    an isolated :class:`~repro.core.session.QuerySession` keyed only by its
    seed. Parallel mode refuses configurations whose semantics depend on
    cross-run shared state (a caller-provided ``cost_model``) or that cannot
    cross a process boundary (a trace ``sink``).
    """
    kwargs = dict(estimate_kwargs)
    kwargs.setdefault("initial_selectivities", setup.initial_selectivities)
    if workers and workers > 0 and runs > 1:
        return _run_cell_parallel(setup, strategy_factory, runs, seed0, workers, kwargs)
    seeds = range(seed0, seed0 + runs)
    return [_run_one(setup, strategy_factory, seed, kwargs) for seed in seeds]


def _run_cell_parallel(
    setup: PaperSetup,
    strategy_factory: StrategyFactory,
    runs: int,
    seed0: int,
    workers: int,
    kwargs: dict,
) -> list[QueryResult]:
    if kwargs.get("cost_model") is not None:
        raise ValueError(
            "run_cell(workers>0) cannot share one cost_model across "
            "processes; pass step_specs (fresh model per run) or workers=0"
        )
    if kwargs.get("sink") is not None:
        raise ValueError(
            "run_cell(workers>0) cannot stream one trace sink from several "
            "processes; trace with workers=0"
        )
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        warnings.warn(
            "fork start method unavailable; run_cell falling back to serial",
            RuntimeWarning,
            stacklevel=3,
        )
        seeds = range(seed0, seed0 + runs)
        return [_run_one(setup, strategy_factory, seed, kwargs) for seed in seeds]

    global _FORK_STATE
    _FORK_STATE = (setup, strategy_factory, seed0, kwargs)
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=mp_context
        ) as pool:
            chunk_results = list(
                pool.map(_run_fork_chunk, _chunk_seeds(runs, seed0, workers))
            )
    finally:
        _FORK_STATE = None
    return [result for chunk in chunk_results for result in chunk]


def aggregate(
    label: str,
    results: Sequence[QueryResult],
    true_count: float | None = None,
) -> CellResult:
    """Reduce per-run results to the paper's table columns."""
    n = len(results)
    if n == 0:
        raise ValueError("cannot aggregate zero runs")
    overspenders = [r for r in results if r.overspent]
    ovsp = (
        sum(r.overspend_seconds for r in overspenders) / len(overspenders)
        if overspenders
        else 0.0
    )
    errors: list[float] = []
    if true_count is not None:
        for r in results:
            if r.estimate is not None:
                err = r.relative_error(true_count)
                if math.isfinite(err):
                    errors.append(err)
    return CellResult(
        label=label,
        runs=n,
        stages=sum(r.stages for r in results) / n,
        risk_pct=100.0 * len(overspenders) / n,
        ovsp_seconds=ovsp,
        utilization_pct=100.0 * sum(r.utilization for r in results) / n,
        blocks=sum(r.blocks for r in results) / n,
        mean_relative_error=(sum(errors) / len(errors)) if errors else None,
    )
