"""Batch experiment runner.

Section 5's tables aggregate 200 independent runs per cell: "Every entry in
any table has been obtained from 200 independent experiments on RA
operators." :func:`run_cell` executes one cell (one strategy configuration ×
one workload × N seeds) and :func:`aggregate` reduces the runs to the
paper's columns:

* ``stages`` — mean stages completed within the quota;
* ``risk``   — percentage of runs in which a stage overspent the quota;
* ``ovsp``   — mean seconds overspent, *among overspending runs only*;
* ``utilization`` — mean percentage of the quota used by in-time stages;
* ``blocks`` — mean disk blocks evaluated within the quota;

plus a reproduction extra the paper reports elsewhere: the mean relative
error of the returned estimate against the exact count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.result import QueryResult
from repro.timecontrol.strategies import TimeControlStrategy
from repro.workloads.paper import PaperSetup

StrategyFactory = Callable[[], TimeControlStrategy]


@dataclass(frozen=True)
class CellResult:
    """Aggregated measurements of one table cell."""

    label: str
    runs: int
    stages: float
    risk_pct: float
    ovsp_seconds: float
    utilization_pct: float
    blocks: float
    mean_relative_error: float | None

    def row(self) -> list[str]:
        err = (
            f"{self.mean_relative_error:.3f}"
            if self.mean_relative_error is not None
            else "-"
        )
        return [
            self.label,
            f"{self.stages:.2f}",
            f"{self.risk_pct:.0f}",
            f"{self.ovsp_seconds:.2f}",
            f"{self.utilization_pct:.0f}",
            f"{self.blocks:.1f}",
            err,
        ]


def run_cell(
    setup: PaperSetup,
    strategy_factory: StrategyFactory,
    runs: int,
    seed0: int = 1000,
    **estimate_kwargs,
) -> list[QueryResult]:
    """Run one cell: ``runs`` independent evaluations with fresh seeds."""
    results = []
    kwargs = dict(estimate_kwargs)
    kwargs.setdefault("initial_selectivities", setup.initial_selectivities)
    for i in range(runs):
        results.append(
            setup.database.count_estimate(
                setup.query,
                quota=setup.quota,
                strategy=strategy_factory(),
                seed=seed0 + i,
                **kwargs,
            )
        )
    return results


def aggregate(
    label: str,
    results: Sequence[QueryResult],
    true_count: float | None = None,
) -> CellResult:
    """Reduce per-run results to the paper's table columns."""
    n = len(results)
    if n == 0:
        raise ValueError("cannot aggregate zero runs")
    overspenders = [r for r in results if r.overspent]
    ovsp = (
        sum(r.overspend_seconds for r in overspenders) / len(overspenders)
        if overspenders
        else 0.0
    )
    errors: list[float] = []
    if true_count is not None:
        for r in results:
            if r.estimate is not None:
                err = r.relative_error(true_count)
                if math.isfinite(err):
                    errors.append(err)
    return CellResult(
        label=label,
        runs=n,
        stages=sum(r.stages for r in results) / n,
        risk_pct=100.0 * len(overspenders) / n,
        ovsp_seconds=ovsp,
        utilization_pct=100.0 * sum(r.utilization for r in results) / n,
        blocks=sum(r.blocks for r in results) / n,
        mean_relative_error=(sum(errors) / len(errors)) if errors else None,
    )
