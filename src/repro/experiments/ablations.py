"""Ablation experiments for the design decisions of Figure 3.2.

The paper's implementation-decision table (Figure 3.2) picks one option per
axis — run-time estimation, hard constraint, One-at-a-Time-Interval, cluster
sampling with full fulfillment, adaptive cost formulas — and motivates each
in prose. These ablations measure the alternatives head-to-head (index A1–A6
in DESIGN.md):

* **A1** strategies: One-at-a-Time vs Single-Interval vs the heuristic;
* **A2** fulfillment: full vs partial cluster-sampling plans;
* **A3** cost formulas: adaptive vs fixed-form coefficients;
* **A4** variance: the SRS approximation vs the true cluster variance;
* **A5** estimator quality: û consistency; Goodman vs Chao/jackknife;
* **A6** stopping criteria: hard / soft / error-constrained / value-function;
* **A7** selectivity sources: run-time vs prestored vs hybrid;
* **A8** disk-resident vs main-memory sample evaluation;
* **A9** sensitivity of the substituted zero-selectivity bound's β.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.costmodel.model import CostModel
from repro.estimation.count_estimators import (
    cluster_count_estimate,
    srs_count_estimate,
)
from repro.estimation.goodman import chao1, goodman_estimate, jackknife1
from repro.experiments.formatting import Table
from repro.experiments.runner import aggregate, run_cell
from repro.relational.evaluator import count_exact
from repro.timecontrol.stopping import (
    ErrorConstrained,
    HardDeadline,
    SoftDeadline,
    ValueFunction,
)
from repro.timecontrol.strategies import (
    FixedFractionHeuristic,
    OneAtATimeInterval,
    SingleInterval,
    TimeControlStrategy,
)
from repro.workloads.generators import (
    paper_schema,
    selection_relation,
    zipf_relation,
)
from repro.workloads.paper import (
    PaperSetup,
    make_intersection_setup,
    make_join_setup,
    make_selection_setup,
)


def ablation_strategies(runs: int = 100, seed: int = 0) -> Table:
    """A1 — the three time-control strategies on the join workload."""
    setup = make_join_setup(seed=seed)
    table = Table(
        title=f"A1 — Strategy comparison (join, quota {setup.quota:g}s)",
        columns=["strategy", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"],
    )
    strategies: list[tuple[str, Callable[[], TimeControlStrategy]]] = [
        ("one-at-a-time d_b=24", lambda: OneAtATimeInterval(d_beta=24.0)),
        ("one-at-a-time d_b=0", lambda: OneAtATimeInterval(d_beta=0.0)),
        ("single-interval d_a=2", lambda: SingleInterval(d_alpha=2.0)),
        ("single-interval d_a=0", lambda: SingleInterval(d_alpha=0.0)),
        ("heuristic g=0.5", lambda: FixedFractionHeuristic(gamma=0.5)),
        ("heuristic g=0.9", lambda: FixedFractionHeuristic(gamma=0.9)),
    ]
    for label, factory in strategies:
        results = run_cell(setup, factory, runs=runs, seed0=40_000)
        table.add(aggregate(label, results, setup.exact_count).row())
    table.notes.append(f"{runs} runs per row")
    return table


def ablation_fulfillment(runs: int = 100, seed: int = 0) -> Table:
    """A2 — full vs partial fulfillment on the intersection workload."""
    setup = make_intersection_setup(seed=seed)
    table = Table(
        title=f"A2 — Fulfillment plans (intersection, quota {setup.quota:g}s)",
        columns=["plan", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"],
    )
    for label, full in (("full", True), ("partial", False)):
        results = run_cell(
            setup,
            lambda: OneAtATimeInterval(d_beta=12.0),
            runs=runs,
            seed0=50_000,
            full_fulfillment=full,
        )
        table.add(aggregate(label, results, setup.exact_count).row())
    table.notes.append(
        "full evaluates new×old cross-stage block pairs (more points per "
        "drawn block); partial evaluates only new×new (cheaper stages)"
    )
    return table


def ablation_adaptive_cost(runs: int = 100, seed: int = 0) -> Table:
    """A3 — adaptive vs frozen (fixed-form) cost-formula coefficients."""
    setup = make_selection_setup(output_tuples=1_000, seed=seed)
    table = Table(
        title=f"A3 — Adaptive vs fixed cost formulas (selection, quota {setup.quota:g}s)",
        columns=["formulas", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"],
    )
    for label, adaptive in (("adaptive", True), ("fixed-form", False)):
        results = []
        for i in range(runs):
            results.append(
                setup.database.estimate(
                    setup.query,
                    quota=setup.quota,
                    strategy=OneAtATimeInterval(d_beta=12.0),
                    cost_model=CostModel(adaptive=adaptive),
                    seed=60_000 + i,
                )
            )
        table.add(aggregate(label, results, setup.exact_count).row())
    table.notes.append(
        "fixed-form keeps the designer priors (initialised for worst-case "
        "tuples, Section 5), so stages are sized from miscalibrated costs"
    )
    return table


def ablation_variance_formula(
    samples: int = 400, blocks_per_draw: int = 20, seed: int = 0
) -> Table:
    """A4 — SRS variance approximation vs the true cluster variance.

    The prototype approximates the cluster-plan variance with the simple-
    random-sampling formula because the true formula is too expensive;
    "usually the approximation gives a smaller value … some inaccuracy in
    the risk control is expected" (Section 3.3), which is why the d_β values
    of Section 5 dwarf normal-table quantiles.

    This ablation quantifies when that matters. Two physical layouts of the
    same selection relation:

    * **random layout** — the paper's experimental relations ("tuples in a
      relation are randomly distributed"): block membership is independent
      of values, so the SRS approximation is nearly unbiased;
    * **clustered layout** — tuples sorted by the selected attribute, the
      adversarial case: whole blocks are all-hit or all-miss, the cluster
      variance explodes, and the SRS formula understates it severely.

    For each layout the table reports the empirical estimator variance over
    many independent block draws, the mean cluster-variance estimate, the
    mean SRS-approximation, and the SRS/empirical ratio.
    """
    rng = np.random.default_rng(seed + 1)
    threshold = 1_000
    table = Table(
        title="A4 — Variance formulas for the cluster sampling plan (selection)",
        columns=["layout", "empirical", "cluster est.", "SRS approx.", "SRS/empirical"],
    )

    def measure(relation) -> list[str]:
        a_index = relation.schema.index_of("a")
        estimates, cluster_vars, srs_vars = [], [], []
        for _ in range(samples):
            block_ids = rng.choice(
                relation.block_count, size=blocks_per_draw, replace=False
            )
            block_ones = []
            sampled = ones = 0
            for block_id in block_ids:
                rows = relation.block_rows_uncharged(int(block_id))
                y = sum(1 for r in rows if r[a_index] < threshold)
                block_ones.append(y)
                sampled += len(rows)
                ones += y
            est_cluster = cluster_count_estimate(relation.block_count, block_ones)
            est_srs = srs_count_estimate(relation.tuple_count, sampled, ones)
            estimates.append(est_cluster.value)
            cluster_vars.append(est_cluster.variance)
            srs_vars.append(est_srs.variance)
        empirical = float(np.var(estimates, ddof=1))
        srs_mean = float(np.mean(srs_vars))
        return [
            f"{empirical:.0f}",
            f"{float(np.mean(cluster_vars)):.0f}",
            f"{srs_mean:.0f}",
            f"{srs_mean / empirical:.3f}" if empirical > 0 else "inf",
        ]

    setup = make_selection_setup(output_tuples=threshold, seed=seed)
    table.add(["random"] + measure(setup.database.relation("r1")))

    from repro.core.database import Database

    clustered_db = Database(seed=seed)
    rows = selection_relation(
        np.random.default_rng(seed), output_tuples=threshold
    )
    clustered_db.create_relation(
        "r1", paper_schema(), sorted(rows, key=lambda r: r[1])
    )
    table.add(["clustered"] + measure(clustered_db.relation("r1")))
    table.notes.append(
        f"{samples} draws of {blocks_per_draw} blocks; estimator Ŷ_b = B·ȳ"
    )
    table.notes.append(
        "SRS/empirical ≪ 1 on the clustered layout is the approximation "
        "error the paper's large d_β values compensate for"
    )
    return table


def ablation_estimator_quality(
    fractions: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2),
    runs: int = 60,
    seed: int = 0,
) -> Table:
    """A5a — û(E) consistency: relative error versus sample fraction."""
    table = Table(
        title="A5a — Estimator consistency (mean |rel.err| vs sample fraction)",
        columns=["fraction", "selection", "join", "intersection"],
    )
    setups = {
        "selection": make_selection_setup(output_tuples=1_000, seed=seed),
        "join": make_join_setup(seed=seed),
        "intersection": make_intersection_setup(seed=seed),
    }

    def mean_error(setup: PaperSetup, fraction: float) -> float:
        from repro.engine.plan import StagedPlan
        from repro.timekeeping.charger import CostCharger
        from repro.timekeeping.profile import MachineProfile

        errors = []
        for i in range(runs):
            rng = np.random.default_rng(70_000 + i)
            charger = CostCharger(MachineProfile.uniform(0.0), rng=rng)
            plan = StagedPlan(
                setup.query,
                setup.database.catalog,
                charger,
                CostModel(),
                rng,
            )
            plan.advance_stage(fraction)
            value = plan.estimate().value
            errors.append(abs(value - setup.exact_count) / setup.exact_count)
        return sum(errors) / len(errors)

    for fraction in fractions:
        table.add(
            [f"{fraction:g}"]
            + [f"{mean_error(setups[k], fraction):.3f}" for k in setups]
        )
    table.notes.append(f"{runs} independent single-stage samples per cell")
    return table


def ablation_distinct_estimators(
    fraction: float = 0.1, runs: int = 60, seed: int = 0
) -> Table:
    """A5b — Goodman (revised) vs Chao1 vs jackknife on a projection."""
    from repro.core.database import Database
    from repro.relational.expression import project, rel

    db = Database(seed=seed)
    rng = np.random.default_rng(seed)
    rows = zipf_relation(rng, tuples=10_000, a_range=500, skew=1.4)
    db.create_relation("r1", paper_schema(), rows)
    true_distinct = count_exact(project(rel("r1"), ["a"]), db.catalog)
    relation = db.relation("r1")
    a_index = relation.schema.index_of("a")
    n_blocks = max(1, int(fraction * relation.block_count))

    sums = {"goodman": 0.0, "chao1": 0.0, "jackknife1": 0.0, "observed": 0.0}
    draw_rng = np.random.default_rng(seed + 99)
    for _ in range(runs):
        ids = draw_rng.choice(relation.block_count, size=n_blocks, replace=False)
        values: dict[int, int] = {}
        sampled = 0
        for block_id in ids:
            for row in relation.block_rows_uncharged(int(block_id)):
                values[row[a_index]] = values.get(row[a_index], 0) + 1
                sampled += 1
        occupancy = list(values.values())
        sums["goodman"] += goodman_estimate(
            relation.tuple_count, sampled, occupancy, rng=draw_rng
        ).value
        sums["chao1"] += chao1(occupancy)
        sums["jackknife1"] += jackknife1(sampled, occupancy)
        sums["observed"] += len(occupancy)

    table = Table(
        title="A5b — Distinct-count estimators (Zipf-skewed projection)",
        columns=["estimator", "mean estimate", "true", "bias%"],
    )
    for name in ("observed", "goodman", "chao1", "jackknife1"):
        mean = sums[name] / runs
        bias = 100.0 * (mean - true_distinct) / true_distinct
        table.add([name, f"{mean:.1f}", str(true_distinct), f"{bias:+.1f}"])
    table.notes.append(
        f"{runs} draws of {n_blocks} blocks (fraction {fraction:g})"
    )
    return table


def ablation_selectivity_sources(runs: int = 100, seed: int = 0) -> Table:
    """A7 — run-time vs prestored vs hybrid selectivity estimation.

    The first implementation decision of Figure 3.2. The paper chose
    run-time estimation for its flexibility and notes prestored statistics
    suit only fixed query mixes; the hybrid (prestored initial values,
    run-time refinement) combines both. Expected shape: hybrid sizes stage 1
    correctly (fewer stages, more blocks); pure prestored has no risk margin
    and no refinement, so its risk is the worst of the three.
    """
    setup = make_join_setup(seed=seed)
    setup.database.analyze()
    table = Table(
        title=f"A7 — Selectivity sources (join, quota {setup.quota:g}s)",
        columns=["source", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"],
    )
    for source in ("runtime", "hybrid", "prestored"):
        results = []
        for i in range(runs):
            results.append(
                setup.database.estimate(
                    setup.query,
                    quota=setup.quota,
                    strategy=OneAtATimeInterval(d_beta=12.0),
                    seed=90_000 + i,
                    selectivity_source=source,
                    initial_selectivities=setup.initial_selectivities,
                )
            )
        table.add(aggregate(source, results, setup.exact_count).row())
    table.notes.append(
        "hybrid = prestored initial selectivities + run-time refinement; "
        "prestored = pinned histogram estimates, no margins"
    )
    return table


def ablation_memory_resident(runs: int = 100, seed: int = 0) -> Table:
    """A8 — disk-resident vs main-memory sample evaluation (Section 4).

    The paper keeps all intermediate relations on disk but announces a
    main-memory variant and predicts it "will be very promising for
    real-time database applications". This ablation runs the intersection
    workload (the most I/O-bound: temp writes + sorts + cross-stage merges)
    on both machine variants; block reads cost the same, only the
    processing of the samples moves to memory.
    """
    from repro.timekeeping.profile import MachineProfile

    table = Table(
        title="A8 — Disk-resident vs main-memory evaluation (intersection)",
        columns=["variant", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"],
    )
    for label, profile in (
        ("disk", MachineProfile.sun3_60()),
        ("main-memory", MachineProfile.sun3_60_main_memory()),
    ):
        setup = make_intersection_setup(seed=seed, profile=profile)
        results = run_cell(
            setup,
            lambda: OneAtATimeInterval(d_beta=12.0),
            runs=runs,
            seed0=95_000,
        )
        table.add(aggregate(label, results, setup.exact_count).row())
    table.notes.append(
        "same disk (block reads unchanged); temp I/O ~20x and per-tuple "
        "processing ~3x cheaper in the main-memory variant"
    )
    return table


def ablation_zero_fix(runs: int = 100, seed: int = 0) -> Table:
    """A9 — sensitivity to the zero-selectivity bound's β (our substitution).

    The paper fixes the zero-output-stage problem with a combinatorial
    formula from the unavailable tech report; DESIGN.md §3 documents our
    closed-form substitute ``sel = 1 − β^{1/M}``. This ablation sweeps β on
    the workload where zero-output stages dominate (intersection: ~0.16
    expected sample matches per early stage) so the substitution's one free
    parameter is an audited choice, not a hidden one. Small β = conservative
    bound (larger phantom selectivity, smaller stages); β near 1 = aggressive
    (bound hugs zero, stages gamble like d_β = 0).
    """
    setup = make_intersection_setup(seed=seed)
    table = Table(
        title=f"A9 — Zero-selectivity bound β (intersection, quota {setup.quota:g}s)",
        columns=["beta", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"],
    )
    for beta in (0.01, 0.05, 0.25, 0.5, 0.9):
        results = run_cell(
            setup,
            lambda: OneAtATimeInterval(d_beta=12.0),
            runs=runs,
            seed0=97_000,
            zero_fix_beta=beta,
        )
        table.add(aggregate(f"{beta:g}", results, setup.exact_count).row())
    table.notes.append(
        "bound: largest selectivity with P(zero output in M points) >= beta"
    )
    return table


def ablation_stopping(runs: int = 100, seed: int = 0) -> Table:
    """A6 — stopping criteria on the selection workload."""
    setup = make_selection_setup(output_tuples=1_000, seed=seed)
    table = Table(
        title=f"A6 — Stopping criteria (selection, quota {setup.quota:g}s)",
        columns=["criterion", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"],
    )
    criteria = [
        ("hard deadline", HardDeadline(), True),
        ("soft deadline", SoftDeadline(), True),
        (
            "error<=35% @95",
            ErrorConstrained(target_relative_halfwidth=0.35),
            True,
        ),
        (
            "error, stall=3",
            ErrorConstrained(
                target_relative_halfwidth=0.05, stall_stages=3, stall_tolerance=0.02
            ),
            True,
        ),
        (
            "value function",
            ValueFunction(
                value=lambda t: max(0.0, 1.0 - max(t - 5.0, 0.0) / 5.0)
            ),
            True,
        ),
    ]
    for label, criterion, measure in criteria:
        results = []
        for i in range(runs):
            results.append(
                setup.database.estimate(
                    setup.query,
                    quota=setup.quota,
                    strategy=OneAtATimeInterval(d_beta=24.0),
                    stopping=criterion,
                    measure_overspend=measure,
                    seed=80_000 + i,
                )
            )
        table.add(aggregate(label, results, setup.exact_count).row())
    table.notes.append(
        "error-constrained rows may stop early: utilization below 100% "
        "with zero risk means the precision target was met"
    )
    return table
