"""Experiment harness regenerating every evaluation table (system S17)."""

from repro.experiments.ablations import (
    ablation_adaptive_cost,
    ablation_distinct_estimators,
    ablation_estimator_quality,
    ablation_fulfillment,
    ablation_memory_resident,
    ablation_selectivity_sources,
    ablation_stopping,
    ablation_strategies,
    ablation_variance_formula,
    ablation_zero_fix,
)
from repro.experiments.formatting import PAPER_COLUMNS, Table
from repro.experiments.runner import CellResult, aggregate, run_cell
from repro.experiments.tables import (
    PAPER_FIGURE_5_1,
    PAPER_FIGURE_5_2,
    PAPER_FIGURE_5_3,
    all_tables,
    figure_5_1,
    figure_5_2,
    figure_5_3,
)

__all__ = [
    "CellResult",
    "PAPER_COLUMNS",
    "PAPER_FIGURE_5_1",
    "PAPER_FIGURE_5_2",
    "PAPER_FIGURE_5_3",
    "Table",
    "ablation_adaptive_cost",
    "ablation_distinct_estimators",
    "ablation_estimator_quality",
    "ablation_fulfillment",
    "ablation_memory_resident",
    "ablation_selectivity_sources",
    "ablation_stopping",
    "ablation_strategies",
    "ablation_variance_formula",
    "ablation_zero_fix",
    "aggregate",
    "all_tables",
    "figure_5_1",
    "figure_5_2",
    "figure_5_3",
    "run_cell",
]
