"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A titled text table with optional per-table notes."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, row: Sequence[str]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        lines = [self.title, "=" * len(self.title), fmt(self.columns)]
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


PAPER_COLUMNS = ["d_beta", "stages", "risk%", "ovsp", "util%", "blocks", "rel.err"]
"""Column layout shared by the three reproduced tables."""
