"""Disk blocks.

A :class:`DiskBlock` is the paper's sampling unit: "a disk block is taken as
a sample unit (i.e., all the tuples in a disk block are taken as a whole)"
(Section 2). In the experiments each block is 1 KB and holds 5 tuples of
200 bytes; here capacity derives from the owning relation's schema and the
configured block size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    import numpy as np

    from repro.catalog.schema import Schema

Row = tuple[Any, ...]


@dataclass
class DiskBlock:
    """One fixed-capacity block of tuples."""

    block_id: int
    capacity: int
    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise StorageError(f"block capacity must be positive: {self.capacity}")
        if len(self.rows) > self.capacity:
            raise StorageError(
                f"block {self.block_id} holds {len(self.rows)} rows "
                f"but capacity is {self.capacity}"
            )

    @property
    def is_full(self) -> bool:
        return len(self.rows) >= self.capacity

    def append(self, row: Row) -> None:
        """Add ``row``; raises ``StorageError`` if the block is full."""
        if self.is_full:
            raise StorageError(f"block {self.block_id} is full")
        self.rows.append(row)

    def columns(self, schema: "Schema") -> "list[np.ndarray]":
        """Decode the block into one typed NumPy array per attribute.

        The columnar view the kernel layer (:mod:`repro.kernels`) consumes;
        uncharged, because decoding is host-side representation work — the
        simulated block I/O was already charged by the read that produced
        the rows.
        """
        from repro.kernels.columns import columnize

        return columnize(self.rows, schema)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)
