"""The buffer pool — decoded blocks cached and shared across queries.

The engine charges *simulated* time for every sampled block (the paper's
dominant ``BLOCK_READ`` term) — but on the wall-clock side each stage used
to re-materialize Python row tuples and re-run :func:`~repro.kernels.
columns.columnize` even when the very same block was decoded moments ago
by an earlier stage, a salvage retry, or a concurrent server request over
the same relation. :class:`BufferPool` is a process-wide, thread-safe
buffer manager that caches, per ``(relation name, size fingerprint,
block_id)``, both the raw row tuples and their lazily decoded columnar
arrays, so the decode happens once and every later reader shares it.

The hard contract (invariant 9 in ``docs/architecture.md``): **charged
simulated costs, estimates, stage schedules, and traces are bit-identical
with the pool on or off.** Concretely:

* every sampled block is still charged one full ``BLOCK_READ`` — a cache
  hit is a wall-clock shortcut, never a cost-model change;
* the fault injector is consulted per block in the exact same order on
  hits and misses, so injected-fault replay streams are untouched;
* a faulted read is **never admitted** — the injector runs *before* the
  lookup/admit step, so an :class:`~repro.errors.InjectedFault` (or a
  deadline raise from a slow-read stall) propagates with the cache
  unchanged;
* buffer events go to the pool's **own** sink, never the session's trace
  sink. :class:`~repro.server.QueryServer` routes them to its metrics
  stream only for the duration of its own processing
  (:meth:`BufferPool.route_events`), and a sink that raises is dropped
  silently — observability can never alter execution.

Keys embed a per-:class:`~repro.storage.heapfile.HeapFile` storage token
plus the relation's tuple/block counts, so two relations that happen to
share a name (separate :class:`~repro.core.database.Database` instances,
drop-and-recreate) can never alias each other's blocks. Committed
mutations additionally evict explicitly through
:func:`invalidate_bufferpool_relation`, which
:meth:`~repro.core.database.Database.append_rows` / ``drop_relation`` (and
therefore realtime :class:`~repro.realtime.transaction.WriteTask` commits)
call alongside plan-cache and synopsis invalidation.

Capacity is a bounded LRU over block entries; entries referenced by a live
:class:`PooledBatch` are *pinned* (refcounted, released by a weakref
finalizer when the batch is garbage-collected) and skipped by eviction, so
a stage can never lose the columns it is actively filtering.
"""

from __future__ import annotations

import itertools
import threading
import warnings
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.catalog.schema import Schema
from repro.kernels.columns import ColumnBatch, column_array
from repro.observability.trace import NULL_SINK, TraceSink
from repro.storage.block import Row
from repro.storage.events import BufferEvicted, BufferHit, BufferInvalidated

if TYPE_CHECKING:
    from repro.storage.heapfile import HeapFile

DEFAULT_CAPACITY = 4096
"""Default LRU capacity in block entries (≈ 4k blocks of rows + columns)."""

_pool_ids = itertools.count(1)

PoolKey = tuple[str, str, int]
"""``(relation name, size fingerprint, block_id)``."""


@dataclass(frozen=True)
class BufferPoolInfo:
    """Counters in the style of ``functools.lru_cache``'s ``cache_info``,
    extended with the pool's eviction/invalidation/pin bookkeeping."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    evictions: int
    invalidations: int
    pinned: int


class _BlockEntry:
    """One resident block: its row tuple plus lazily decoded columns."""

    __slots__ = ("key", "rows", "schema", "pins", "_cols")

    def __init__(self, key: PoolKey, rows: tuple[Row, ...], schema: Schema) -> None:
        self.key = key
        self.rows = rows
        self.schema = schema
        self.pins = 0
        self._cols: dict[int, np.ndarray] = {}

    def column(self, position: int) -> np.ndarray:
        """This block's array for attribute ``position`` (decoded once)."""
        col = self._cols.get(position)
        if col is None:
            attr = self.schema.attributes[position]
            col = column_array([r[position] for r in self.rows], attr.type)
            self._cols[position] = col
        return col


class PooledBatch(ColumnBatch):
    """A :class:`~repro.kernels.columns.ColumnBatch` whose columns come
    from pooled per-block arrays instead of a fresh decode.

    ``rows`` stays the authoritative flat row list (identical, element for
    element, to what the unpooled read returns), so everything downstream
    of the scan — estimates, charges, traces — is untouched. Only
    :meth:`column` changes: it concatenates the blocks' cached arrays
    (decoding each block at most once, pool-wide) instead of re-decoding
    the stage's rows. Mixed per-block dtypes concatenate to the widest
    (``int64`` + ``object`` → ``object``, ``<U3`` + ``<U5`` → ``<U5``),
    preserving exact comparison semantics.
    """

    __slots__ = ("_entries", "__weakref__")

    def __init__(
        self,
        rows: Sequence[Row],
        schema: Schema,
        entries: Sequence[_BlockEntry],
    ) -> None:
        super().__init__(rows, schema)
        self._entries = tuple(entries)

    def column(self, position: int) -> np.ndarray:
        col = self._cols.get(position)
        if col is None:
            if not self._entries:
                attr = self.schema.attributes[position]
                col = column_array((), attr.type)
            elif len(self._entries) == 1:
                col = self._entries[0].column(position)
            else:
                col = np.concatenate(
                    [e.column(position) for e in self._entries]
                )
            self._cols[position] = col
        return col


class BufferPool:
    """A thread-safe, capacity-bounded LRU over decoded disk blocks."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: TraceSink | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"buffer pool capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.sink: TraceSink = sink if sink is not None else NULL_SINK
        self.label = f"bufferpool-{next(_pool_ids)}"
        self._lock = threading.RLock()
        self._entries: "OrderedDict[PoolKey, _BlockEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        _all_pools.add(self)

    # ------------------------------------------------------------------
    # Lookup / admission (called by HeapFile after charge + injector)
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(relation: "HeapFile") -> str:
        """Identity of the relation *contents* a key was built against.

        The per-heap storage token distinguishes same-named relations from
        different databases (or a drop-and-recreate); the size components
        make a grown heap miss naturally even before the explicit
        mutation-time eviction lands.
        """
        return (
            f"{relation.storage_token}:"
            f"{relation.tuple_count}:{relation.block_count}"
        )

    def get_or_admit(
        self, relation: "HeapFile", block_id: int
    ) -> tuple[_BlockEntry, bool]:
        """The resident entry for one block, admitting it on miss.

        Returns ``(entry, hit)``. Must be called only after the block's
        ``BLOCK_READ`` was charged and the fault injector consulted: a
        read that raised never reaches this point, so faulted reads are
        never admitted.
        """
        key = (relation.name, self.fingerprint(relation), block_id)
        evicted: list[_BlockEntry] = []
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry, True
            self._misses += 1
            entry = _BlockEntry(
                key, tuple(relation.block_rows_uncharged(block_id)), relation.schema
            )
            self._entries[key] = entry
            # Evict LRU-first, skipping pinned entries (a stage holds a
            # live reference to their columns); the pool may transiently
            # exceed capacity when everything resident is pinned.
            if len(self._entries) > self.capacity:
                for candidate_key in list(self._entries):
                    if len(self._entries) <= self.capacity:
                        break
                    candidate = self._entries[candidate_key]
                    if candidate.pins > 0 or candidate_key == key:
                        continue
                    del self._entries[candidate_key]
                    evicted.append(candidate)
                self._evictions += len(evicted)
        for victim in evicted:
            self._emit(
                BufferEvicted(relation=victim.key[0], block_id=victim.key[2])
            )
        return entry, False

    def note_read(
        self, relation_name: str, blocks: int, hits: int, misses: int
    ) -> None:
        """Report one batched read's hit/miss split to the pool's sink."""
        if blocks:
            self._emit(
                BufferHit(
                    relation=relation_name,
                    blocks=blocks,
                    hits=hits,
                    misses=misses,
                )
            )

    def _emit(self, event) -> None:
        """Emit to the pool's sink, swallowing sink failures.

        Buffer events are pure observability; a broken sink (say, a
        JSONL file closed after its server was torn down) must never
        leak an exception into a query that happened to touch the pool —
        that would violate the on/off bit-identity contract.
        """
        try:
            self.sink.emit(event)
        except Exception:
            pass

    @contextmanager
    def route_events(self, sink: TraceSink) -> Iterator["BufferPool"]:
        """Route this pool's events to ``sink`` for the scope's duration.

        Servers use this instead of reassigning :attr:`sink` permanently:
        a shared pool outlives any one :class:`~repro.server.QueryServer`,
        and events raised while *this* server runs belong on *its* metrics
        stream — not whichever server was constructed last.
        """
        previous = self.sink
        self.sink = sink
        try:
            yield self
        finally:
            self.sink = previous

    # ------------------------------------------------------------------
    # Pinning (entries referenced by a live PooledBatch)
    # ------------------------------------------------------------------
    def batch(
        self,
        rows: Sequence[Row],
        schema: Schema,
        entries: Sequence[_BlockEntry],
    ) -> PooledBatch:
        """A columnar batch over pooled entries, pinned while it lives."""
        batch = PooledBatch(rows, schema, entries)
        if entries:
            self.pin(entries)
            weakref.finalize(batch, self.unpin, tuple(entries))
        return batch

    def pin(self, entries: Sequence[_BlockEntry]) -> None:
        with self._lock:
            for entry in entries:
                entry.pins += 1

    def unpin(self, entries: Sequence[_BlockEntry]) -> None:
        with self._lock:
            for entry in entries:
                entry.pins = max(0, entry.pins - 1)

    # ------------------------------------------------------------------
    # Invalidation and introspection
    # ------------------------------------------------------------------
    def invalidate_relation(self, name: str) -> int:
        """Drop every entry of relation ``name`` (any fingerprint).

        Called on committed mutations, in the same breath as plan-cache
        and synopsis invalidation. Pinned entries are dropped from the
        pool too: a batch already holding them keeps its (pre-mutation)
        arrays alive, but no future read can see them. Entries admitted
        under the relation's shard views (``"<name>/shard<i>"``, see
        :class:`~repro.storage.partitioned.HeapShard`) are dropped in the
        same sweep. Returns the number of entries dropped.
        """
        shard_prefix = name + "/shard"
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if key[0] == name or key[0].startswith(shard_prefix)
            ]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
        if doomed:
            self._emit(BufferInvalidated(relation=name, entries=len(doomed)))
        return len(doomed)

    def info(self) -> BufferPoolInfo:
        """Current counters, ``lru_cache.cache_info()``-style."""
        with self._lock:
            return BufferPoolInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self.capacity,
                currsize=len(self._entries),
                evictions=self._evictions,
                invalidations=self._invalidations,
                pinned=sum(1 for e in self._entries.values() if e.pins > 0),
            )

    def clear(self) -> None:
        """Drop all entries and reset counters (tests; catalog reloads)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._invalidations = 0

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"BufferPool({self.label}, {info.currsize}/{info.maxsize} blocks, "
            f"hits={info.hits}, misses={info.misses})"
        )


# ----------------------------------------------------------------------
# Process-wide default pool + the unified cache-introspection surface
# ----------------------------------------------------------------------
_all_pools: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()

_DEFAULT_POOL = BufferPool()


def default_pool() -> BufferPool:
    """The process-wide pool sessions share when ``REPRO_BUFFERPOOL`` is on."""
    return _DEFAULT_POOL


def _bufferpool_cache_info() -> BufferPoolInfo:
    """Counters of the process-wide default pool (non-deprecated impl)."""
    return _DEFAULT_POOL.info()


def _clear_bufferpool_cache() -> None:
    """Drop all entries of the default pool and reset its counters."""
    _DEFAULT_POOL.clear()


def bufferpool_cache_info() -> BufferPoolInfo:
    """Deprecated alias — use ``repro.caches.get("bufferpool").info()``."""
    warnings.warn(
        "bufferpool_cache_info() is deprecated; use "
        "repro.caches.get('bufferpool').info() or repro.caches.info()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _bufferpool_cache_info()


def clear_bufferpool_cache() -> None:
    """Deprecated alias — use ``repro.caches.get("bufferpool").clear()``."""
    warnings.warn(
        "clear_bufferpool_cache() is deprecated; use "
        "repro.caches.get('bufferpool').clear() or repro.caches.clear()",
        DeprecationWarning,
        stacklevel=2,
    )
    _clear_bufferpool_cache()


def invalidate_bufferpool_relation(name: str) -> int:
    """Evict relation ``name`` from **every** live pool (default + custom).

    Mutation safety must not depend on which pool instance a session was
    configured with, so committed mutations broadcast. Returns the total
    number of entries dropped across pools.
    """
    dropped = 0
    for pool in list(_all_pools):
        dropped += pool.invalidate_relation(name)
    return dropped
