"""Typed trace events of the buffer pool.

Like the serving layer (:mod:`repro.server.events`) and the synopsis
catalog (:mod:`repro.synopses.events`), the buffer pool reports its
decisions through the observability stream: how many of a read's blocks
were already resident, which entries the LRU evicted, and which a relation
mutation threw away. All three events are registered with
:func:`~repro.observability.register_event_type`, so JSONL traces
containing them round-trip through
:func:`~repro.observability.trace.event_from_dict`.

Buffer events deliberately do **not** flow into per-session trace sinks:
the pool is a wall-clock optimization and session traces must stay
bit-identical with the pool on or off (invariant 9 in
``docs/architecture.md``). They go to the pool's *own* sink, which
:class:`~repro.server.QueryServer` routes onto its metrics stream for the
duration of its own processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.observability.trace import TraceEvent, register_event_type


@register_event_type
@dataclass(frozen=True)
class BufferHit(TraceEvent):
    """One batched block read consulted the pool.

    Emitted once per :meth:`~repro.storage.heapfile.HeapFile.read_blocks`
    call that went through a pool (not once per block, keeping event volume
    at one per scan stage); ``hits``/``misses`` split the read's blocks
    into already-resident and freshly admitted.
    """

    kind: ClassVar[str] = "buffer_hit"
    relation: str = ""
    blocks: int = 0
    hits: int = 0
    misses: int = 0


@register_event_type
@dataclass(frozen=True)
class BufferEvicted(TraceEvent):
    """The capacity-bounded LRU evicted one unpinned block entry."""

    kind: ClassVar[str] = "buffer_evicted"
    relation: str = ""
    block_id: int = 0


@register_event_type
@dataclass(frozen=True)
class BufferInvalidated(TraceEvent):
    """A relation mutation dropped every pooled entry of that relation."""

    kind: ClassVar[str] = "buffer_invalidated"
    relation: str = ""
    entries: int = 0


@register_event_type
@dataclass(frozen=True)
class ShardScanStarted(TraceEvent):
    """One shard's portion of a sharded stage read.

    Unlike buffer events, shard events **do** flow into per-session trace
    sinks: invariant 10 pins estimates, charged costs, and stage schedules
    bit-identical partitions on/off, but explicitly lets traces differ by
    these shard markers. ``seed`` is the shard's derived stream identity
    (:func:`~repro.sampling.derive_shard_rng` seeded from the session seed
    without consuming the session stream).
    """

    kind: ClassVar[str] = "shard_scan_started"
    relation: str = ""
    shard: int = 0
    stage: int = 0
    blocks: int = 0
    tuples: int = 0
    seed: int = 0


@register_event_type
@dataclass(frozen=True)
class ShardMerged(TraceEvent):
    """Per-shard results of one stage merged back in global draw order."""

    kind: ClassVar[str] = "shard_merged"
    relation: str = ""
    stage: int = 0
    shards: int = 0
    blocks: int = 0
    tuples: int = 0
