"""Simulated-disk storage substrate (system S1)."""

from repro.storage.block import DiskBlock, Row
from repro.storage.heapfile import DEFAULT_BLOCK_SIZE, HeapFile
from repro.storage.spool import Spool, SpoolFile

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DiskBlock",
    "HeapFile",
    "Row",
    "Spool",
    "SpoolFile",
]
