"""Simulated-disk storage substrate (system S1)."""

from repro.storage.block import DiskBlock, Row
from repro.storage.bufferpool import (
    BufferPool,
    BufferPoolInfo,
    PooledBatch,
    bufferpool_cache_info,
    clear_bufferpool_cache,
    default_pool,
    invalidate_bufferpool_relation,
)
from repro.storage.events import BufferEvicted, BufferHit, BufferInvalidated
from repro.storage.heapfile import DEFAULT_BLOCK_SIZE, HeapFile
from repro.storage.spool import Spool, SpoolFile

__all__ = [
    "BufferEvicted",
    "BufferHit",
    "BufferInvalidated",
    "BufferPool",
    "BufferPoolInfo",
    "DEFAULT_BLOCK_SIZE",
    "DiskBlock",
    "HeapFile",
    "PooledBatch",
    "Row",
    "Spool",
    "SpoolFile",
    "bufferpool_cache_info",
    "clear_bufferpool_cache",
    "default_pool",
    "invalidate_bufferpool_relation",
]
