"""Partitioned heap files — one relation split into K deterministic shards.

Serving the paper's per-query guarantee to many users means one relation
can no longer be a single :class:`~repro.storage.heapfile.HeapFile` scanned
by one worker. BlinkDB-style bounded-time answers rest on striped storage
sampled in parallel, and sampling-algebra results show unbiased estimators
compose across independently sampled fragments — exactly what the staged
estimators need to merge per-shard results without bias.

:class:`PartitionedHeapFile` keeps the *global* block layout of a plain
heap file — rows pack densely into the same blocks, in the same order, with
the same global block ids — and layers a deterministic block→shard
assignment on top (``round_robin``: ``block_id % K``; ``hash``: a
splitmix64 bit-mix of the block id modulo ``K``). Because block identity
and content are untouched, the global :class:`~repro.sampling.BlockSampler`
permutation, every drawn block, and every charged ``BLOCK_READ`` are
*structurally* identical to the unsharded run — the heart of invariant 10
(``docs/architecture.md``): partitions on/off produce bit-identical
estimates, charged costs, and stage schedules.

Each shard is a :class:`HeapShard` view with its own name
(``"<relation>/shard<i>"``) and its own storage token, so the buffer pool
keys shard blocks separately from whole-relation blocks and committed
mutations can evict by name prefix.

:meth:`PartitionedHeapFile.read_sharded` is the parallel read path: shard
workers (a shared thread pool) materialize/admit each shard's blocks
concurrently — a pure wall-clock optimization — while the main thread
replays the reference per-block sequence (bounds check → ``BLOCK_READ``
charge → fault injector → pool lookup) in global draw order, so simulated
costs and fault streams never depend on worker scheduling. With a fault
injector active the read degrades to the fully serial reference loop: the
"faulted read is never admitted" contract requires the injector to run
before each block's admission.

The block→shard assignment table is memoized process-wide in the **shard
metadata cache** (``repro.caches`` handle ``"shards"``): assignments depend
only on ``(relation name, block count, K, strategy)``, so repeated
loads/appends and look-alike relations across databases share one
computation. Committed mutations invalidate by relation name alongside the
plan-cache/synopsis/buffer-pool invalidation.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.catalog.schema import Schema
from repro.errors import StorageError
from repro.storage.block import Row
from repro.storage.heapfile import DEFAULT_BLOCK_SIZE, HeapFile, _storage_tokens
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind

if TYPE_CHECKING:
    from repro.kernels.columns import ColumnBatch
    from repro.storage.bufferpool import BufferPool

    from repro.faults.injector import FaultInjector

PARTITION_STRATEGIES = ("round_robin", "hash")
"""Deterministic block→shard assignment strategies."""


def _mix64(value: int) -> int:
    """The splitmix64 finalizer — a deterministic 64-bit bit-mix.

    Used by the ``hash`` strategy so shard membership scatters block ids
    without depending on Python's randomized ``hash()``.
    """
    z = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


@dataclass(frozen=True)
class PartitionAssignment:
    """The immutable block→shard map for one relation geometry."""

    shard_of_block: tuple[int, ...]
    """Global block id → shard index."""

    local_ids: tuple[int, ...]
    """Global block id → the block's id *within* its shard."""

    shard_blocks: tuple[tuple[int, ...], ...]
    """Shard index → that shard's global block ids, ascending."""


def _compute_assignment(
    block_count: int, partitions: int, strategy: str
) -> PartitionAssignment:
    shard_of_block: list[int] = []
    local_ids: list[int] = []
    shard_blocks: list[list[int]] = [[] for _ in range(partitions)]
    for block_id in range(block_count):
        if strategy == "round_robin":
            shard = block_id % partitions
        else:  # "hash"
            shard = _mix64(block_id) % partitions
        shard_of_block.append(shard)
        local_ids.append(len(shard_blocks[shard]))
        shard_blocks[shard].append(block_id)
    return PartitionAssignment(
        shard_of_block=tuple(shard_of_block),
        local_ids=tuple(local_ids),
        shard_blocks=tuple(tuple(blocks) for blocks in shard_blocks),
    )


# ----------------------------------------------------------------------
# Shard metadata cache (the "shards" handle in repro.caches)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardCacheInfo:
    """Counters in the style of ``lru_cache.cache_info()``, plus the
    mutation-invalidation count."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    invalidations: int


_META_MAXSIZE = 128
_meta_lock = threading.Lock()
_MetaKey = tuple[str, int, int, str]
_meta: "OrderedDict[_MetaKey, PartitionAssignment]" = OrderedDict()
_meta_hits = 0
_meta_misses = 0
_meta_invalidations = 0


def _assignment_for(
    name: str, block_count: int, partitions: int, strategy: str
) -> PartitionAssignment:
    """The memoized assignment for one relation geometry (LRU, locked)."""
    global _meta_hits, _meta_misses
    key = (name, block_count, partitions, strategy)
    with _meta_lock:
        cached = _meta.get(key)
        if cached is not None:
            _meta.move_to_end(key)
            _meta_hits += 1
            return cached
        _meta_misses += 1
    assignment = _compute_assignment(block_count, partitions, strategy)
    with _meta_lock:
        _meta[key] = assignment
        while len(_meta) > _META_MAXSIZE:
            _meta.popitem(last=False)
    return assignment


def shard_cache_info() -> ShardCacheInfo:
    """Counters of the process-wide shard metadata cache."""
    with _meta_lock:
        return ShardCacheInfo(
            hits=_meta_hits,
            misses=_meta_misses,
            maxsize=_META_MAXSIZE,
            currsize=len(_meta),
            invalidations=_meta_invalidations,
        )


def clear_shard_cache() -> None:
    """Drop all cached assignments and reset the counters (tests)."""
    global _meta_hits, _meta_misses, _meta_invalidations
    with _meta_lock:
        _meta.clear()
        _meta_hits = 0
        _meta_misses = 0
        _meta_invalidations = 0


def invalidate_shard_cache_relation(name: str) -> int:
    """Drop every cached assignment of relation ``name``.

    Called by committed mutations (``append_rows`` / ``drop_relation`` /
    realtime ``WriteTask``) alongside plan-cache, synopsis, and buffer-pool
    invalidation. Assignments are content-free (they depend only on the
    block count), so this is hygiene rather than correctness — a stale
    entry could never be *wrong*, only unreachable. Returns the number of
    entries dropped.
    """
    global _meta_invalidations
    with _meta_lock:
        doomed = [key for key in _meta if key[0] == name]
        for key in doomed:
            del _meta[key]
        _meta_invalidations += len(doomed)
    return len(doomed)


# ----------------------------------------------------------------------
# Shared shard-worker pools (wall-clock only; never touch simulated time)
# ----------------------------------------------------------------------
_executor_lock = threading.Lock()
_executors: dict[int, ThreadPoolExecutor] = {}


def _shard_executor(workers: int) -> ThreadPoolExecutor:
    """A process-wide thread pool bounded at ``workers`` concurrent fetches."""
    with _executor_lock:
        pool = _executors.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-shard-{workers}"
            )
            _executors[workers] = pool
        return pool


def default_shard_workers() -> int:
    """Worker count used when partitions are on without an explicit count."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class HeapShard:
    """A read-only view of one shard of a :class:`PartitionedHeapFile`.

    Duck-typed like a relation for the buffer pool: it has its own
    ``name`` (``"<relation>/shard<i>"``), its own ``storage_token``, and
    local block ids ``0..block_count-1`` that map onto the parent's global
    blocks — so pooled shard blocks get keys disjoint from the parent's
    whole-relation keys and from every other shard's.
    """

    __slots__ = ("parent", "index", "name", "storage_token")

    def __init__(self, parent: "PartitionedHeapFile", index: int) -> None:
        self.parent = parent
        self.index = index
        self.name = f"{parent.name}/shard{index}"
        self.storage_token = next(_storage_tokens)

    @property
    def schema(self) -> Schema:
        return self.parent.schema

    @property
    def global_block_ids(self) -> tuple[int, ...]:
        """This shard's global block ids, ascending (local id = position)."""
        return self.parent.assignment.shard_blocks[self.index]

    @property
    def block_count(self) -> int:
        return len(self.global_block_ids)

    @property
    def tuple_count(self) -> int:
        return self.parent.shard_tuple_counts[self.index]

    def to_global(self, local_id: int) -> int:
        """Map a shard-local block id to the parent's global block id."""
        blocks = self.global_block_ids
        if not 0 <= local_id < len(blocks):
            raise StorageError(
                f"shard {self.name!r} has no block {local_id} "
                f"(has {len(blocks)})",
                relation=self.name,
                block_id=local_id,
            )
        return blocks[local_id]

    def block_rows_uncharged(self, local_id: int) -> list[Row]:
        """One shard block's rows without charging (buffer-pool admission)."""
        return self.parent.block_rows_uncharged(self.to_global(local_id))

    def __repr__(self) -> str:
        return (
            f"HeapShard({self.name!r}, blocks={self.block_count}, "
            f"tuples={self.tuple_count})"
        )


@dataclass(frozen=True)
class ShardReadStats:
    """Per-shard tallies of one sharded stage read (for trace events)."""

    shard: int
    blocks: int
    tuples: int


class PartitionedHeapFile(HeapFile):
    """A heap file whose blocks are deterministically assigned to K shards.

    The global block layout — ids, contents, packing order — is exactly a
    plain :class:`HeapFile`'s; only the shard overlay is new. Reading
    through :meth:`read_blocks` (partitions switched off) therefore behaves
    identically to an unpartitioned relation, which is what invariant 10's
    on/off identity tests pin.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        block_size: int = DEFAULT_BLOCK_SIZE,
        partitions: int = 2,
        strategy: str = "round_robin",
    ) -> None:
        if partitions < 1:
            raise StorageError(
                f"relation {name!r} needs at least 1 partition: {partitions}"
            )
        if strategy not in PARTITION_STRATEGIES:
            raise StorageError(
                f"unknown partition strategy {strategy!r} for relation "
                f"{name!r}; choose from {PARTITION_STRATEGIES}"
            )
        super().__init__(name, schema, block_size)
        self.partitions = partitions
        self.strategy = strategy
        self.shards: tuple[HeapShard, ...] = tuple(
            HeapShard(self, i) for i in range(partitions)
        )
        self.assignment: PartitionAssignment = _assignment_for(
            name, 0, partitions, strategy
        )
        self.shard_tuple_counts: tuple[int, ...] = (0,) * partitions

    # ------------------------------------------------------------------
    # Loading (keeps the shard overlay in sync with the global blocks)
    # ------------------------------------------------------------------
    def load(self, rows: Iterable[Sequence]) -> int:
        count = super().load(rows)
        self._refresh_assignment()
        return count

    def _refresh_assignment(self) -> None:
        self.assignment = _assignment_for(
            self.name, self.block_count, self.partitions, self.strategy
        )
        tuples = [0] * self.partitions
        for block_id, shard in enumerate(self.assignment.shard_of_block):
            tuples[shard] += len(self._blocks[block_id].rows)
        self.shard_tuple_counts = tuple(tuples)

    # ------------------------------------------------------------------
    # Shard introspection
    # ------------------------------------------------------------------
    def shard_of_block(self, block_id: int) -> int:
        """The shard index owning global block ``block_id``."""
        return self.assignment.shard_of_block[block_id]

    def _injector_shard(self, block_id: int) -> int:
        # Shard-targeted faults must fire identically whether the read
        # went through the sharded path or the inherited global one.
        return self.assignment.shard_of_block[block_id]

    # ------------------------------------------------------------------
    # The sharded read path
    # ------------------------------------------------------------------
    def read_sharded(
        self,
        block_ids: Sequence[int],
        charger: CostCharger,
        injector: "FaultInjector | None" = None,
        pool: "BufferPool | None" = None,
        workers: int = 1,
        decoded: bool = False,
    ) -> "tuple[list[Row], ColumnBatch | None, list[ShardReadStats]]":
        """Read drawn global blocks with shard workers; replay charges serially.

        Returns ``(rows, batch, stats)``: the rows concatenated in *global
        draw order* (element-for-element what :meth:`read_blocks` returns),
        a columnar batch when ``decoded`` (a
        :class:`~repro.storage.bufferpool.PooledBatch` over shard entries
        when a pool is present), and per-shard read tallies for the
        ``ShardScanStarted``/``ShardMerged`` trace events.

        Worker threads only *materialize* (and, with a pool and no
        injector, admit) shard blocks — pure wall-clock work. The main
        thread then replays the reference per-block sequence — bounds
        check → ``BLOCK_READ`` charge → injector → pool lookup — in draw
        order, so charged costs, fault streams, and row order are
        bit-identical to the unsharded read regardless of worker
        scheduling. With an injector the prefetch is skipped entirely:
        admission must stay strictly after each block's injector
        consultation so a faulted read is never admitted.
        """
        assignment = self.assignment
        in_bounds = all(0 <= b < len(self._blocks) for b in block_ids)
        groups: dict[int, list[int]] = {}
        if in_bounds:
            for block_id in block_ids:
                groups.setdefault(assignment.shard_of_block[block_id], []).append(
                    block_id
                )

        prefetched: dict[int, tuple] = {}
        if in_bounds and injector is None and groups:
            fetch_jobs = [
                (shard, shard_blocks) for shard, shard_blocks in groups.items()
            ]
            if workers > 1 and len(fetch_jobs) > 1:
                executor = _shard_executor(workers)
                futures = [
                    executor.submit(self._fetch_shard, shard, shard_blocks, pool)
                    for shard, shard_blocks in fetch_jobs
                ]
                for future in futures:
                    prefetched.update(future.result())
            else:
                for shard, shard_blocks in fetch_jobs:
                    prefetched.update(self._fetch_shard(shard, shard_blocks, pool))

        rows: list[Row] = []
        entries: list = []
        shard_blocks_read: dict[int, int] = {}
        shard_tuples_read: dict[int, int] = {}
        shard_hits: dict[int, int] = {}
        for block_id in block_ids:
            if not 0 <= block_id < len(self._blocks):
                raise StorageError(
                    f"relation {self.name!r} has no block {block_id} "
                    f"(has {len(self._blocks)})",
                    relation=self.name,
                    block_id=block_id,
                )
            shard = assignment.shard_of_block[block_id]
            charger.charge(CostKind.BLOCK_READ, 1)
            if injector is not None:
                injector.on_block_read(self.name, block_id, charger, shard=shard)
            if pool is not None:
                if block_id in prefetched:
                    entry, hit = prefetched[block_id]
                else:
                    entry, hit = pool.get_or_admit(
                        self.shards[shard], assignment.local_ids[block_id]
                    )
                entries.append(entry)
                block_rows = entry.rows
                shard_hits[shard] = shard_hits.get(shard, 0) + hit
            elif block_id in prefetched:
                block_rows = prefetched[block_id]
            else:
                block_rows = list(self._blocks[block_id].rows)
            rows.extend(block_rows)
            shard_blocks_read[shard] = shard_blocks_read.get(shard, 0) + 1
            shard_tuples_read[shard] = shard_tuples_read.get(shard, 0) + len(
                block_rows
            )

        if pool is not None:
            for shard in sorted(shard_blocks_read):
                blocks = shard_blocks_read[shard]
                hits = shard_hits.get(shard, 0)
                pool.note_read(self.shards[shard].name, blocks, hits, blocks - hits)

        batch: "ColumnBatch | None" = None
        if decoded:
            if pool is not None:
                batch = pool.batch(rows, self.schema, entries)
            else:
                from repro.kernels.columns import ColumnBatch

                batch = ColumnBatch(rows, self.schema)

        stats = [
            ShardReadStats(
                shard=shard,
                blocks=shard_blocks_read[shard],
                tuples=shard_tuples_read[shard],
            )
            for shard in sorted(shard_blocks_read)
        ]
        return rows, batch, stats

    def _fetch_shard(
        self, shard: int, shard_blocks: list[int], pool: "BufferPool | None"
    ) -> dict[int, tuple]:
        """Worker body: materialize one shard's drawn blocks (no charges)."""
        assignment = self.assignment
        view = self.shards[shard]
        out: dict[int, tuple] = {}
        for block_id in shard_blocks:
            if pool is not None:
                out[block_id] = pool.get_or_admit(
                    view, assignment.local_ids[block_id]
                )
            else:
                out[block_id] = list(self._blocks[block_id].rows)
        return out

    def __repr__(self) -> str:
        return (
            f"PartitionedHeapFile({self.name!r}, tuples={self._tuple_count}, "
            f"blocks={self.block_count}, partitions={self.partitions}, "
            f"strategy={self.strategy!r})"
        )
