"""Spool — temporary files for intermediate results.

The paper keeps *all* intermediate relations on disk ("all the input
relations and all the intermediate relations are always kept on disks",
Section 4), so every binary operator writes its sample inputs to temporary
files, sorts them, and merges sorted files. :class:`SpoolFile` models one
such temporary file; :class:`Spool` is the manager that creates them and
tracks peak temporary-space usage.

Charging discipline: writing a tuple into a spool file charges
``TEMP_WRITE``; the sort and merge phases are charged by the operators
themselves (they own the cost formulas of Section 4). Reading a spool file
during a merge is charged per tuple as ``MERGE_TUPLE`` by the merge code, so
:meth:`SpoolFile.rows` itself is uncharged.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.catalog.schema import Schema
from repro.errors import StorageError
from repro.storage.block import Row
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind


class SpoolFile:
    """One temporary file of tuples, optionally sorted on a key."""

    def __init__(self, spool: "Spool", file_id: int, schema: Schema) -> None:
        self._spool = spool
        self.file_id = file_id
        self.schema = schema
        self._rows: list[Row] = []
        self.sort_key: tuple[int, ...] | None = None

    def write(self, rows: Sequence[Row], charger: CostCharger) -> int:
        """Append ``rows``, charging one ``TEMP_WRITE`` per tuple."""
        if rows:
            charger.charge(CostKind.TEMP_WRITE, len(rows))
        self._rows.extend(rows)
        self.sort_key = None  # appending invalidates sortedness
        self._spool._note_usage()
        return len(rows)

    def mark_sorted(self, key: tuple[int, ...]) -> None:
        """Record that the file is now sorted on attribute positions ``key``."""
        self.sort_key = key

    @property
    def rows(self) -> list[Row]:
        return self._rows

    def replace_rows(self, rows: list[Row]) -> None:
        """Replace contents in place (used by the external sort)."""
        self._rows = rows
        self._spool._note_usage()

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def page_count(self, block_size: int) -> int:
        """Pages occupied at ``block_size`` bytes (ceiling division)."""
        bf = self.schema.blocking_factor(block_size)
        return -(-len(self._rows) // bf)


class Spool:
    """Factory and accountant for :class:`SpoolFile` objects."""

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise StorageError(f"block size must be positive: {block_size}")
        self.block_size = block_size
        self._files: list[SpoolFile] = []
        self.peak_tuples = 0

    def create(self, schema: Schema) -> SpoolFile:
        """Open a fresh temporary file for ``schema`` tuples."""
        f = SpoolFile(self, len(self._files), schema)
        self._files.append(f)
        return f

    def release(self, spool_file: SpoolFile) -> None:
        """Drop a file's contents (space bookkeeping only; ids stay unique)."""
        spool_file.replace_rows([])

    @property
    def live_tuples(self) -> int:
        return sum(len(f) for f in self._files)

    # ------------------------------------------------------------------
    # Salvage support (fault injection)
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Opaque rollback token: the file count."""
        return len(self._files)

    def restore(self, token: int) -> None:
        """Drop every file created after a :meth:`snapshot` token.

        Pre-existing files are untouched (a faulted stage only ever
        *creates* files; it never mutates survivors). ``peak_tuples``
        keeps its high-water mark — the transient space was really used.
        """
        if not 0 <= token <= len(self._files):
            raise StorageError(
                f"cannot restore spool to {token} files "
                f"(has {len(self._files)})"
            )
        del self._files[token:]

    def _note_usage(self) -> None:
        self.peak_tuples = max(self.peak_tuples, self.live_tuples)

    def __len__(self) -> int:
        return len(self._files)
