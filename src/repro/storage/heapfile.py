"""Heap files — stored base relations.

A :class:`HeapFile` is a sequence of fixed-size :class:`DiskBlock`s holding
one relation, the way ERAM stored its experimental relations ("each relation
instance consists of 2,000 disk blocks (1K bytes in each disk block) with 5
tuples in each disk block", Section 5). Reads go through
:meth:`read_block`, which charges :data:`CostKind.BLOCK_READ` on the supplied
charger — block-level random I/O is the dominant term of the paper's cost
formulas, and sampling draws whole blocks.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.catalog.schema import Schema
from repro.errors import StorageError
from repro.storage.block import DiskBlock, Row
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind

if TYPE_CHECKING:
    from repro.kernels.columns import ColumnBatch
    from repro.storage.bufferpool import BufferPool

    from repro.faults.injector import FaultInjector

DEFAULT_BLOCK_SIZE = 1024
"""The paper's 1 KB disk block."""

_storage_tokens = itertools.count(1)
"""Process-unique tokens telling heap instances apart in buffer-pool keys."""


class HeapFile:
    """An immutable-after-load stored relation."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size < schema.tuple_size:
            raise StorageError(
                f"block size {block_size} smaller than tuple size "
                f"{schema.tuple_size} of relation {name!r}"
            )
        self.name = name
        self.schema = schema
        self.block_size = block_size
        self.blocking_factor = schema.blocking_factor(block_size)
        self._blocks: list[DiskBlock] = []
        self._tuple_count = 0
        # Unique per heap instance: buffer-pool keys fold it into the size
        # fingerprint so two same-named relations holding different data
        # (separate databases; drop-and-recreate) can never alias.
        self.storage_token = next(_storage_tokens)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, rows: Iterable[Sequence]) -> int:
        """Bulk-append validated rows, packing blocks densely.

        Returns the number of rows loaded. Loading is not charged: the
        experiments (like the paper's) treat relation creation as offline
        setup outside any quota.
        """
        count = 0
        for raw in rows:
            row = self.schema.validate_row(raw)
            if not self._blocks or self._blocks[-1].is_full:
                self._blocks.append(
                    DiskBlock(block_id=len(self._blocks), capacity=self.blocking_factor)
                )
            self._blocks[-1].append(row)
            count += 1
        self._tuple_count += count
        return count

    # ------------------------------------------------------------------
    # Size introspection (read by the catalog, sampler, and cost model)
    # ------------------------------------------------------------------
    @property
    def tuple_count(self) -> int:
        """``N`` — total tuples in the relation."""
        return self._tuple_count

    @property
    def block_count(self) -> int:
        """``D`` — total disk blocks in the relation."""
        return len(self._blocks)

    def __len__(self) -> int:
        return self._tuple_count

    def _injector_shard(self, block_id: int) -> int | None:
        """Which shard (if any) a block belongs to, for shard-targeted faults.

        Plain heap files have no shards; :class:`~repro.storage.partitioned.
        PartitionedHeapFile` overrides this so shard faults fire identically
        on the sharded and the inherited global read paths (invariant 10).
        """
        return None

    # ------------------------------------------------------------------
    # Reads (charged)
    # ------------------------------------------------------------------
    def read_block(
        self,
        block_id: int,
        charger: CostCharger,
        injector: "FaultInjector | None" = None,
    ) -> list[Row]:
        """Read one block's rows, charging one ``BLOCK_READ``.

        ``injector`` is the session's fault injector, if any: it is
        consulted *after* the charge (a failed or slow read still spun the
        disk) and may raise :class:`~repro.errors.InjectedFault` or charge
        a stall penalty.
        """
        if not 0 <= block_id < len(self._blocks):
            raise StorageError(
                f"relation {self.name!r} has no block {block_id} "
                f"(has {len(self._blocks)})",
                relation=self.name,
                block_id=block_id,
            )
        charger.charge(CostKind.BLOCK_READ, 1)
        if injector is not None:
            injector.on_block_read(
                self.name, block_id, charger, shard=self._injector_shard(block_id)
            )
        return list(self._blocks[block_id].rows)

    def read_blocks(
        self,
        block_ids: Sequence[int],
        charger: CostCharger,
        injector: "FaultInjector | None" = None,
        pool: "BufferPool | None" = None,
    ) -> list[Row]:
        """Read several blocks (each charged), concatenating their rows.

        With a :class:`~repro.storage.bufferpool.BufferPool`, resident
        blocks skip re-materialization — but the charge and the injector
        consultation happen per block either way, in the same order, so
        simulated costs and fault streams are bit-identical pool on/off.
        """
        if pool is None:
            rows: list[Row] = []
            for block_id in block_ids:
                rows.extend(self.read_block(block_id, charger, injector))
            return rows
        rows, _ = self._read_pooled(block_ids, charger, injector, pool)
        return rows

    def read_blocks_decoded(
        self,
        block_ids: Sequence[int],
        charger: CostCharger,
        injector: "FaultInjector | None" = None,
        pool: "BufferPool | None" = None,
    ) -> "tuple[list[Row], ColumnBatch]":
        """Like :meth:`read_blocks`, plus a lazy columnar view of the rows.

        With a pool, the batch is a :class:`~repro.storage.bufferpool.
        PooledBatch` sharing each block's decode-once arrays (pinned while
        the batch lives); without one it is a plain
        :class:`~repro.kernels.columns.ColumnBatch` over the fresh rows.
        Either way ``batch.rows`` *is* the returned list, so the engine's
        batch-identity handoff between nodes keeps working.
        """
        from repro.kernels.columns import ColumnBatch

        if pool is None:
            rows = self.read_blocks(block_ids, charger, injector)
            return rows, ColumnBatch(rows, self.schema)
        rows, entries = self._read_pooled(block_ids, charger, injector, pool)
        return rows, pool.batch(rows, self.schema, entries)

    def _read_pooled(
        self,
        block_ids: Sequence[int],
        charger: CostCharger,
        injector: "FaultInjector | None",
        pool: "BufferPool",
    ) -> tuple[list[Row], list]:
        """Charged per-block reads through the pool.

        Order per block: bounds check → ``BLOCK_READ`` charge → injector →
        pool lookup/admit. A raise from the charge (armed deadline) or the
        injector (injected fault, slow-read stall past the deadline)
        propagates *before* the admit step, so a faulted read never
        poisons the cache.
        """
        rows: list[Row] = []
        entries = []
        hits = 0
        for block_id in block_ids:
            if not 0 <= block_id < len(self._blocks):
                raise StorageError(
                    f"relation {self.name!r} has no block {block_id} "
                    f"(has {len(self._blocks)})",
                    relation=self.name,
                    block_id=block_id,
                )
            charger.charge(CostKind.BLOCK_READ, 1)
            if injector is not None:
                injector.on_block_read(
                    self.name, block_id, charger, shard=self._injector_shard(block_id)
                )
            entry, hit = pool.get_or_admit(self, block_id)
            hits += hit
            entries.append(entry)
            rows.extend(entry.rows)
        pool.note_read(self.name, len(block_ids), hits, len(block_ids) - hits)
        return rows, entries

    def scan(self, charger: CostCharger) -> Iterator[Row]:
        """Full sequential scan, charging one ``BLOCK_READ`` per block.

        Used by the exact-evaluation baseline; sampling never scans.
        """
        for block in self._blocks:
            charger.charge(CostKind.BLOCK_READ, 1)
            yield from block.rows

    def all_rows(self) -> list[Row]:
        """All rows without any charge — for tests and ground-truth checks."""
        rows: list[Row] = []
        for block in self._blocks:
            rows.extend(block.rows)
        return rows

    def block_rows_uncharged(self, block_id: int) -> list[Row]:
        """One block's rows without charging — for tests only."""
        if not 0 <= block_id < len(self._blocks):
            raise StorageError(
                f"no block {block_id} in {self.name!r}",
                relation=self.name,
                block_id=block_id,
            )
        return list(self._blocks[block_id].rows)

    def __repr__(self) -> str:
        return (
            f"HeapFile({self.name!r}, tuples={self._tuple_count}, "
            f"blocks={self.block_count}, bf={self.blocking_factor})"
        )
