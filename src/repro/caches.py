"""Unified management surface for every process-wide cache.

The library grew four process-wide caches, each with its own pair of
module-level helpers (``kernel_cache_info``/``clear_kernel_cache``,
``plan_cache_info``/``clear_plan_cache``, ``bufferpool_cache_info``/
``clear_bufferpool_cache``, and the shard-metadata cache). This module
replaces that sprawl with one registry of named handles::

    from repro import caches

    caches.names()                    # ('kernels', 'plans', 'bufferpool', 'shards')
    caches.info()                     # {name: info dataclass} for all caches
    caches.get("plans").info()        # one cache's counters
    caches.get("bufferpool").clear()  # drop one cache
    caches.clear()                    # drop them all (test isolation)

Each handle's ``info()`` returns that cache's own counters dataclass
(every one carries at least ``hits``/``misses``/``maxsize``/``currsize``,
``lru_cache.cache_info()``-style), and ``clear()`` empties the cache and
resets its counters. The six pre-existing module-level helpers still work
but emit :class:`DeprecationWarning` and delegate here; *relation-keyed
invalidation* hooks (``invalidate_plan_cache_relation``,
``invalidate_bufferpool_relation``, ``invalidate_shard_cache_relation``)
are not deprecated — they are mutation plumbing, not management surface.

The registry holds no cache state itself: handles call through to the
owning modules, so a cache's behavior is unchanged whether it is managed
here or poked directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ReproError


@dataclass(frozen=True)
class CacheHandle:
    """One named cache: ``info()`` for counters, ``clear()`` to empty it.

    ``description`` says what the cache holds and what clearing costs
    (all four are pure optimizations — clearing is always safe).
    """

    name: str
    description: str
    _info: Callable[[], Any]
    _clear: Callable[[], None]

    def info(self) -> Any:
        """The cache's current counters (its own info dataclass)."""
        return self._info()

    def clear(self) -> None:
        """Empty the cache and reset its counters."""
        self._clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheHandle({self.name!r})"


def _kernels_info() -> Any:
    from repro.kernels.cache import _kernel_cache_info

    return _kernel_cache_info()


def _kernels_clear() -> None:
    from repro.kernels.cache import _clear_kernel_cache

    _clear_kernel_cache()


def _plans_info() -> Any:
    from repro.planner.cache import _plan_cache_info

    return _plan_cache_info()


def _plans_clear() -> None:
    from repro.planner.cache import _clear_plan_cache

    _clear_plan_cache()


def _bufferpool_info() -> Any:
    from repro.storage.bufferpool import _bufferpool_cache_info

    return _bufferpool_cache_info()


def _bufferpool_clear() -> None:
    from repro.storage.bufferpool import _clear_bufferpool_cache

    _clear_bufferpool_cache()


def _shards_info() -> Any:
    from repro.storage.partitioned import shard_cache_info

    return shard_cache_info()


def _shards_clear() -> None:
    from repro.storage.partitioned import clear_shard_cache

    clear_shard_cache()


_REGISTRY: tuple[CacheHandle, ...] = (
    CacheHandle(
        "kernels",
        "compiled predicate and sort-key LRUs (repro.kernels.cache)",
        _kernels_info,
        _kernels_clear,
    ),
    CacheHandle(
        "plans",
        "logical-plan cache keyed by canonical IR identity "
        "(repro.planner.cache)",
        _plans_info,
        _plans_clear,
    ),
    CacheHandle(
        "bufferpool",
        "process-wide default block/decoded-column buffer pool "
        "(repro.storage.bufferpool)",
        _bufferpool_info,
        _bufferpool_clear,
    ),
    CacheHandle(
        "shards",
        "partition-assignment metadata cache "
        "(repro.storage.partitioned)",
        _shards_info,
        _shards_clear,
    ),
)

_BY_NAME = {handle.name: handle for handle in _REGISTRY}


def names() -> tuple[str, ...]:
    """Every registered cache name, in registration order."""
    return tuple(handle.name for handle in _REGISTRY)


def get(name: str) -> CacheHandle:
    """The handle for cache ``name`` (see :func:`names`)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown cache {name!r}; registered caches: "
            f"{', '.join(names())}"
        ) from None


def handles() -> tuple[CacheHandle, ...]:
    """All registered handles, in registration order."""
    return _REGISTRY


def info() -> dict[str, Any]:
    """``{name: counters}`` across every registered cache."""
    return {handle.name: handle.info() for handle in _REGISTRY}


def clear(name: str | None = None) -> None:
    """Empty one cache (``name``) or all of them (``name=None``)."""
    targets = (_REGISTRY if name is None else (get(name),))
    for handle in targets:
        handle.clear()
