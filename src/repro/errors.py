"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Timing-related control flow (the hard-deadline "timer
interrupt" of the paper) uses :class:`QuotaExpired`, which intentionally does
*not* derive from :class:`ReproError`: it is a control signal raised by the
clock substrate, not a programming or data error, and must never be swallowed
by broad ``except ReproError`` handlers inside operators.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible."""


class CatalogError(ReproError):
    """A relation name is unknown or already registered."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad block id, overfull block)."""


class ExpressionError(ReproError):
    """A relational-algebra expression is malformed for the requested use."""


class EstimationError(ReproError):
    """An estimator was asked for a quantity it cannot produce."""


class CostModelError(ReproError):
    """A time-cost formula was evaluated with inconsistent inputs."""


class TimeControlError(ReproError):
    """A time-control strategy or the staged executor was misconfigured."""


class SamplingExhausted(ReproError):
    """A sampling plan was asked for more units than remain unsampled."""


class CellRunError(ReproError):
    """One run of a ``run_cell`` batch failed.

    Raised in place of the bare exception so a 200-run (possibly
    multiprocessing) cell names the exact seed and cell that died instead of
    surfacing an anonymous worker traceback; the original exception is
    chained as ``__cause__``. Constructed with ``(seed, message)`` so the
    instance survives the pickling round-trip out of a worker process.
    """

    def __init__(self, seed: int, message: str) -> None:
        super().__init__(seed, message)
        self.seed = seed
        self.message = message

    def __str__(self) -> str:
        return self.message


class QuotaExpired(Exception):
    """The hard time quota was crossed (the paper's timer interrupt).

    Raised by :class:`repro.timekeeping.CostCharger` when a charge would move
    the simulated (or wall) clock past an armed deadline and the charger is in
    ``abort`` mode. The staged executor catches it at the stage boundary and
    discards the aborted stage, mirroring the hard-time-constraint semantics
    of Section 3.2 of the paper.
    """

    def __init__(self, deadline: float, now: float) -> None:
        super().__init__(
            f"time quota expired: deadline={deadline:.6f}s, clock={now:.6f}s"
        )
        self.deadline = deadline
        self.now = now
