"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Timing-related control flow (the hard-deadline "timer
interrupt" of the paper) uses :class:`QuotaExpired`, which intentionally does
*not* derive from :class:`ReproError`: it is a control signal raised by the
clock substrate, not a programming or data error, and must never be swallowed
by broad ``except ReproError`` handlers inside operators.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Every instance carries optional *run context*: the staged-execution
    ``stage`` the error surfaced in and a free-form ``session`` label.
    Layers that know the context attach it with :meth:`with_context` as the
    error propagates, so a fault that does reach user code names where in
    the run it happened instead of arriving bare.
    """

    stage: int | None = None
    session: str | None = None

    def with_context(
        self, stage: int | None = None, session: str | None = None
    ) -> "ReproError":
        """Attach run context (idempotent: first writer wins); returns self."""
        if stage is not None and self.stage is None:
            self.stage = stage
        if session is not None and self.session is None:
            self.session = session
        return self

    def context_suffix(self) -> str:
        """`` (stage N, session S)``-style suffix for messages, or ``""``."""
        parts = []
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.session is not None:
            parts.append(f"session {self.session}")
        return f" ({', '.join(parts)})" if parts else ""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible."""


class CatalogError(ReproError):
    """A relation name is unknown or already registered."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad block id, overfull block).

    Carries the structured location of the failure — ``relation`` and
    ``block_id`` — so handlers (and the fault-salvage machinery) can log
    and retry without parsing the message.
    """

    def __init__(
        self,
        message: str,
        relation: str | None = None,
        block_id: int | None = None,
        stage: int | None = None,
    ) -> None:
        super().__init__(message)
        self.relation = relation
        self.block_id = block_id
        if stage is not None:
            self.stage = stage


class InjectedFault(StorageError):
    """A deterministic fault injected by :mod:`repro.faults`.

    A :class:`StorageError` subclass so production salvage paths treat it
    exactly like a real storage hiccup; ``fault_kind`` names the injected
    failure mode (``"read_error"``) for assertions and traces.
    """

    def __init__(
        self,
        message: str,
        fault_kind: str = "read_error",
        relation: str | None = None,
        block_id: int | None = None,
        stage: int | None = None,
    ) -> None:
        super().__init__(
            message, relation=relation, block_id=block_id, stage=stage
        )
        self.fault_kind = fault_kind


class ExpressionError(ReproError):
    """A relational-algebra expression is malformed for the requested use."""


class EstimationError(ReproError):
    """An estimator was asked for a quantity it cannot produce."""


class CostModelError(ReproError):
    """A time-cost formula was evaluated with inconsistent inputs."""


class TimeControlError(ReproError):
    """A time-control strategy or the staged executor was misconfigured."""


class SamplingExhausted(ReproError):
    """A sampling plan was asked for more units than remain unsampled."""


class CellRunError(ReproError):
    """One run of a ``run_cell`` batch failed.

    Raised in place of the bare exception so a 200-run (possibly
    multiprocessing) cell names the exact seed and cell that died instead of
    surfacing an anonymous worker traceback; the original exception is
    chained as ``__cause__``. Constructed with ``(seed, message)`` so the
    instance survives the pickling round-trip out of a worker process.
    """

    def __init__(self, seed: int, message: str) -> None:
        super().__init__(seed, message)
        self.seed = seed
        self.message = message

    def __str__(self) -> str:
        return self.message


class QuotaExpired(Exception):
    """The hard time quota was crossed (the paper's timer interrupt).

    Raised by :class:`repro.timekeeping.CostCharger` when a charge would move
    the simulated (or wall) clock past an armed deadline and the charger is in
    ``abort`` mode. The staged executor catches it at the stage boundary and
    discards the aborted stage, mirroring the hard-time-constraint semantics
    of Section 3.2 of the paper.
    """

    def __init__(self, deadline: float, now: float) -> None:
        super().__init__(
            f"time quota expired: deadline={deadline:.6f}s, clock={now:.6f}s"
        )
        self.deadline = deadline
        self.now = now
