"""Structured tracing of time-constrained query runs.

One query run emits an ordered stream of typed events — the life of
Figure 3.1's while-loop made observable. Every layer contributes its own
view of a stage:

* the **strategy** emits :class:`FractionChosen` with the bisection's
  iteration count (Figure 3.4's loop);
* the **executor** brackets each stage with :class:`StageStart` /
  :class:`StageEnd` and flags mid-stage timer interrupts with
  :class:`DeadlineAbort`;
* the **plan** emits per-relation :class:`ScanAdvance` (blocks and tuples
  drawn) and per-operator :class:`OperatorAdvance` (output tuples over new
  points) as the staged trees advance;
* the **selectivity trackers** emit :class:`SelectivityRevision` whenever
  Revise-Selectivities (Figure 3.3) incorporates a stage observation;
* the **cost charger** optionally emits one :class:`CostCharged` per
  primitive charge (``trace_costs=True`` — verbose, off by default).

Events flow into a :class:`TraceSink`: :class:`NullSink` drops them (the
default; near-zero overhead), :class:`RecordingSink` keeps them in memory
for assertions and analysis, :class:`JsonlSink` serializes each event as
one JSON line for offline replay, and :class:`TeeSink` fans out to several
sinks at once.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import IO, ClassVar, Iterable, Iterator, Protocol, runtime_checkable


@dataclass(frozen=True)
class TraceEvent:
    """Base class of all trace events (``kind`` identifies the type)."""

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """Plain-data form of the event (JSON-serializable)."""
        payload = dataclasses.asdict(self)
        payload["event"] = self.kind
        return payload


# ----------------------------------------------------------------------
# Query lifecycle (emitted by the executor)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryStart(TraceEvent):
    """A time-constrained run began."""

    kind: ClassVar[str] = "query_start"
    quota: float = 0.0
    aggregate: str = "count"
    strategy: str = ""
    stopping: str = ""
    clock: float = 0.0


@dataclass(frozen=True)
class QueryEnd(TraceEvent):
    """The run terminated (``termination`` mirrors ``RunReport``)."""

    kind: ClassVar[str] = "query_end"
    termination: str = ""
    stages_completed: int = 0
    estimate_value: float | None = None
    estimate_variance: float | None = None
    elapsed_seconds: float = 0.0


# ----------------------------------------------------------------------
# Stage lifecycle (emitted by the strategy and the executor)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FractionChosen(TraceEvent):
    """The strategy sized the next stage (``fraction=None`` = infeasible)."""

    kind: ClassVar[str] = "fraction_chosen"
    stage: int = 0
    fraction: float | None = None
    budget_seconds: float = 0.0
    bisection_iterations: int = 0


@dataclass(frozen=True)
class StageStart(TraceEvent):
    """A stage began executing at the chosen fraction."""

    kind: ClassVar[str] = "stage_start"
    stage: int = 0
    fraction: float = 0.0
    remaining_seconds: float = 0.0
    clock: float = 0.0


@dataclass(frozen=True)
class StageEnd(TraceEvent):
    """A stage finished (or was killed); counts mirror its StageReport."""

    kind: ClassVar[str] = "stage_end"
    stage: int = 0
    fraction: float = 0.0
    duration: float = 0.0
    blocks_read: int = 0
    new_points: int = 0
    new_outputs: int = 0
    completed_in_time: bool = True
    aborted_mid_stage: bool = False
    estimate_value: float | None = None
    estimate_variance: float | None = None


@dataclass(frozen=True)
class DeadlineAbort(TraceEvent):
    """The armed timer interrupt killed a stage mid-flight."""

    kind: ClassVar[str] = "deadline_abort"
    stage: int = 0
    deadline: float = 0.0
    clock: float = 0.0


# ----------------------------------------------------------------------
# Plan internals (emitted by StagedPlan.advance_stage)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScanAdvance(TraceEvent):
    """One shared relation scan drew its stage sample."""

    kind: ClassVar[str] = "scan_advance"
    stage: int = 0
    relation: str = ""
    new_blocks: int = 0
    new_tuples: int = 0
    cum_blocks: int = 0
    cum_tuples: int = 0


@dataclass(frozen=True)
class OperatorAdvance(TraceEvent):
    """One staged operator processed its stage inputs."""

    kind: ClassVar[str] = "operator_advance"
    stage: int = 0
    operator: str = ""
    out_tuples: int = 0
    new_points: int = 0
    cum_out_tuples: int = 0
    cum_points: int = 0


# ----------------------------------------------------------------------
# Planner (emitted by StagedPlan construction when rules fired)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleApplied(TraceEvent):
    """One optimizer rewrite rule fired on a subtree."""

    kind: ClassVar[str] = "rule_applied"
    rule: str = ""
    before: str = ""
    after: str = ""


@dataclass(frozen=True)
class PlanOptimized(TraceEvent):
    """The logical optimizer rewrote the query (summary of the rule log).

    Emitted once per optimized plan, after its :class:`RuleApplied`
    events; ``rules`` is the comma-joined rule names in firing order
    (scalar, so the event stays JSONL round-trippable).
    """

    kind: ClassVar[str] = "plan_optimized"
    before_hash: str = ""
    after_hash: str = ""
    rules: str = ""
    rules_applied: int = 0
    cache_hit: bool = False
    operators_before: int = 0
    operators_after: int = 0


# ----------------------------------------------------------------------
# Estimator state (emitted by SelectivityTracker.record_stage)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectivityRevision(TraceEvent):
    """Revise-Selectivities absorbed one stage observation (Figure 3.3)."""

    kind: ClassVar[str] = "selectivity_revision"
    operator: str = ""
    stage: int = 0
    tuples: int = 0
    points: int = 0
    sel_prev: float = 0.0


# ----------------------------------------------------------------------
# Cost accounting (emitted by CostCharger when trace_costs is enabled)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostCharged(TraceEvent):
    """One primitive charge advanced the clock (verbose; opt-in)."""

    kind: ClassVar[str] = "cost_charged"
    cost_kind: str = ""
    amount: float = 0.0
    seconds: float = 0.0
    clock: float = 0.0


_EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        QueryStart,
        QueryEnd,
        FractionChosen,
        StageStart,
        StageEnd,
        DeadlineAbort,
        ScanAdvance,
        OperatorAdvance,
        RuleApplied,
        PlanOptimized,
        SelectivityRevision,
        CostCharged,
    )
}


def register_event_type(cls: type[TraceEvent]) -> type[TraceEvent]:
    """Register an event class so :func:`event_from_dict` can rebuild it.

    Subsystems outside the core run loop (e.g. :mod:`repro.server`) define
    their own typed events and register them here, keeping JSONL traces
    round-trippable no matter which layer emitted a line. Usable as a class
    decorator. Re-registering the same class is a no-op; a *different* class
    claiming an existing kind is an error.
    """
    if not (isinstance(cls, type) and issubclass(cls, TraceEvent)):
        raise TypeError(f"not a TraceEvent subclass: {cls!r}")
    existing = _EVENT_TYPES.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"trace event kind {cls.kind!r} already registered "
            f"by {existing.__name__}"
        )
    _EVENT_TYPES[cls.kind] = cls
    return cls


def event_from_dict(payload: dict) -> TraceEvent:
    """Rebuild a typed event from its :meth:`TraceEvent.to_dict` form."""
    data = dict(payload)
    kind = data.pop("event", None)
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    return cls(**data)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
@runtime_checkable
class TraceSink(Protocol):
    """Anything that accepts trace events, one at a time, in order."""

    def emit(self, event: TraceEvent) -> None: ...


class NullSink:
    """Drops every event — the default sink on untraced runs."""

    __slots__ = ()

    def emit(self, event: TraceEvent) -> None:
        pass


NULL_SINK = NullSink()
"""Shared no-op sink instance (sinks are stateless; one suffices)."""


class RecordingSink:
    """Keeps every event in memory, in emission order."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str | type[TraceEvent]) -> list[TraceEvent]:
        """Events of one kind, by ``kind`` string or event class."""
        if isinstance(kind, type):
            return [e for e in self.events if isinstance(e, kind)]
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> list[str]:
        """The ``kind`` of every event, in order (for order assertions)."""
        return [e.kind for e in self.events]

    def clear(self) -> None:
        self.events.clear()


class JsonlSink:
    """Serializes each event as one JSON line (replayable offline).

    Accepts a path (opened and owned; call :meth:`close` or use as a
    context manager) or any writable text file object (borrowed; left
    open). Lines parse back into typed events with
    :func:`event_from_dict`.
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict(), sort_keys=True))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl_trace(path: str) -> list[TraceEvent]:
    """Parse a :class:`JsonlSink` file back into typed events."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


class TeeSink:
    """Fans every event out to several sinks, in order."""

    def __init__(self, sinks: Iterable[TraceSink]) -> None:
        self.sinks: tuple[TraceSink, ...] = tuple(sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)
