"""Attribute types for the relational substrate.

The paper's ERAM prototype stores fixed-size tuples (200 bytes in the
experiments) in 1 KB disk blocks. We model attribute types only as far as the
cost model needs them: each type knows its storage width in bytes (so tuple
size, and hence the blocking factor, is derivable from a schema) and how to
validate / coerce Python values.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SchemaError


class AttributeType(enum.Enum):
    """Storage type of a relation attribute.

    Widths follow the conventions of early-80s record layouts: 4-byte
    integers, 8-byte floats, and fixed-width padded strings (width supplied
    per attribute; see :class:`repro.catalog.schema.Attribute`).
    """

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def default_width(self) -> int:
        """Storage width in bytes used when the attribute gives none."""
        if self is AttributeType.INT:
            return 4
        if self is AttributeType.FLOAT:
            return 8
        return 16  # STR

    def validate(self, value: Any) -> Any:
        """Return ``value`` coerced to this type, or raise ``SchemaError``.

        Booleans are rejected as INTs (a common silent-bug source), and
        numeric strings are *not* auto-parsed: the loader should be explicit.
        """
        if self is AttributeType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected int, got {value!r}")
            return value
        if self is AttributeType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected float, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise SchemaError(f"expected str, got {value!r}")
        return value

    @classmethod
    def infer(cls, value: Any) -> "AttributeType":
        """Infer the attribute type of a Python value."""
        if isinstance(value, bool):
            raise SchemaError("bool values are not a supported attribute type")
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.STR
        raise SchemaError(f"unsupported attribute value {value!r}")
