"""The relation catalog.

Maps relation names to their stored :class:`repro.storage.heapfile.HeapFile`
instances, as ERAM's system catalog did. The catalog is the single source of
truth for "what relations exist and how big are they" — the sampling plans
and the time-cost formulas both read relation cardinalities (``N``) and block
counts (``D``) from here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.storage.heapfile import HeapFile


class Catalog:
    """A name -> stored-relation registry."""

    def __init__(self) -> None:
        self._relations: dict[str, "HeapFile"] = {}

    def register(self, name: str, relation: "HeapFile") -> None:
        """Register ``relation`` under ``name``; names are unique."""
        if not name:
            raise CatalogError("relation name must be non-empty")
        if name in self._relations:
            raise CatalogError(f"relation {name!r} already exists")
        self._relations[name] = relation

    def drop(self, name: str) -> None:
        """Remove ``name`` from the catalog."""
        if name not in self._relations:
            raise CatalogError(f"relation {name!r} does not exist")
        del self._relations[name]

    def get(self, name: str) -> "HeapFile":
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"relation {name!r} does not exist") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """All registered relation names, in registration order."""
        return list(self._relations)
