"""Relation schemas.

A :class:`Schema` is an ordered list of named, typed attributes. It derives
the quantities the storage layer and the time-cost formulas need:

* ``tuple_size`` — bytes per tuple (sum of attribute widths);
* ``blocking_factor(block_size)`` — tuples per disk block, the ``blocking
  factor`` of the paper's ``p = sel * points / blockingfactor`` equation.

Schemas are immutable; operations such as :meth:`project` and :meth:`join`
return new schemas. Attribute-compatibility (same names, same types, same
order) is required for Union / Difference / Intersect, exactly as the paper
requires "degree- and attribute-compatible relations" (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.catalog.types import AttributeType
from repro.errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A single named, typed attribute with a storage width in bytes."""

    name: str
    type: AttributeType
    width: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.width < 0:
            raise SchemaError(f"attribute {self.name!r}: width must be >= 0")
        if self.width == 0:
            object.__setattr__(self, "width", self.type.default_width)


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of :class:`Attribute`.

    >>> s = Schema.of(a=AttributeType.INT, b=AttributeType.STR)
    >>> s.names
    ('a', 'b')
    >>> s.tuple_size
    20
    """

    attributes: tuple[Attribute, ...]
    _index: dict[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        if not self.attributes:
            raise SchemaError("a schema must have at least one attribute")
        object.__setattr__(
            self, "_index", {a.name: i for i, a in enumerate(self.attributes)}
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, **attrs: AttributeType) -> "Schema":
        """Build a schema from keyword ``name=AttributeType`` pairs."""
        return cls(tuple(Attribute(n, t) for n, t in attrs.items()))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[str, AttributeType]], widths: dict[str, int] | None = None
    ) -> "Schema":
        """Build a schema from (name, type) pairs with optional widths."""
        widths = widths or {}
        return cls(tuple(Attribute(n, t, widths.get(n, 0)) for n, t in pairs))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def tuple_size(self) -> int:
        """Bytes occupied by one tuple of this schema."""
        return sum(a.width for a in self.attributes)

    def blocking_factor(self, block_size: int) -> int:
        """Tuples per disk block of ``block_size`` bytes (at least 1)."""
        if block_size <= 0:
            raise SchemaError(f"block size must be positive, got {block_size}")
        return max(1, block_size // self.tuple_size)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises ``SchemaError`` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no attribute {name!r} in schema {self.names}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    # ------------------------------------------------------------------
    # Derivation for RA operators
    # ------------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Schema after projecting onto ``names`` (order preserved as given)."""
        if not names:
            raise SchemaError("projection needs at least one attribute")
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attributes in projection {names}")
        return Schema(tuple(self.attribute(n) for n in names))

    def join(self, other: "Schema") -> "Schema":
        """Schema of the join output: this schema ++ other's attributes.

        Name clashes on the right side are disambiguated with a ``_r``
        suffix, mirroring how the ERAM prototype renamed attributes.
        """
        taken = set(self.names)
        right = []
        for a in other.attributes:
            name = a.name
            while name in taken:
                name = name + "_r"
            taken.add(name)
            right.append(Attribute(name, a.type, a.width))
        return Schema(self.attributes + tuple(right))

    def is_compatible(self, other: "Schema") -> bool:
        """True when set operations (union/diff/intersect) are legal."""
        return self.names == other.names and tuple(
            a.type for a in self.attributes
        ) == tuple(a.type for a in other.attributes)

    def require_compatible(self, other: "Schema", op: str) -> None:
        if not self.is_compatible(other):
            raise SchemaError(
                f"{op}: schemas are not attribute-compatible: "
                f"{self.names} vs {other.names}"
            )

    def validate_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Validate and coerce one row against this schema."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row arity {len(row)} != schema arity {self.arity}"
            )
        return tuple(
            attr.type.validate(value) for attr, value in zip(self.attributes, row)
        )
