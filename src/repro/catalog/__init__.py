"""Relation catalog and schema substrate (system S3 in DESIGN.md)."""

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute, Schema
from repro.catalog.types import AttributeType

__all__ = ["Attribute", "AttributeType", "Catalog", "Schema"]
