"""Point estimates with variances and confidence intervals.

Terminology follows Section 2 of the paper: an estimator returns a value
serving as a guess for a parameter; its quality is described through its
variance and through confidence intervals ("an interval of plausible values
for the parameter") at a confidence level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EstimationError


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via Acklam's rational approximation.

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency in the core
    estimate type (scipy stays optional, used only by analysis helpers).
    """
    if not 0.0 < p < 1.0:
        raise EstimationError(f"quantile probability must be in (0,1): {p}")
    # Coefficients of Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


@dataclass(frozen=True)
class Estimate:
    """A point estimate with an estimated variance.

    ``sample_points`` / ``population_points`` record how much of the point
    space the estimate is based on, so callers can tell an early one-block
    guess from a nearly complete evaluation. ``exact`` is set when the whole
    population was evaluated (variance is then zero by construction).
    """

    value: float
    variance: float
    sample_points: int = 0
    population_points: int = 0
    exact: bool = False

    def __post_init__(self) -> None:
        if self.variance < 0:
            raise EstimationError(f"negative variance {self.variance}")

    @property
    def std_error(self) -> float:
        return math.sqrt(self.variance)

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Normal-approximation confidence interval at ``level``."""
        if not 0.0 < level < 1.0:
            raise EstimationError(f"confidence level must be in (0,1): {level}")
        z = normal_quantile(0.5 + level / 2.0)
        half = z * self.std_error
        return (self.value - half, self.value + half)

    def relative_error_bound(self, level: float = 0.95) -> float:
        """Half-width of the CI relative to the estimate (inf at value 0)."""
        lo, hi = self.confidence_interval(level)
        if self.value == 0:
            return math.inf
        return (hi - lo) / 2.0 / abs(self.value)
