"""COUNT(E) estimators of [HoOT 88] (reviewed in Section 2 of the paper).

Two sampling plans, two estimators:

* **Simple random sampling of points** — ``û(E) = N · (y / m)`` where ``N``
  is the point-space size, ``m`` the sampled points and ``y`` the sampled
  1-points. Unbiased and consistent.
* **Cluster sampling of space blocks** — ``Ŷ_b(E) = B · (Σ y_i / b)`` where
  ``B`` is the total space blocks, ``b`` the sampled space blocks, and
  ``y_i`` the 1-points inside the i-th sampled space block.

Both variance estimators use the standard without-replacement forms
([Coch 77]); the paper's prototype deliberately *approximates* the cluster
variance with the SRS formula because computing the true cluster variance
"needs to sort the output tuples … too expensive" (Section 3.3) — we provide
both so the approximation itself is testable (ablation A4 in DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import EstimationError
from repro.estimation.estimate import Estimate


def srs_count_estimate(population: int, sampled: int, ones: int) -> Estimate:
    """``û(E)`` with the SRS-without-replacement variance estimate.

    ``population`` = N points in the point space, ``sampled`` = m points
    drawn, ``ones`` = y sampled points with value 1.
    """
    _validate(population, sampled, ones)
    if sampled == population:
        return Estimate(
            value=float(ones),
            variance=0.0,
            sample_points=sampled,
            population_points=population,
            exact=True,
        )
    p_hat = ones / sampled
    variance = srs_count_variance(population, sampled, p_hat)
    return Estimate(
        value=population * p_hat,
        variance=variance,
        sample_points=sampled,
        population_points=population,
    )


def srs_count_variance(population: int, sampled: int, p_hat: float) -> float:
    """Estimated Var(û) under SRS without replacement.

    ``Var(p̂) = p̂(1−p̂)/(m−1) · (1 − m/N)`` (unbiased sample form), scaled by
    ``N²``. With one sample point the variance is unknowable; we return the
    worst case ``p̂=1/2`` bound so early stages stay conservative.
    """
    if sampled <= 1:
        p_hat = 0.5
        denom = 1
    else:
        denom = sampled - 1
    fpc = 1.0 - sampled / population
    return population * population * p_hat * (1.0 - p_hat) / denom * max(fpc, 0.0)


def srs_selectivity_variance(
    selectivity: float, sampled: int, not_yet_sampled: int
) -> float:
    """The paper's equation for ``Var(sel_i)`` (Section 3.3, end).

    ``Var(sel) = sel(1−sel)(N_i − m_i) / (m_i (N_i − 1))`` where ``m_i`` is
    the points the i-th stage would sample and ``N_i`` the points not yet
    included in previous stages.
    """
    if sampled <= 0:
        raise EstimationError("variance needs at least one sample point")
    if not_yet_sampled <= 1 or sampled >= not_yet_sampled:
        return 0.0
    sel = min(max(selectivity, 0.0), 1.0)
    return sel * (1.0 - sel) * (not_yet_sampled - sampled) / (
        sampled * (not_yet_sampled - 1)
    )


def cluster_count_estimate(
    total_space_blocks: int, block_ones: Sequence[int]
) -> Estimate:
    """``Ŷ_b(E)`` with the cluster (space-block) variance estimate.

    ``block_ones`` holds ``y_i`` for each sampled space block. The variance
    estimator is the standard one-stage cluster form
    ``B² (1 − b/B) s_y² / b`` with ``s_y²`` the sample variance of the
    ``y_i``.
    """
    b = len(block_ones)
    if b == 0:
        raise EstimationError("cluster estimate needs at least one space block")
    if total_space_blocks < b:
        raise EstimationError(
            f"sampled {b} space blocks out of {total_space_blocks}"
        )
    if any(y < 0 for y in block_ones):
        raise EstimationError("negative 1-counts in space blocks")
    mean = sum(block_ones) / b
    value = total_space_blocks * mean
    if b == total_space_blocks:
        return Estimate(
            value=float(sum(block_ones)),
            variance=0.0,
            sample_points=b,
            population_points=total_space_blocks,
            exact=True,
        )
    if b == 1:
        # One cluster gives no variance information; signal maximal
        # uncertainty via the single observation's square.
        s2 = float(block_ones[0]) ** 2 if block_ones[0] else 1.0
    else:
        s2 = sum((y - mean) ** 2 for y in block_ones) / (b - 1)
    fpc = 1.0 - b / total_space_blocks
    variance = total_space_blocks * total_space_blocks * fpc * s2 / b
    return Estimate(
        value=value,
        variance=variance,
        sample_points=b,
        population_points=total_space_blocks,
    )


def _validate(population: int, sampled: int, ones: int) -> None:
    if population <= 0:
        raise EstimationError(f"population must be positive: {population}")
    if sampled <= 0:
        raise EstimationError(f"sample size must be positive: {sampled}")
    if sampled > population:
        raise EstimationError(f"sample {sampled} exceeds population {population}")
    if not 0 <= ones <= sampled:
        raise EstimationError(f"1-count {ones} outside [0, {sampled}]")


def combine_term_estimates(
    terms: Sequence[tuple[int, Estimate]],
) -> Estimate:
    """Combine signed per-term estimates into the COUNT(E) estimate.

    Inclusion–exclusion gives ``COUNT(E) = Σ coef_k · COUNT(term_k)``; the
    combined variance sums ``coef² · Var`` (terms share samples, so this
    ignores covariances — a documented approximation; the terms' common
    blocks make them positively correlated, so the reported variance of
    differences is, if anything, conservative).
    """
    if not terms:
        raise EstimationError("no terms to combine")
    value = sum(coef * est.value for coef, est in terms)
    variance = sum(coef * coef * est.variance for coef, est in terms)
    return Estimate(
        value=value,
        variance=variance,
        sample_points=max(est.sample_points for _, est in terms),
        population_points=max(est.population_points for _, est in terms),
        exact=all(est.exact for _, est in terms),
    )


def required_sample_for_error(
    population: int, p_guess: float, target_relative: float, z: float = 1.96
) -> int:
    """Sample points needed for a target relative CI half-width.

    Solves ``z·sqrt(Var(û))/ (N·p) ≤ target`` for ``m`` under SRS with
    replacement (conservative versus without-replacement). Used by the
    error-constrained stopping criterion to plan ahead.
    """
    if not 0 < p_guess <= 1:
        raise EstimationError(f"p_guess must be in (0,1]: {p_guess}")
    if target_relative <= 0:
        raise EstimationError("target relative error must be positive")
    m = (z * z * (1 - p_guess)) / (p_guess * target_relative * target_relative)
    return max(1, min(population, math.ceil(m)))
