"""Run-time sample-selectivity estimation (Figures 3.3 and 3.5).

The paper's *run-time estimation approach*: "the selectivity of an operation
is estimated at run-time, and also the precision of the estimated sample
selectivity is improved at run-time … it does not need any specific
information about a query."

One :class:`SelectivityTracker` exists per RA operator in the query. It
implements:

* **Revise-Selectivities** (Figure 3.3): before any data,
  ``sel⁰`` is a configured maximum (1 for Select/Project/Join,
  ``1/max(|r1|,|r2|)`` for Intersect); afterwards
  ``sel^{i−1} = Σ_j tuples_j / Σ_j points_j`` over stages 1 … i−1.
* **ComputeSel⁺** (Figure 3.5 / equation 3.3):
  ``sel⁺ = sel^{i−1} + d_β · sqrt(Var(sel_i))`` with the simple-random-
  sampling variance approximation
  ``Var(sel_i) = sel(1−sel)(N_i − m_i)/(m_i(N_i − 1))``, where ``m_i`` is
  the points the candidate stage would sample and ``N_i`` the points not yet
  included. The approximation "usually gives a smaller value … some
  inaccuracy in the risk control is expected" (Section 3.3) — exactly what
  experiment 5.A observes as risk ≈ 50% at d_β = 0.
* **The zero-selectivity fix** (Section 3.4): a stage observing zero output
  tuples would freeze ``sel⁺`` at 0 and guarantee overspending later. The
  paper fixes it with "a combinatorial formula (which is closed and easy to
  compute)" from the unavailable tech report; we use the closed
  hypergeometric upper bound ``sel = 1 − β^{1/M}`` (``M`` points observed,
  confidence ``1−β``) — the largest selectivity still consistent, at level
  β, with having seen no output tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EstimationError
from repro.estimation.count_estimators import srs_selectivity_variance
from repro.observability.trace import SelectivityRevision, TraceSink


@dataclass(frozen=True)
class StageObservation:
    """One stage's (output tuples, sampled points) for an operator."""

    tuples: int
    points: int

    def __post_init__(self) -> None:
        if self.points < 0 or self.tuples < 0:
            raise EstimationError(
                f"negative stage observation ({self.tuples}, {self.points})"
            )


DEFAULT_ZERO_FIX_BETA = 0.05
"""Confidence parameter of the zero-selectivity hypergeometric bound."""


@dataclass
class SelectivityTracker:
    """Run-time selectivity state of one RA operator (see module docs).

    ``prior_tuples`` / ``prior_points`` are warm-start pseudo-counts from
    the synopsis catalog (:mod:`repro.synopses`): evidence pooled from
    earlier runs of the same operator subtree. They participate in
    ``sel_prev`` exactly like observed stages, so a warm-started operator
    enters stage 1 with ``sel⁺ = posterior + d_β·sqrt(Var)`` instead of the
    assumed maximum — but they are *not* stage observations: the run's own
    estimator, salvage snapshots, and per-stage series see only what this
    session actually sampled.
    """

    label: str
    initial: float
    zero_fix_beta: float = DEFAULT_ZERO_FIX_BETA
    pinned: bool = False
    observations: list[StageObservation] = field(default_factory=list)
    sink: TraceSink | None = field(default=None, repr=False, compare=False)
    prior_tuples: float = 0.0
    prior_points: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.initial <= 1.0:
            raise EstimationError(
                f"{self.label}: initial selectivity must be in (0,1], "
                f"got {self.initial}"
            )
        if not 0.0 < self.zero_fix_beta < 1.0:
            raise EstimationError("zero_fix_beta must be in (0,1)")
        if self.prior_points < 0 or self.prior_tuples < 0:
            raise EstimationError(
                f"{self.label}: negative warm-start prior "
                f"({self.prior_tuples}, {self.prior_points})"
            )

    def warm_start(self, tuples: float, points: float) -> None:
        """Seed the tracker with pooled (tuples, points) prior evidence.

        Must happen before any stage is observed; pinned trackers refuse —
        prestored mode means "never learn", including from the catalog.
        """
        if self.pinned:
            raise EstimationError(f"{self.label}: cannot warm-start a pinned tracker")
        if self.observations:
            raise EstimationError(
                f"{self.label}: warm_start after {len(self.observations)} stages"
            )
        if points <= 0 or tuples < 0:
            raise EstimationError(
                f"{self.label}: invalid warm-start prior ({tuples}, {points})"
            )
        self.prior_tuples = float(tuples)
        self.prior_points = float(points)

    @property
    def has_prior(self) -> bool:
        return self.prior_points > 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def record_stage(self, tuples: int, points: int) -> None:
        """Record one completed stage's output count and sampled points."""
        self.observations.append(StageObservation(tuples, points))
        if self.sink is not None:
            self.sink.emit(
                SelectivityRevision(
                    operator=self.label,
                    stage=len(self.observations),
                    tuples=tuples,
                    points=points,
                    sel_prev=self.sel_prev,
                )
            )

    def snapshot(self) -> int:
        """Opaque rollback token: the observation count."""
        return len(self.observations)

    def restore(self, token: int) -> None:
        """Forget observations recorded after a :meth:`snapshot` token."""
        if not 0 <= token <= len(self.observations):
            raise EstimationError(
                f"{self.label}: cannot restore to {token} observations "
                f"(has {len(self.observations)})"
            )
        del self.observations[token:]

    @property
    def total_tuples(self) -> int:
        return sum(o.tuples for o in self.observations)

    @property
    def total_points(self) -> int:
        return sum(o.points for o in self.observations)

    @property
    def stages_observed(self) -> int:
        return len(self.observations)

    # ------------------------------------------------------------------
    # Revise-Selectivities (Figure 3.3)
    # ------------------------------------------------------------------
    @property
    def sel_prev(self) -> float:
        """``sel^{i−1}`` — pooled selectivity of prior + previous stages.

        A *pinned* tracker (pure prestored mode, see
        :mod:`repro.statistics.prestored`) always reports its configured
        value and never learns from the samples. Warm-start pseudo-counts
        pool with the observed stages, so the catalog's evidence is diluted
        (not replaced) by what this run actually sees.
        """
        if self.pinned:
            return self.initial
        points = self.total_points + self.prior_points
        if points == 0:
            return self.initial
        return (self.total_tuples + self.prior_tuples) / points

    def effective_sel_prev(self) -> float:
        """``sel^{i−1}`` with the zero-selectivity fix applied."""
        sel = self.sel_prev
        if sel > 0.0:
            return sel
        return self.zero_selectivity_bound()

    def zero_selectivity_bound(self) -> float:
        """The closed-form bound used when all observed points were 0.

        Largest selectivity ``S`` with ``P(no output in M draws) ≥ β``:
        under with-replacement draws ``(1−S)^M ≥ β`` ⇒ ``S = 1 − β^{1/M}``
        (a slight over-estimate versus the hypergeometric, i.e. safe).
        """
        observed = self.total_points + self.prior_points
        if observed <= 0:
            return self.initial
        return 1.0 - self.zero_fix_beta ** (1.0 / observed)

    # ------------------------------------------------------------------
    # ComputeSel+ (Figure 3.5 / equation 3.3)
    # ------------------------------------------------------------------
    def variance(self, candidate_points: int, space_points: int) -> float:
        """SRS approximation of ``Var(sel_i)`` for a candidate stage size."""
        if candidate_points <= 0:
            raise EstimationError(
                f"{self.label}: candidate stage must sample points"
            )
        remaining = space_points - self.total_points
        if remaining <= 1:
            return 0.0
        m_i = min(candidate_points, remaining)
        return srs_selectivity_variance(self.effective_sel_prev(), m_i, remaining)

    def sel_plus(
        self, d_beta: float, candidate_points: int, space_points: int
    ) -> float:
        """``sel⁺ = sel^{i−1} + d_β·sqrt(Var(sel_i))``, clamped to (0, 1]."""
        if d_beta < 0:
            raise EstimationError(f"d_beta must be non-negative, got {d_beta}")
        if self.pinned:
            return self.initial
        if self.stages_observed == 0 and not self.has_prior:
            # Stage 1, cold: no data — the assumed maximum stands alone.
            return self.initial
        sel = self.effective_sel_prev()
        margin = d_beta * self.variance(candidate_points, space_points) ** 0.5
        return min(max(sel + margin, 1e-12), 1.0)

    # ------------------------------------------------------------------
    # Series access (for the Single-Interval covariance machinery)
    # ------------------------------------------------------------------
    def per_stage_selectivities(self) -> list[float]:
        """``sel_j`` per completed stage (stages with zero points skipped)."""
        return [o.tuples / o.points for o in self.observations if o.points > 0]
