"""Distinct-count (number of classes) estimators for the Project operator.

For a Select–Join–Intersect–**Project** expression, ``COUNT(E)`` is the
number of *groups* of points mapping to distinct projected values
(Section 2). [HoOT 88] revises **Goodman's estimator** [Good 49] — the
classic unbiased estimator of the number of classes in a finite population
from the class occupancies observed in a without-replacement sample — for
this purpose.

We implement:

* :func:`goodman_raw` — Goodman's exact unbiased form. It is famously
  unstable at small sampling fractions (the alternating series' coefficients
  explode), which is precisely why a revision is needed.
* :func:`goodman_estimate` — the *revised* form used by the library's
  Project estimator: Goodman's value when it is finite and inside the
  feasible range ``[d, N]``, otherwise a stable Chao-style fallback. The
  exact revision of [HoOT 88] is not recoverable from the paper; this
  clamped/fallback construction preserves its two documented properties
  (agrees with Goodman where Goodman behaves; never produces an infeasible
  value). See DESIGN.md §3.
* :func:`chao1`, :func:`jackknife1`, :func:`good_turing_coverage` —
  standard baselines used in the estimator-quality benches.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

from repro.errors import EstimationError
from repro.estimation.estimate import Estimate

_GOODMAN_COEF_CAP = 1e12
"""Series coefficients above this are treated as numerically exploded."""


def _freq_of_freq(occupancy: Sequence[int]) -> dict[int, int]:
    if any(o <= 0 for o in occupancy):
        raise EstimationError("occupancy counts must be positive")
    return dict(Counter(occupancy))


def goodman_raw(
    population: int, sample_size: int, occupancy: Sequence[int]
) -> float:
    """Goodman's unbiased number-of-classes estimator.

    ``population`` = N population units, ``sample_size`` = n sampled units
    (without replacement), ``occupancy`` = per-observed-class sample counts.

    ``D̂ = d + Σ_j (−1)^{j+1} · f_j · Π_{t=0}^{j−1} (N−n+t)/(n−t)``

    Unbiased whenever the largest population class size is at most ``n``
    [Good 49]. Returns ``±inf`` if the series coefficients overflow.
    """
    if sample_size <= 0 or population < sample_size:
        raise EstimationError(
            f"invalid sizes: population={population}, sample={sample_size}"
        )
    total_occupancy = sum(occupancy)
    if total_occupancy > sample_size:
        raise EstimationError(
            f"occupancies sum to {total_occupancy} > sample size {sample_size}"
        )
    d = len(occupancy)
    freq = _freq_of_freq(occupancy)
    estimate = float(d)
    for j, f_j in sorted(freq.items()):
        coef = 1.0
        for t in range(j):
            denominator = sample_size - t
            if denominator <= 0:
                return math.inf
            coef *= (population - sample_size + t) / denominator
            if coef > _GOODMAN_COEF_CAP:
                return math.inf if (j % 2 == 1) else -math.inf
        estimate += (1.0 if j % 2 == 1 else -1.0) * coef * f_j
    return estimate


def chao1(occupancy: Sequence[int]) -> float:
    """Chao's lower-bound estimator ``d + f1²/(2 f2)`` (f2=0 → f1(f1−1)/2)."""
    freq = _freq_of_freq(occupancy)
    d = len(occupancy)
    f1 = freq.get(1, 0)
    f2 = freq.get(2, 0)
    if f2 > 0:
        return d + f1 * f1 / (2.0 * f2)
    return d + f1 * (f1 - 1) / 2.0


def jackknife1(sample_size: int, occupancy: Sequence[int]) -> float:
    """First-order jackknife ``d + f1·(n−1)/n``."""
    if sample_size <= 0:
        raise EstimationError("jackknife needs a positive sample size")
    freq = _freq_of_freq(occupancy)
    return len(occupancy) + freq.get(1, 0) * (sample_size - 1) / sample_size


def good_turing_coverage(occupancy: Sequence[int]) -> float:
    """Good–Turing sample coverage ``1 − f1/n`` (floored at a small positive)."""
    freq = _freq_of_freq(occupancy)
    n = sum(occupancy)
    if n == 0:
        raise EstimationError("coverage of an empty sample is undefined")
    return max(1.0 - freq.get(1, 0) / n, 1.0 / (2.0 * n))


def goodman_estimate(
    population: int,
    sample_size: int,
    occupancy: Sequence[int],
    rng: np.random.Generator | None = None,
    n_boot: int = 32,
) -> Estimate:
    """The revised Goodman estimator with a bootstrap variance.

    Uses :func:`goodman_raw` when it is finite and feasible (within
    ``[d, population]``); otherwise falls back to the coverage-adjusted
    ``d / Ĉ`` (Good–Turing) form, clamped to the feasible range. The
    variance is a multinomial bootstrap over the occupancy profile —
    Goodman's analytic variance is itself numerically fragile, and the
    bootstrap is cheap at sample sizes the staged executor sees.
    """
    if not occupancy:
        return Estimate(
            value=0.0,
            variance=0.0,
            sample_points=sample_size,
            population_points=population,
        )
    value = _revised_point(population, sample_size, occupancy)
    exact = sample_size == population
    if exact:
        return Estimate(
            value=float(len(occupancy)),
            variance=0.0,
            sample_points=sample_size,
            population_points=population,
            exact=True,
        )
    variance = _bootstrap_variance(
        population, sample_size, occupancy, rng=rng, n_boot=n_boot
    )
    return Estimate(
        value=value,
        variance=variance,
        sample_points=sample_size,
        population_points=population,
    )


def _revised_point(
    population: int, sample_size: int, occupancy: Sequence[int]
) -> float:
    d = len(occupancy)
    raw = goodman_raw(population, sample_size, occupancy)
    if math.isfinite(raw) and d <= raw <= population:
        return raw
    # Stable fallback: the larger of the coverage-adjusted count (d / Ĉ,
    # strong on near-uniform class sizes) and Chao1 (strong on skewed
    # ones — a lower bound, so taking the max never overcorrects past a
    # valid estimate), clamped to the feasible range.
    coverage_based = d / good_turing_coverage(occupancy)
    return float(min(max(coverage_based, chao1(occupancy), d), population))


def _bootstrap_variance(
    population: int,
    sample_size: int,
    occupancy: Sequence[int],
    rng: np.random.Generator | None,
    n_boot: int,
) -> float:
    rng = rng if rng is not None else np.random.default_rng(0)
    occ = np.asarray(occupancy, dtype=np.int64)
    n = int(occ.sum())
    if n == 0 or n_boot <= 1:
        return 0.0
    probs = occ / n
    values = []
    for _ in range(n_boot):
        resampled = rng.multinomial(n, probs)
        resampled = resampled[resampled > 0]
        if resampled.size == 0:
            values.append(0.0)
            continue
        values.append(
            _revised_point(population, sample_size, [int(v) for v in resampled])
        )
    return float(np.var(values, ddof=1))
