"""Estimators and run-time selectivity estimation (systems S8–S9)."""

from repro.estimation.aggregates import (
    COUNT,
    AggregateSpec,
    StreamingMoments,
    avg_from_sum_count,
    avg_of,
    count,
    srs_sum_estimate,
    sum_of,
)

from repro.estimation.count_estimators import (
    cluster_count_estimate,
    combine_term_estimates,
    required_sample_for_error,
    srs_count_estimate,
    srs_count_variance,
    srs_selectivity_variance,
)
from repro.estimation.estimate import Estimate, normal_quantile
from repro.estimation.goodman import (
    chao1,
    good_turing_coverage,
    goodman_estimate,
    goodman_raw,
    jackknife1,
)
from repro.estimation.selectivity import (
    DEFAULT_ZERO_FIX_BETA,
    SelectivityTracker,
    StageObservation,
)

__all__ = [
    "AggregateSpec",
    "COUNT",
    "DEFAULT_ZERO_FIX_BETA",
    "Estimate",
    "SelectivityTracker",
    "StreamingMoments",
    "StageObservation",
    "avg_from_sum_count",
    "avg_of",
    "chao1",
    "cluster_count_estimate",
    "combine_term_estimates",
    "count",
    "good_turing_coverage",
    "goodman_estimate",
    "goodman_raw",
    "jackknife1",
    "normal_quantile",
    "required_sample_for_error",
    "srs_count_estimate",
    "srs_sum_estimate",
    "sum_of",
    "srs_count_variance",
    "srs_selectivity_variance",
]
