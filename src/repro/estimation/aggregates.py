"""SUM and AVG estimators — lifting the paper's COUNT restriction.

Section 1: "we present a methodology to process the query 'Evaluate f(E)
within T time units' where f is an aggregate function … This paper restricts
f to COUNT." The restriction is not fundamental: in the point-space model a
1-point carries the output tuple it produces, so any per-tuple value ``v``
aggregates the same way COUNT's constant 1 does. This module implements the
natural extension (which the authors themselves pursued in later work):

* **SUM** — ``û_sum = N · (Σ v_i / m)`` over the ``m`` sampled points, where
  a 0-point contributes 0. Unbiased and consistent for exactly the reasons
  ``û`` is: every point is equally likely to enter the sample. The variance
  estimate is the standard SRS-without-replacement form over the per-point
  value distribution (which is mostly zeros — the zeros carry real variance
  information and are accounted for without being materialised, via
  streaming moments).
* **AVG** — the ratio ``SUM/COUNT``, with the standard ratio-estimator
  (delta method) variance; equivalently the sample mean over observed
  output tuples with its finite-population-style correction.

SUM/AVG are defined over Select–Join–Intersect expressions; a projection
changes the population from points to groups, where a per-group value is
ill-defined, so the staged engine rejects SUM/AVG over Project.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError
from repro.estimation.estimate import Estimate


@dataclass
class StreamingMoments:
    """Streaming Σv, Σv² (and count) over observed output-tuple values.

    Together with the total sampled points ``m``, these give the sample
    moments over *all* points — the unobserved 0-points contribute zero to
    both sums but appear in the denominator.
    """

    ones: int = 0
    total: float = 0.0
    total_sq: float = 0.0

    def add(self, value: float) -> None:
        self.ones += 1
        self.total += value
        self.total_sq += value * value

    def add_many(self, values) -> None:
        for value in values:
            self.add(float(value))

    def merge(self, other: "StreamingMoments") -> None:
        self.ones += other.ones
        self.total += other.total
        self.total_sq += other.total_sq

    def scaled(self, coefficient: float) -> "StreamingMoments":
        """Moments of the values multiplied by a signed coefficient."""
        out = StreamingMoments(
            ones=self.ones,
            total=coefficient * self.total,
            total_sq=coefficient * coefficient * self.total_sq,
        )
        return out


def srs_sum_estimate(
    population: int, sampled: int, moments: StreamingMoments
) -> Estimate:
    """``û_sum = N · (Σ v / m)`` with SRS-without-replacement variance."""
    if population <= 0 or sampled <= 0 or sampled > population:
        raise EstimationError(
            f"invalid sizes: population={population}, sampled={sampled}"
        )
    if moments.ones > sampled:
        raise EstimationError(
            f"{moments.ones} valued points exceed sample size {sampled}"
        )
    mean = moments.total / sampled
    value = population * mean
    if sampled == population:
        return Estimate(
            value=moments.total,
            variance=0.0,
            sample_points=sampled,
            population_points=population,
            exact=True,
        )
    if sampled == 1:
        # One point gives no variance information; worst case on the seen
        # magnitude keeps the earliest stages conservative.
        s2 = moments.total_sq if moments.total_sq > 0 else 1.0
    else:
        # Sample variance over all m per-point values, zeros included:
        # Σ(x−x̄)² = Σx² − m·x̄².
        s2 = max(moments.total_sq - sampled * mean * mean, 0.0) / (sampled - 1)
    fpc = max(1.0 - sampled / population, 0.0)
    variance = population * population * s2 / sampled * fpc
    return Estimate(
        value=value,
        variance=variance,
        sample_points=sampled,
        population_points=population,
    )


def avg_from_sum_count(
    sum_estimate: Estimate, count_estimate: Estimate, moments: StreamingMoments
) -> Estimate:
    """AVG as the ratio SUM/COUNT with a delta-method variance.

    ``Var(S/C) ≈ (1/C²)·(Var(S) + R²·Var(C) − 2R·Cov(S, C))`` with the
    covariance approximated through the observed per-output values:
    ``Cov(S, C) ≈ v̄ · Var(C)`` (exact when values are uncorrelated with
    membership), which reduces the bracket to
    ``Var(S) + R²Var(C) − 2R·v̄·Var(C)``.
    """
    count = count_estimate.value
    if count <= 0 or moments.ones == 0:
        # No observed output tuples: an average is undefined; report 0 with
        # no confidence rather than fail, mirroring COUNT's zero case.
        return Estimate(
            value=0.0,
            variance=0.0,
            sample_points=count_estimate.sample_points,
            population_points=count_estimate.population_points,
            exact=count_estimate.exact,
        )
    ratio = sum_estimate.value / count
    v_bar = moments.total / moments.ones
    bracket = (
        sum_estimate.variance
        + ratio * ratio * count_estimate.variance
        - 2.0 * ratio * v_bar * count_estimate.variance
    )
    variance = max(bracket, 0.0) / (count * count)
    if sum_estimate.exact and count_estimate.exact:
        variance = 0.0
    return Estimate(
        value=ratio,
        variance=variance,
        sample_points=count_estimate.sample_points,
        population_points=count_estimate.population_points,
        exact=sum_estimate.exact and count_estimate.exact,
    )


@dataclass(frozen=True)
class AggregateSpec:
    """What ``f(E)`` to evaluate: COUNT, SUM(attr), or AVG(attr)."""

    kind: str
    attribute: str | None = None

    _KINDS = ("count", "sum", "avg")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise EstimationError(
                f"unknown aggregate {self.kind!r}; choose from {self._KINDS}"
            )
        if self.kind == "count" and self.attribute is not None:
            raise EstimationError("COUNT takes no attribute")
        if self.kind in ("sum", "avg") and not self.attribute:
            raise EstimationError(f"{self.kind.upper()} needs an attribute")

    @property
    def needs_values(self) -> bool:
        return self.kind in ("sum", "avg")


COUNT = AggregateSpec("count")


def count() -> AggregateSpec:
    """``COUNT(*)`` over the expression's output tuples (the default)."""
    return COUNT


def sum_of(attribute: str) -> AggregateSpec:
    """``SUM(attribute)`` over the expression's output tuples."""
    return AggregateSpec("sum", attribute)


def avg_of(attribute: str) -> AggregateSpec:
    """``AVG(attribute)`` over the expression's output tuples."""
    return AggregateSpec("avg", attribute)
