"""Query results returned by the public API."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import EstimationError
from repro.estimation.estimate import Estimate
from repro.faults.injector import FaultRecord
from repro.timecontrol.executor import RunReport


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one time-constrained COUNT evaluation.

    ``estimate`` may be ``None`` when not even the first stage finished
    inside the quota — the hard-deadline analogue of a query that returned
    nothing. All the paper's per-run measures (stages, risk, overspend,
    utilization, blocks) are exposed for harness use.
    """

    report: RunReport

    @property
    def estimate(self) -> Estimate | None:
        return self.report.estimate

    @property
    def value(self) -> float:
        """The COUNT estimate; raises if no stage completed in time."""
        if self.report.estimate is None:
            raise EstimationError(
                "no stage completed within the quota; no estimate available "
                "(termination: " + self.report.termination + ")"
            )
        return self.report.estimate.value

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        if self.report.estimate is None:
            raise EstimationError("no estimate available")
        return self.report.estimate.confidence_interval(level)

    @property
    def exact(self) -> bool:
        """True when sampling covered the whole point space."""
        return self.report.estimate is not None and self.report.estimate.exact

    # -- run diagnostics (the paper's table columns) ---------------------
    @property
    def stages(self) -> int:
        return self.report.stages_completed_in_time

    @property
    def stages_attempted(self) -> int:
        return len(self.report.stages)

    @property
    def overspent(self) -> bool:
        return self.report.overspent

    @property
    def overspend_seconds(self) -> float:
        return self.report.overspend_seconds

    @property
    def utilization(self) -> float:
        return self.report.utilization

    @property
    def blocks(self) -> int:
        return self.report.blocks_within_quota

    @property
    def termination(self) -> str:
        return self.report.termination

    @property
    def quota(self) -> float:
        return self.report.quota

    # -- fault salvage (see :mod:`repro.faults`) -------------------------
    @property
    def faults(self) -> list[FaultRecord]:
        """Faults injected and salvaged during the run (empty if none)."""
        return self.report.faults

    @property
    def faulted(self) -> bool:
        return self.report.faulted

    @property
    def degraded(self) -> bool:
        """True when injected faults ended the run early; the estimate is
        the last consistent pre-fault one (possibly ``None``)."""
        return self.report.degraded

    def relative_error(self, true_count: float) -> float:
        """|estimate − truth| / truth (math.inf when truth is zero)."""
        if self.report.estimate is None:
            raise EstimationError("no estimate available")
        if true_count == 0:
            return 0.0 if self.report.estimate.value == 0 else math.inf
        return abs(self.report.estimate.value - true_count) / abs(true_count)

    def trace(self) -> str:
        """Multi-line per-stage trace of the run — the paper's Figure 3.1
        loop made visible: fraction chosen, duration, blocks, and the
        estimate after each stage."""
        lines = [
            f"quota {self.report.quota:g}s, strategy-driven stages "
            f"({self.report.termination}):"
        ]
        for stage in self.report.stages:
            flag = "" if stage.completed_in_time else "  ← past deadline"
            if stage.aborted_mid_stage:
                flag = "  ← interrupted mid-stage"
            estimate = (
                f"{stage.estimate.value:.1f}" if stage.estimate else "-"
            )
            lines.append(
                f"  stage {stage.index}: f={stage.fraction:.4f}  "
                f"{stage.duration:.3f}s  +{stage.blocks_read} blocks  "
                f"≈{estimate}{flag}"
            )
        if self.report.estimate is not None:
            lo, hi = self.report.estimate.confidence_interval(0.95)
            lines.append(
                f"  answer: {self.report.estimate.value:.1f} "
                f"(95% CI [{lo:.1f}, {hi:.1f}])"
            )
        else:
            lines.append("  answer: none (no stage completed in time)")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.report.estimate is None:
            return (
                f"<no estimate; termination={self.report.termination}, "
                f"quota={self.report.quota:g}s>"
            )
        est = self.report.estimate
        lo, hi = est.confidence_interval(0.95)
        label = self.report.aggregate.upper()
        return (
            f"{label} ≈ {est.value:.1f} (95% CI [{lo:.1f}, {hi:.1f}]), "
            f"{self.stages} stages, {self.blocks} blocks, "
            f"utilization {self.utilization:.0%}"
            + (", OVERSPENT" if self.overspent else "")
        )
