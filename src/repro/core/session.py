"""Per-query sessions — one self-contained, observable unit of execution.

A :class:`QuerySession` owns everything one time-constrained query run
needs and *nothing* it shares with any other run: the spawned RNG stream,
the :class:`~repro.timekeeping.charger.CostCharger` with its clock, the
adaptive :class:`~repro.costmodel.model.CostModel`, the
:class:`~repro.engine.plan.StagedPlan`, the time-control strategy, the
stopping criterion, and the run's trace sink. Two sessions never share
mutable state, which is what makes runs independently replayable,
traceable, and safe to fan out across processes (see
:mod:`repro.experiments.runner`).

:class:`Database` opens sessions (:meth:`Database.open_session`) and its
``estimate`` entrypoint is a one-line wrapper over
``open_session(...).run()``. Use a session directly when you want to
inspect the machinery before or after the run::

    from repro.observability import RecordingSink

    sink = RecordingSink()
    session = db.open_session(expr, quota=10.0, sink=sink)
    result = session.run()
    stage_events = sink.of_kind("stage_end")
    session.plan.trackers()     # post-run selectivity state
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.catalog.catalog import Catalog
from repro.core.result import QueryResult
from repro.core.switches import resolve_partitions, resolve_switch
from repro.costmodel.model import CostModel
from repro.engine.plan import StagedPlan
from repro.errors import ReproError
from repro.estimation.aggregates import AggregateSpec
from repro.faults.injector import FaultInjector
from repro.observability.trace import NULL_SINK, TraceSink
from repro.relational.expression import Expression
from repro.storage.heapfile import DEFAULT_BLOCK_SIZE
from repro.timecontrol.executor import (
    Checkpoint,
    RunReport,
    SuspendedRun,
    TimeConstrainedExecutor,
)
from repro.timecontrol.stopping import StoppingCriterion
from repro.timecontrol.strategies import OneAtATimeInterval, TimeControlStrategy
from repro.timekeeping.charger import CostCharger

_session_counter = itertools.count(1)


@dataclass(frozen=True)
class ExecutionContext:
    """The per-run mutable machinery, bundled.

    Everything in here is owned by exactly one session: the RNG stream
    (sampling + cost jitter), the charger (clock + deadline + accounting),
    the cost model (refit during the run), and the trace sink.
    """

    rng: np.random.Generator
    charger: CostCharger
    cost_model: CostModel
    sink: TraceSink = field(default_factory=lambda: NULL_SINK)
    injector: FaultInjector | None = None


class QuerySession:
    """One time-constrained aggregate query, ready to run.

    Construction builds the full staged machinery (plan + executor) from an
    :class:`ExecutionContext`; :meth:`run` executes it exactly once. All
    parts stay reachable afterwards for inspection: :attr:`plan`,
    :attr:`executor`, :attr:`context`, :attr:`result`.
    """

    def __init__(
        self,
        expr: Expression,
        catalog: Catalog,
        quota: float,
        context: ExecutionContext,
        strategy: TimeControlStrategy | None = None,
        stopping: StoppingCriterion | None = None,
        measure_overspend: bool = True,
        max_stages: int = 64,
        aggregate: AggregateSpec | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        full_fulfillment: bool = True,
        initial_selectivities: dict[str, float] | None = None,
        zero_fix_beta: float | None = None,
        hint_provider=None,
        pin_selectivities: bool = False,
        vectorized: bool | None = None,
        optimize: bool | None = None,
        binder=None,
        bufferpool=None,
        partitions: bool | int | None = None,
    ) -> None:
        from repro.estimation.aggregates import COUNT

        self.expr = expr
        self.quota = quota
        self.context = context
        self.label = f"session-{next(_session_counter)}"
        # None → honour the process-wide REPRO_OPTIMIZE switch (default on).
        self.optimize = resolve_switch(optimize, "REPRO_OPTIMIZE", default=True)
        # None → honour REPRO_PARTITIONS (default on, serial). The resolved
        # (enabled, workers) pair only selects the read path over relations
        # that actually are partitioned; invariant 10 keeps answers
        # bit-identical either way.
        self.partitions = resolve_partitions(partitions)
        self.strategy = (
            strategy if strategy is not None else OneAtATimeInterval(d_beta=24.0)
        )
        self.plan = StagedPlan(
            expr,
            catalog,
            context.charger,
            context.cost_model,
            context.rng,
            block_size=block_size,
            full_fulfillment=full_fulfillment,
            initial_selectivities=initial_selectivities,
            zero_fix_beta=zero_fix_beta,
            aggregate=aggregate if aggregate is not None else COUNT,
            hint_provider=hint_provider,
            pin_selectivities=pin_selectivities,
            sink=context.sink,
            vectorized=vectorized,
            injector=context.injector,
            optimize=self.optimize,
            binder=binder,
            bufferpool=bufferpool,
            partitions=self.partitions,
        )
        self.binder = binder
        self.bufferpool = bufferpool
        self.executor = TimeConstrainedExecutor(
            self.plan,
            self.strategy,
            stopping=stopping,
            measure_overspend=measure_overspend,
            max_stages=max_stages,
            sink=context.sink,
        )
        self._result: QueryResult | None = None
        self._suspended: SuspendedRun | None = None

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    @property
    def sink(self) -> TraceSink:
        return self.context.sink

    @property
    def charger(self) -> CostCharger:
        return self.context.charger

    @property
    def rng(self) -> np.random.Generator:
        return self.context.rng

    @property
    def result(self) -> QueryResult | None:
        """The outcome, once :meth:`run` has been called."""
        return self._result

    @property
    def report(self) -> RunReport | None:
        return self._result.report if self._result is not None else None

    @property
    def finished(self) -> bool:
        return self._result is not None

    @property
    def suspended(self) -> bool:
        """True while the run is parked at a stage boundary."""
        return self._suspended is not None

    @property
    def suspended_state(self) -> SuspendedRun | None:
        """The checkpoint token, for inspection while parked."""
        return self._suspended

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> QueryResult:
        """Execute the session's plan within its quota, exactly once.

        A session is one run: its sampler state, cost-model fit, and trace
        are that run's record. Re-running would silently continue the same
        sample — open a fresh session instead.
        """
        result = self.run_preemptible(checkpoint=None)
        assert result is not None  # no checkpoint → can never suspend
        return result

    def run_preemptible(
        self, checkpoint: Checkpoint | None = None
    ) -> QueryResult | None:
        """Like :meth:`run`, but suspendable at stage boundaries.

        When ``checkpoint`` answers ``True`` between stages the session
        parks instead of finishing: this returns ``None``,
        :attr:`suspended` flips on, and :meth:`resume` continues the run
        later — bit-identically, since suspension charges nothing and
        draws no randomness. Without a checkpoint this is exactly
        :meth:`run`.
        """
        if self._result is not None:
            raise ReproError(
                "this QuerySession already ran; open a new session "
                "(sessions are single-use so runs stay independent)"
            )
        if self._suspended is not None:
            raise ReproError(
                "this QuerySession is suspended; continue it with "
                "resume() instead of starting a fresh run"
            )
        try:
            out = self.executor.run(self.quota, checkpoint=checkpoint)
        except ReproError as exc:
            # Anything that escapes the executor carries where it happened.
            raise exc.with_context(
                stage=self.plan.stages_completed + 1, session=self.label
            )
        return self._absorb(out)

    def resume(
        self, checkpoint: Checkpoint | None = None
    ) -> QueryResult | None:
        """Continue a suspended run; may suspend again.

        The executor restores the suspension snapshot and re-arms the
        original absolute deadline, so time spent parked has already been
        deducted from the budget — exactly like queue wait before the
        first dispatch.
        """
        if self._suspended is None:
            raise ReproError(
                "this QuerySession is not suspended; nothing to resume"
            )
        suspended, self._suspended = self._suspended, None
        try:
            out = self.executor.resume(suspended, checkpoint=checkpoint)
        except ReproError as exc:
            raise exc.with_context(
                stage=self.plan.stages_completed + 1, session=self.label
            )
        return self._absorb(out)

    def _absorb(self, out: RunReport | SuspendedRun) -> QueryResult | None:
        """File the executor's outcome: park, or finalize the result."""
        if isinstance(out, SuspendedRun):
            self._suspended = out
            return None
        self._result = QueryResult(report=out)
        if self.binder is not None:
            # Deposit the run's evidence into the synopsis catalog, keyed
            # by the query as written (pre-optimizer). Only terminal runs
            # deposit — a parked session's evidence is still in flight.
            self.binder.absorb_run(self.plan, out, self.expr)
        return self._result
