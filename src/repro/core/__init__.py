"""Public DBMS facade and per-query sessions (system S15)."""

from repro.core.database import Database
from repro.core.options import DEFAULT_OPTIONS, QueryOptions
from repro.core.result import QueryResult
from repro.core.session import ExecutionContext, QuerySession

__all__ = [
    "DEFAULT_OPTIONS",
    "Database",
    "ExecutionContext",
    "QueryOptions",
    "QueryResult",
    "QuerySession",
]
