"""Public DBMS facade (system S15)."""

from repro.core.database import Database
from repro.core.result import QueryResult

__all__ = ["Database", "QueryResult"]
