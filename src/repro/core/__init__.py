"""Public DBMS facade and per-query sessions (system S15)."""

from repro.core.database import Database
from repro.core.result import QueryResult
from repro.core.session import ExecutionContext, QuerySession

__all__ = ["Database", "ExecutionContext", "QueryResult", "QuerySession"]
