"""The prototype DBMS facade — the library's main entry point.

:class:`Database` plays the role of ERAM: it owns the catalog and the
machine (cost profile), evaluates RA expressions exactly, and answers
``COUNT(E)`` queries under a time quota with the full staged machinery —
cluster sampling, run-time selectivity estimation, adaptive cost formulas,
and a pluggable time-control strategy / stopping criterion.

Typical use::

    db = Database(profile=MachineProfile.sun3_60(), seed=42)
    db.create_relation(
        "orders", [("id", "int"), ("qty", "int")],
        rows=((i, i % 50) for i in range(10_000)))
    result = db.estimate(
        rel("orders").where(cmp("qty", ">", 40)),
        quota=10.0,
        options=QueryOptions(strategy=OneAtATimeInterval(d_beta=24)),
    )
    print(result.summary())
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute, Schema
from repro.catalog.types import AttributeType
from repro.core.options import QueryOptions
from repro.core.result import QueryResult
from repro.core.session import ExecutionContext, QuerySession
from repro.core.switches import resolve_switch
from repro.costmodel.model import CostModel
from repro.errors import ReproError
from repro.observability.trace import NULL_SINK, TraceSink
from repro.relational.evaluator import ExactEvaluator
from repro.relational.expression import Expression
from repro.storage.heapfile import DEFAULT_BLOCK_SIZE, HeapFile
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.clock import Clock, SimulatedClock, WallClock
from repro.timekeeping.profile import MachineProfile

if TYPE_CHECKING:
    from repro.synopses.catalog import SynopsisCatalog

_TYPE_NAMES = {
    "int": AttributeType.INT,
    "float": AttributeType.FLOAT,
    "str": AttributeType.STR,
}


def _resolve_schema(
    spec: Schema | Sequence[tuple[str, str]],
) -> Schema:
    if isinstance(spec, Schema):
        return spec
    attributes = []
    for name, type_name in spec:
        if type_name not in _TYPE_NAMES:
            raise ReproError(
                f"unknown attribute type {type_name!r}; "
                f"choose from {sorted(_TYPE_NAMES)}"
            )
        attributes.append(Attribute(name, _TYPE_NAMES[type_name]))
    return Schema(tuple(attributes))


class Database:
    """An in-process time-constrained DBMS instance.

    Parameters
    ----------
    profile:
        The simulated machine (defaults to the calibrated SUN 3/60-class
        profile). Use :meth:`MachineProfile.modern` for millisecond quotas.
    seed:
        Master seed; every query derives an independent stream from it, so
        whole experiment batteries are reproducible.
    block_size:
        Disk block size in bytes (the paper's experiments use 1 KB).
    clock:
        ``"simulated"`` (default) charges deterministic virtual time;
        ``"wall"`` measures real elapsed time instead.
    """

    def __init__(
        self,
        profile: MachineProfile | None = None,
        seed: int | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        clock: str = "simulated",
        synopsis_catalog: "SynopsisCatalog | None" = None,
    ) -> None:
        if clock not in ("simulated", "wall"):
            raise ReproError(f"clock must be 'simulated' or 'wall': {clock!r}")
        self.profile = profile if profile is not None else MachineProfile.sun3_60()
        self.block_size = block_size
        self.clock_kind = clock
        self.catalog = Catalog()
        self.statistics: dict[str, "RelationStatistics"] = {}
        self._seed_sequence = np.random.SeedSequence(seed)
        if synopsis_catalog is None:
            from repro.synopses.catalog import SynopsisCatalog

            # One catalog per Database by default: keys embed relation-size
            # fingerprints so *sharing* one (synopsis_catalog=) is sound,
            # but independent databases should not see each other's runs.
            synopsis_catalog = SynopsisCatalog()
        self.synopses = synopsis_catalog

    # ------------------------------------------------------------------
    # Relation management
    # ------------------------------------------------------------------
    def create_relation(
        self,
        name: str,
        schema: Schema | Sequence[tuple[str, str]],
        rows: Iterable[Sequence],
        block_size: int | None = None,
        partitions: int | None = None,
        partition_strategy: str = "round_robin",
    ) -> HeapFile:
        """Create and bulk-load a stored relation.

        ``partitions=K`` (K >= 1) stores the relation as a
        :class:`~repro.storage.partitioned.PartitionedHeapFile` split into
        K deterministic shards (``partition_strategy`` is ``"round_robin"``
        or ``"hash"``). Partitioning happens at block granularity, so the
        global block layout — and therefore every sample, estimate, and
        charged cost — is bit-identical to the unpartitioned relation
        (invariant 10); shards only unlock the parallel read path
        (``QueryOptions(partitions=N)``).
        """
        if partitions is not None and partitions >= 1:
            from repro.storage.partitioned import PartitionedHeapFile

            heap: HeapFile = PartitionedHeapFile(
                name,
                _resolve_schema(schema),
                block_size or self.block_size,
                partitions=partitions,
                strategy=partition_strategy,
            )
        elif partitions is not None:
            raise ReproError(f"partitions must be >= 1: {partitions}")
        else:
            heap = HeapFile(
                name, _resolve_schema(schema), block_size or self.block_size
            )
        heap.load(rows)
        self.catalog.register(name, heap)
        return heap

    def append_rows(self, name: str, rows: Iterable[Sequence]) -> int:
        """Append rows to a stored relation (a committed write).

        Grows the heap file in place and invalidates everything derived
        from the old contents: the plan cache's entries fingerprinted over
        this relation, its prestored statistics (the paper's maintenance
        burden — re-run :meth:`analyze`), the synopsis catalog's entries
        over it, and every buffer pool's cached blocks of it. Returns the
        number of rows appended. This is what
        :mod:`repro.realtime` write transactions call on commit.
        """
        heap = self.catalog.get(name)
        before = heap.tuple_count
        heap.load(rows)
        self._on_relation_mutated(name)
        return heap.tuple_count - before

    def drop_relation(self, name: str) -> None:
        self.catalog.drop(name)
        self._on_relation_mutated(name)

    def _on_relation_mutated(self, name: str) -> None:
        """Committed mutation of ``name``: drop every derived artifact.

        One breath evicts every derived layer: plan-cache entries
        fingerprinted over the relation, its prestored statistics, the
        synopsis catalog's entries, every buffer pool's cached blocks
        (:mod:`repro.storage.bufferpool` broadcasts across live pools),
        and the shard-metadata cache's assignments for the relation.
        Realtime :class:`~repro.realtime.transaction.WriteTask` commits
        land here too, via :meth:`append_rows`.
        """
        from repro.planner.cache import invalidate_plan_cache_relation
        from repro.storage.bufferpool import invalidate_bufferpool_relation
        from repro.storage.partitioned import invalidate_shard_cache_relation

        invalidate_plan_cache_relation(name)
        self.statistics.pop(name, None)
        self.synopses.invalidate_relation(name)
        invalidate_bufferpool_relation(name)
        invalidate_shard_cache_relation(name)

    def relation(self, name: str) -> HeapFile:
        return self.catalog.get(name)

    def analyze(self, name: str | None = None, buckets: int = 32) -> None:
        """Build prestored statistics (equi-depth histograms) offline.

        ``name=None`` analyzes every relation. Required before using
        ``selectivity_source='prestored'`` or ``'hybrid'`` in
        :meth:`estimate`; re-run after data changes (the maintenance
        burden the paper holds against the prestored approach).
        """
        from repro.statistics.stats import analyze as analyze_relation

        names = [name] if name is not None else self.catalog.names()
        for relation_name in names:
            self.statistics[relation_name] = analyze_relation(
                self.catalog.get(relation_name), buckets=buckets
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _spawn_rng(self, seed: int | None) -> np.random.Generator:
        if seed is not None:
            return np.random.default_rng(seed)
        child = self._seed_sequence.spawn(1)[0]
        return np.random.default_rng(child)

    def _make_charger(
        self,
        rng: np.random.Generator,
        sink: TraceSink | None = None,
        trace_costs: bool = False,
        clock: Clock | None = None,
    ) -> CostCharger:
        if clock is None:
            clock = (
                SimulatedClock() if self.clock_kind == "simulated" else WallClock()
            )
        return CostCharger(
            self.profile, clock=clock, rng=rng, sink=sink, trace_costs=trace_costs
        )

    def _default_specs(self):
        """Designer cost-model priors for this machine class.

        The priors keep the deliberate 2–3× pessimism of the paper's
        initialisation but are scaled to the machine generation, the way
        the paper's designers calibrated theirs on their own hardware
        (Section 5). The scale is read off one public datum — the machine's
        block-read rate relative to the reference sun3_60 profile — not the
        full profile, which the controller never sees.
        """
        from repro.costmodel.steps import default_step_specs
        from repro.timekeeping.profile import CostKind

        reference = MachineProfile.sun3_60().rate(CostKind.BLOCK_READ)
        scale = self.profile.rate(CostKind.BLOCK_READ) / reference
        if scale <= 0:
            scale = 1.0  # zero-cost test profiles keep reference priors
        return default_step_specs(prior_scale=scale)

    def default_cost_model(self) -> CostModel:
        """A fresh adaptive cost model seeded with this machine's priors.

        Each session normally builds its own; a caller that wants one model
        calibrated *across* runs (e.g. :class:`repro.server.QueryServer`,
        which prices admission decisions with knowledge accumulated from
        every query it has executed) creates one here and passes it to
        :meth:`open_session` via ``cost_model=``.
        """
        return CostModel(specs=self._default_specs())

    # ------------------------------------------------------------------
    # Exact evaluation
    # ------------------------------------------------------------------
    def count(self, expr: Expression) -> int:
        """Exact COUNT(E), free of charge (the correctness oracle)."""
        free_profile = MachineProfile.uniform(0.0)
        charger = CostCharger(free_profile)
        return ExactEvaluator(self.catalog, charger, self.block_size).count(expr)

    def aggregate(self, expr: Expression, spec: "AggregateSpec") -> float:
        """Exact f(E) for COUNT / SUM(attr) / AVG(attr), free of charge."""
        from repro.estimation.aggregates import AggregateSpec  # noqa: F401
        from repro.relational.evaluator import rows_exact

        if spec.kind == "count":
            return float(self.count(expr))
        schema = expr.schema(self.catalog)
        index = schema.index_of(spec.attribute)
        rows = rows_exact(expr, self.catalog)
        total = float(sum(row[index] for row in rows))
        if spec.kind == "sum":
            return total
        if not rows:
            return 0.0
        return total / len(rows)

    def count_timed(self, expr: Expression, seed: int | None = None) -> tuple[int, float]:
        """Exact COUNT(E) and the simulated seconds it costs on this machine.

        The baseline a time quota is traded against: the same operator
        algorithms over the full relations instead of samples.
        """
        charger = self._make_charger(self._spawn_rng(seed))
        start = charger.clock.now()
        value = ExactEvaluator(self.catalog, charger, self.block_size).count(expr)
        return value, charger.clock.now() - start

    # ------------------------------------------------------------------
    # Time-constrained estimation — the paper's contribution
    # ------------------------------------------------------------------
    def open_session(
        self,
        expr: Expression,
        quota: float,
        options: QueryOptions | None = None,
        *,
        aggregate: "AggregateSpec | None" = None,
        seed: int | None = None,
        **overrides,
    ) -> QuerySession:
        """Open a :class:`QuerySession` for one time-constrained run.

        The session owns every piece of per-run mutable state — the spawned
        RNG stream, the cost charger and its clock, the adaptive cost model,
        the staged plan, and the trace sink — so sessions are fully
        independent of each other.

        Configuration lives in ``options`` (a :class:`QueryOptions` bundle);
        any option field may also be passed directly as a keyword
        (``strategy=...``, ``sink=...``, ``fault_plan=...``) and overrides
        the bundle. ``aggregate`` and ``seed`` identify the query and the
        run, so they stay per-call rather than joining the bundle.

        Notable options: ``clock`` places several sessions on one shared
        timeline (how :class:`repro.server.QueryServer` multiplexes
        deadline-bound queries over one simulated machine — such sessions
        must run serially); ``vectorized`` selects the columnar kernels vs
        the row-at-a-time reference path (both charge bit-identical
        simulated costs); ``trace_costs=True`` emits one event per primitive
        cost charge; ``fault_plan`` arms deterministic fault injection
        (see :mod:`repro.faults`).

        Call :meth:`QuerySession.run` to execute; or use the
        :meth:`estimate` one-shot convenience.
        """
        opts = (options if options is not None else QueryOptions()).replace(
            **overrides
        )
        hint_provider = None
        if opts.selectivity_source in ("hybrid", "prestored"):
            from repro.statistics.prestored import SelectivityHinter

            hinter = SelectivityHinter(self.statistics, self.catalog)
            hinter.require_statistics(expr)
            hint_provider = hinter.hint

        resolved_sink = opts.sink if opts.sink is not None else NULL_SINK
        # None → honour the process-wide REPRO_SYNOPSES switch (default OFF:
        # the catalog carries state across runs, so replayable-by-default
        # sessions must not touch it unless asked).
        binder = None
        if resolve_switch(opts.synopses, "REPRO_SYNOPSES", default=False):
            from repro.synopses.binder import SynopsisBinder

            binder = SynopsisBinder(
                self.synopses, self.catalog, sink=resolved_sink
            )
        # None → honour REPRO_BUFFERPOOL (default ON: the pool is a pure
        # wall-clock optimization — charged costs, estimates, and traces
        # are bit-identical either way). A BufferPool instance attaches
        # that specific pool; True/False select the process-wide default
        # pool or none.
        from repro.storage.bufferpool import BufferPool, default_pool

        if isinstance(opts.bufferpool, BufferPool):
            bufferpool = opts.bufferpool
        elif resolve_switch(opts.bufferpool, "REPRO_BUFFERPOOL", default=True):
            bufferpool = default_pool()
        else:
            bufferpool = None
        rng = self._spawn_rng(seed)
        injector = None
        if opts.fault_plan is not None and opts.fault_plan.active:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector.for_session(
                opts.fault_plan, rng, resolved_sink
            )
        context = ExecutionContext(
            rng=rng,
            charger=self._make_charger(
                rng,
                sink=resolved_sink,
                trace_costs=opts.trace_costs,
                clock=opts.clock,
            ),
            cost_model=opts.cost_model
            or CostModel(
                specs=opts.step_specs
                if opts.step_specs is not None
                else self._default_specs()
            ),
            sink=resolved_sink,
            injector=injector,
        )
        return QuerySession(
            expr,
            self.catalog,
            quota,
            context,
            strategy=opts.strategy,
            stopping=opts.stopping,
            measure_overspend=opts.measure_overspend,
            max_stages=opts.max_stages,
            aggregate=aggregate,
            block_size=opts.block_size or self.block_size,
            full_fulfillment=opts.full_fulfillment,
            initial_selectivities=opts.initial_selectivities,
            zero_fix_beta=opts.zero_fix_beta,
            hint_provider=hint_provider,
            pin_selectivities=opts.selectivity_source == "prestored",
            vectorized=opts.vectorized,
            optimize=opts.optimize,
            binder=binder,
            bufferpool=bufferpool,
            partitions=opts.partitions,
        )

    def explain(
        self,
        expr: Expression,
        options: QueryOptions | None = None,
        *,
        aggregate: "AggregateSpec | None" = None,
        **overrides,
    ) -> "PlanExplanation":
        """What the planner would do with ``expr`` — without running it.

        Builds two probe sessions over the live catalog — one lowering the
        query verbatim, one through the logical optimizer — and returns a
        :class:`~repro.planner.explain.PlanExplanation`: the before/after
        logical trees, the rule-application log, and the cost model's
        predicted price of each plan's cheapest useful stage (the same
        number the server's admission control rules on). Neither session is
        ever run, so explaining charges nothing to any clock::

            print(db.explain(expr).render())

        ``options``/``overrides`` configure the probes like
        :meth:`open_session` (e.g. ``selectivity_source='hybrid'`` explains
        with prestored hints); any explicit ``optimize`` setting is ignored
        since explain builds both variants by definition.
        """
        from repro.planner.explain import build_explanation

        opts = (options if options is not None else QueryOptions()).replace(
            **overrides
        )
        before = self.open_session(
            expr,
            quota=1.0,
            options=opts.replace(optimize=False),
            aggregate=aggregate,
            seed=0,
        )
        after = self.open_session(
            expr,
            quota=1.0,
            options=opts.replace(optimize=True),
            aggregate=aggregate,
            seed=0,
        )
        return build_explanation(before.plan, after.plan)

    def estimate(
        self,
        expr: Expression,
        agg: "AggregateSpec | None" = None,
        *,
        quota: float,
        seed: int | None = None,
        options: QueryOptions | None = None,
        **overrides,
    ) -> QueryResult:
        """Estimate ``agg(E)`` within ``quota`` seconds — the one entrypoint.

        ``agg`` is an :class:`~repro.estimation.aggregates.AggregateSpec`
        built with :func:`~repro.estimation.aggregates.count` (the default),
        :func:`~repro.estimation.aggregates.sum_of`, or
        :func:`~repro.estimation.aggregates.avg_of`. Configuration comes
        from ``options`` (a :class:`QueryOptions`) and/or direct keyword
        overrides; ``seed`` pins the run's RNG stream for replay::

            db.estimate(expr, quota=10.0)                       # COUNT
            db.estimate(expr, sum_of("qty"), quota=10.0,
                        options=QueryOptions(selectivity_source="hybrid"))

        ``measure_overspend=True`` (the default) reproduces ERAM's
        measurement mode — an overspending stage runs to completion and is
        reported; set it ``False`` for live hard-deadline semantics
        (mid-stage interrupt). Equivalent to
        ``open_session(expr, quota, options, aggregate=agg, seed=seed,
        **overrides).run()``.
        """
        if "aggregate" in overrides:
            spec = overrides.pop("aggregate")
            if agg is not None and spec is not None and spec is not agg:
                raise ReproError(
                    "pass the aggregate once: either positionally (agg) "
                    "or as aggregate=, not both"
                )
            if agg is None:
                agg = spec
        return self.open_session(
            expr, quota, options, aggregate=agg, seed=seed, **overrides
        ).run()

    # ------------------------------------------------------------------
    # Deprecated one-shot conveniences (use :meth:`estimate`)
    # ------------------------------------------------------------------
    def count_estimate(
        self, expr: Expression, quota: float, **kwargs
    ) -> QueryResult:
        """Deprecated: use ``estimate(expr, quota=quota, ...)``."""
        warnings.warn(
            "Database.count_estimate() is deprecated; use "
            "Database.estimate(expr, quota=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.estimate(expr, quota=quota, **kwargs)

    def sum_estimate(
        self, expr: Expression, attribute: str, quota: float, **kwargs
    ) -> QueryResult:
        """Deprecated: use ``estimate(expr, sum_of(attr), quota=quota)``."""
        from repro.estimation.aggregates import sum_of

        warnings.warn(
            "Database.sum_estimate() is deprecated; use "
            "Database.estimate(expr, sum_of(attribute), quota=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.estimate(expr, sum_of(attribute), quota=quota, **kwargs)

    def avg_estimate(
        self, expr: Expression, attribute: str, quota: float, **kwargs
    ) -> QueryResult:
        """Deprecated: use ``estimate(expr, avg_of(attr), quota=quota)``."""
        from repro.estimation.aggregates import avg_of

        warnings.warn(
            "Database.avg_estimate() is deprecated; use "
            "Database.estimate(expr, avg_of(attribute), quota=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.estimate(expr, avg_of(attribute), quota=quota, **kwargs)
