"""Per-query configuration — one frozen bundle instead of kwarg sprawl.

:class:`QueryOptions` collects every tuning knob a time-constrained run
accepts (strategy, stopping criterion, sampling controls, cost-model
overrides, tracing, clock sharing, vectorization, fault plan) into a single
immutable value that can be built once and reused across queries::

    opts = QueryOptions(strategy=OneAtATimeInterval(d_beta=24),
                        selectivity_source="hybrid")
    result = db.estimate(expr, quota=10.0, options=opts)
    result = db.estimate(expr, quota=5.0, options=opts.replace(trace_costs=True))

Per-call keywords passed to :meth:`Database.estimate` /
:meth:`Database.open_session` override the corresponding option field, so
an options bundle is a set of defaults, not a straitjacket. ``aggregate``
and ``seed`` are deliberately *not* options: they identify the query and
the run rather than configure the machinery.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.costmodel.linear import StepSpec
    from repro.costmodel.model import CostModel
    from repro.faults.plan import FaultPlan
    from repro.observability.trace import TraceSink
    from repro.storage.bufferpool import BufferPool
    from repro.timecontrol.stopping import StoppingCriterion
    from repro.timecontrol.strategies import TimeControlStrategy
    from repro.timekeeping.clock import Clock

SELECTIVITY_SOURCES = ("runtime", "hybrid", "prestored")


@dataclass(frozen=True)
class QueryOptions:
    """Immutable per-query configuration (see module docs).

    Every field has the same meaning it had as an ``open_session`` keyword;
    ``None`` means "use the database's / engine's default". ``fault_plan``
    attaches a :class:`repro.faults.FaultPlan` so the run injects
    deterministic, seed-replayable faults (see :mod:`repro.faults`).
    ``optimize`` selects the logical optimizer (:mod:`repro.planner`):
    ``None`` honours the process-wide ``REPRO_OPTIMIZE`` switch (default
    on); ``False`` lowers the expression verbatim, bit-identical to the
    pre-planner engine. ``synopses`` enables the cross-query synopsis
    catalog (:mod:`repro.synopses`): ``None`` honours ``REPRO_SYNOPSES``
    (default *off* — the catalog carries state between runs, so it is
    opt-in); ``False`` is bit-identical to an engine without the catalog.
    ``bufferpool`` selects the cross-query block cache
    (:mod:`repro.storage.bufferpool`): ``None`` honours
    ``REPRO_BUFFERPOOL`` (default *on* — the pool is a pure wall-clock
    optimization, bit-identical to running without it); ``True``/``False``
    force the process-wide pool on or off, and a
    :class:`~repro.storage.bufferpool.BufferPool` instance attaches that
    specific pool (isolated pools for tests and experiments).
    ``partitions`` selects sharded execution over partitioned relations
    (:mod:`repro.storage.partitioned`): ``None`` honours
    ``REPRO_PARTITIONS`` (default *on*, serial — invariant 10 makes the
    sharded path bit-identical to the global one); ``False`` (or ``0``)
    forces the global unsharded read path even on partitioned relations;
    ``True`` forces the sharded path with one worker; an integer ``N >= 1``
    forces it with ``N`` shard workers (a pure wall-clock knob).
    """

    strategy: "TimeControlStrategy | None" = None
    stopping: "StoppingCriterion | None" = None
    full_fulfillment: bool = True
    initial_selectivities: dict[str, float] | None = None
    zero_fix_beta: float | None = None
    measure_overspend: bool = True
    cost_model: "CostModel | None" = None
    step_specs: "dict[str, StepSpec] | None" = None
    max_stages: int = 64
    selectivity_source: str = "runtime"
    sink: "TraceSink | None" = None
    trace_costs: bool = False
    clock: "Clock | None" = None
    vectorized: bool | None = None
    optimize: bool | None = None
    synopses: bool | None = None
    bufferpool: "bool | BufferPool | None" = None
    partitions: bool | int | None = None
    block_size: int | None = None
    fault_plan: "FaultPlan | None" = None

    def __post_init__(self) -> None:
        if self.selectivity_source not in SELECTIVITY_SOURCES:
            raise ReproError(
                f"selectivity_source must be one of {SELECTIVITY_SOURCES}, "
                f"got {self.selectivity_source!r}"
            )
        if self.max_stages < 1:
            raise ReproError(f"max_stages must be >= 1: {self.max_stages}")
        if self.block_size is not None and self.block_size <= 0:
            raise ReproError(f"block_size must be positive: {self.block_size}")
        if (
            self.partitions is not None
            and not isinstance(self.partitions, bool)
            and self.partitions < 0
        ):
            raise ReproError(
                f"partitions must be a bool or a worker count >= 0: "
                f"{self.partitions}"
            )

    def replace(self, **changes) -> "QueryOptions":
        """A copy with the given fields changed (unknown names rejected)."""
        field_names = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(changes) - field_names)
        if unknown:
            raise ReproError(
                f"unknown query option(s): {', '.join(unknown)}; "
                f"valid options: {', '.join(sorted(field_names))}"
            )
        return dataclasses.replace(self, **changes)


DEFAULT_OPTIONS = QueryOptions()
"""The all-defaults bundle (shared safely — the dataclass is frozen)."""
