"""Process-wide feature switches resolved from the environment.

Several engine features default to "on" but can be forced off for A/B
comparison, CI matrix legs, and bit-identity regression runs:

* ``REPRO_KERNELS`` — the vectorized columnar kernels
  (:func:`repro.kernels.kernels_enabled`);
* ``REPRO_OPTIMIZE`` — the logical query optimizer
  (:func:`repro.planner.optimizer_enabled`).

All switches share one resolution rule, implemented here once: the
variable being unset means the built-in default, and any of the falsey
spellings ``0`` / ``false`` / ``off`` / ``no`` (case-insensitive,
whitespace-tolerant) means *off*; anything else means *on*. Switches are
read at plan-construction time, never cached at import, so tests can flip
them per query with ``monkeypatch.setenv``.

This module must stay import-light (standard library only): it is imported
from low-level packages such as :mod:`repro.kernels` while
:mod:`repro.core` itself may still be mid-initialization.
"""

from __future__ import annotations

import os

_FALSEY = ("0", "false", "off", "no")


def env_switch(name: str, default: bool = True) -> bool:
    """Resolve the boolean feature switch ``name`` from the environment.

    Unset → ``default``. Set to ``0``/``false``/``off``/``no`` (any case)
    → ``False``. Any other value → ``True``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSEY


def resolve_switch(explicit: bool | None, name: str, default: bool = True) -> bool:
    """An explicit per-call setting beats the environment switch.

    The common pattern for optional engine features: ``None`` (the caller
    expressed no preference) falls back to :func:`env_switch`; an explicit
    ``True``/``False`` wins regardless of the environment.
    """
    if explicit is not None:
        return explicit
    return env_switch(name, default)
