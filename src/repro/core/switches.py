"""Process-wide feature switches resolved from the environment.

Several engine features default to "on" but can be forced off for A/B
comparison, CI matrix legs, and bit-identity regression runs:

* ``REPRO_KERNELS`` — the vectorized columnar kernels
  (:func:`repro.kernels.kernels_enabled`);
* ``REPRO_OPTIMIZE`` — the logical query optimizer
  (:func:`repro.planner.optimizer_enabled`);
* ``REPRO_SYNOPSES`` — the cross-query synopsis catalog;
* ``REPRO_BUFFERPOOL`` — the decoded-block buffer pool;
* ``REPRO_PARTITIONS`` — sharded execution over partitioned relations
  (an integer value also sets the shard worker count);
* ``REPRO_PREEMPT`` — the query server's stage-boundary EDF preemption
  (default off; off is byte-identical to run-to-completion serving).

All switches share one resolution rule, implemented here once: an explicit
per-session value beats the :class:`~repro.core.options.QueryOptions`
bundle, which beats the environment variable, which beats the built-in
default. The variable being unset means the default, and any of the falsey
spellings ``0`` / ``false`` / ``off`` / ``no`` (case-insensitive,
whitespace-tolerant) means *off*; anything else means *on*. Switches are
read at plan-construction time, never cached at import, so tests can flip
them per query with ``monkeypatch.setenv``.

The full switch inventory is introspectable: :data:`SWITCHES` declares
every switch, :func:`describe` resolves each one (reporting the winning
source), and :func:`switch_table_markdown` renders the precedence table
embedded in ``docs/api.md`` — the docs are regenerated from this module,
so they cannot drift (a test pins the embedded table to the generated
one).

This module must stay import-light (standard library only): it is imported
from low-level packages such as :mod:`repro.kernels` while
:mod:`repro.core` itself may still be mid-initialization.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_FALSEY = ("0", "false", "off", "no")


def env_switch(name: str, default: bool = True) -> bool:
    """Resolve the boolean feature switch ``name`` from the environment.

    Unset → ``default``. Set to ``0``/``false``/``off``/``no`` (any case)
    → ``False``. Any other value → ``True``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSEY


def resolve_switch(explicit: bool | None, name: str, default: bool = True) -> bool:
    """An explicit per-call setting beats the environment switch.

    The common pattern for optional engine features: ``None`` (the caller
    expressed no preference) falls back to :func:`env_switch`; an explicit
    ``True``/``False`` wins regardless of the environment.
    """
    if explicit is not None:
        return explicit
    return env_switch(name, default)


# ----------------------------------------------------------------------
# Partitioned execution (value is (enabled, workers), not just a bool)
# ----------------------------------------------------------------------
def env_partitions(name: str = "REPRO_PARTITIONS") -> tuple[bool, int]:
    """Resolve the partitions switch from the environment.

    Unset → on with one (serial) shard worker. A falsey spelling → off.
    An integer ``N >= 1`` → on with ``N`` shard workers (``0`` → off).
    Any other truthy value → on, serial.
    """
    raw = os.environ.get(name)
    if raw is None:
        return True, 1
    text = raw.strip().lower()
    if text in _FALSEY:
        return False, 1
    try:
        workers = int(text)
    except ValueError:
        return True, 1
    if workers < 1:
        return False, 1
    return True, workers


def resolve_partitions(explicit: "bool | int | None") -> tuple[bool, int]:
    """Resolve the partitions switch to ``(enabled, workers)``.

    ``None`` falls back to :func:`env_partitions`; ``True``/``False``
    force the sharded path on (serial) or off; an integer ``N >= 1``
    forces it on with ``N`` shard workers (``0`` forces it off). Note the
    switch governs the *execution path* only — how many shards a relation
    has is fixed at :meth:`~repro.core.database.Database.create_relation`
    time, and invariant 10 makes the answers identical either way.
    """
    if explicit is None:
        return env_partitions()
    if explicit is True:
        return True, 1
    if explicit is False:
        return False, 1
    workers = int(explicit)
    if workers < 1:
        return False, 1
    return True, workers


# ----------------------------------------------------------------------
# The introspectable switch inventory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Switch:
    """Declaration of one engine switch (see :data:`SWITCHES`)."""

    name: str
    """Registry key: ``kernels`` / ``optimize`` / ``synopses`` /
    ``bufferpool`` / ``partitions``."""

    title: str
    """Human-readable name used in the docs table."""

    option: str
    """The :class:`~repro.core.options.QueryOptions` field / session kwarg."""

    option_note: str
    """Extra docs-table note after the option name (may be empty)."""

    env: str
    """The environment variable."""

    default: "bool | tuple[bool, int]"
    """Built-in default when nothing else is set."""

    default_label: str
    """How the default renders in the docs table."""


SWITCHES: tuple[Switch, ...] = (
    Switch(
        name="optimize",
        title="logical optimizer",
        option="optimize",
        option_note="",
        env="REPRO_OPTIMIZE",
        default=True,
        default_label="on",
    ),
    Switch(
        name="kernels",
        title="vectorized kernels",
        option="vectorized",
        option_note="",
        env="REPRO_KERNELS",
        default=True,
        default_label="on",
    ),
    Switch(
        name="synopses",
        title="synopsis catalog",
        option="synopses",
        option_note="",
        env="REPRO_SYNOPSES",
        default=False,
        default_label="off",
    ),
    Switch(
        name="bufferpool",
        title="buffer pool",
        option="bufferpool",
        option_note=" (also takes a `BufferPool`)",
        env="REPRO_BUFFERPOOL",
        default=True,
        default_label="on",
    ),
    Switch(
        name="partitions",
        title="partitioned execution",
        option="partitions",
        option_note=" (also takes a worker count)",
        env="REPRO_PARTITIONS",
        default=(True, 1),
        default_label="on, 1 worker",
    ),
    Switch(
        name="preempt",
        title="EDF preemption",
        option="preempt",
        option_note=" (`QueryServer` kwarg)",
        env="REPRO_PREEMPT",
        default=False,
        default_label="off",
    ),
)


@dataclass(frozen=True)
class SwitchState:
    """One switch's resolved value and where that value came from."""

    name: str
    option: str
    env: str
    value: "bool | tuple[bool, int]"
    source: str
    """``explicit`` > ``options`` > ``env`` > ``default`` — whichever won."""

    default: "bool | tuple[bool, int]"

    @property
    def enabled(self) -> bool:
        """The switch's on/off reading regardless of its value shape."""
        if isinstance(self.value, tuple):
            return bool(self.value[0])
        return bool(self.value)


def _resolve_state(switch: Switch, raw: object, source: str) -> SwitchState:
    if switch.name == "partitions":
        value: "bool | tuple[bool, int]" = resolve_partitions(raw)  # type: ignore[arg-type]
    else:
        value = bool(raw)
    return SwitchState(
        name=switch.name,
        option=switch.option,
        env=switch.env,
        value=value,
        source=source,
        default=switch.default,
    )


def describe(options=None, explicit=None) -> tuple[SwitchState, ...]:
    """Resolve every switch, reporting each value's winning source.

    ``options`` is an optional :class:`~repro.core.options.QueryOptions`
    (or anything duck-typed with the option fields); ``explicit`` is an
    optional mapping from option field name (``vectorized`` / ``optimize``
    / ``synopses`` / ``bufferpool`` / ``partitions``) to the per-session
    kwarg value. Resolution is the engine's: explicit > options > env >
    default.
    """
    explicit = explicit or {}
    states: list[SwitchState] = []
    for switch in SWITCHES:
        raw = explicit.get(switch.option)
        if raw is not None:
            states.append(_resolve_state(switch, raw, "explicit"))
            continue
        raw = getattr(options, switch.option, None) if options is not None else None
        if raw is not None:
            states.append(_resolve_state(switch, raw, "options"))
            continue
        if os.environ.get(switch.env) is not None:
            if switch.name == "partitions":
                value: "bool | tuple[bool, int]" = env_partitions(switch.env)
            else:
                value = env_switch(switch.env, bool(switch.default))
            states.append(
                SwitchState(
                    name=switch.name,
                    option=switch.option,
                    env=switch.env,
                    value=value,
                    source="env",
                    default=switch.default,
                )
            )
            continue
        states.append(
            SwitchState(
                name=switch.name,
                option=switch.option,
                env=switch.env,
                value=switch.default,
                source="default",
                default=switch.default,
            )
        )
    return tuple(states)


def switch_table_markdown() -> str:
    """The docs/api.md precedence table, rendered from :data:`SWITCHES`.

    ``docs/api.md`` embeds this between ``<!-- switches:begin -->`` and
    ``<!-- switches:end -->`` markers; a test regenerates it and fails on
    drift, so the registry is the single source of truth.
    """
    lines = [
        "| switch | option / kwarg | env var | default |",
        "|---|---|---|---|",
    ]
    for switch in SWITCHES:
        lines.append(
            f"| {switch.title} | `{switch.option}=`{switch.option_note} "
            f"| `{switch.env}` | {switch.default_label} |"
        )
    return "\n".join(lines)
