"""Synthetic relation generators.

All generators build rows for 200-byte tuples by default (the paper's tuple
size): ``id`` (4 B int) + ``a`` (4 B int) + ``b`` (4 B int) + a 188-byte pad
string, so a 1 KB block holds exactly 5 tuples and a 10 000-tuple relation
occupies 2 000 blocks — the geometry of every experiment in Section 5.

"Tuples in a relation are randomly distributed": every generator shuffles
row order with the supplied RNG before loading, so block membership carries
no information about attribute values (the property cluster sampling needs).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.catalog.schema import Attribute, Schema
from repro.catalog.types import AttributeType
from repro.errors import ReproError

PAPER_TUPLE_BYTES = 200
PAPER_RELATION_TUPLES = 10_000

_PAD_WIDTH = PAPER_TUPLE_BYTES - 3 * 4  # three 4-byte ints + pad = 200 B
_PAD = "x" * 8  # the stored value; width is declared by the schema


def paper_schema() -> Schema:
    """The 200-byte experimental tuple layout (id, a, b, pad)."""
    return Schema(
        (
            Attribute("id", AttributeType.INT, 4),
            Attribute("a", AttributeType.INT, 4),
            Attribute("b", AttributeType.INT, 4),
            Attribute("pad", AttributeType.STR, _PAD_WIDTH),
        )
    )


def _shuffled(rows: list[tuple], rng: np.random.Generator) -> list[tuple]:
    order = rng.permutation(len(rows))
    return [rows[i] for i in order]


def selection_relation(
    rng: np.random.Generator,
    tuples: int = PAPER_RELATION_TUPLES,
    output_tuples: int = 1_000,
) -> list[tuple]:
    """A relation where ``a < output_tuples`` selects exactly that many rows.

    ``a`` is a permutation of ``0 … tuples−1``, so any threshold predicate
    has an exactly known output cardinality while values sit in random
    blocks.
    """
    if not 0 <= output_tuples <= tuples:
        raise ReproError(
            f"output_tuples {output_tuples} outside [0, {tuples}]"
        )
    a_values = rng.permutation(tuples)
    rows = [
        (i, int(a_values[i]), int(rng.integers(0, 1_000_000)), _PAD)
        for i in range(tuples)
    ]
    return _shuffled(rows, rng)


def intersection_relations(
    rng: np.random.Generator,
    tuples: int = PAPER_RELATION_TUPLES,
    common_tuples: int = PAPER_RELATION_TUPLES,
) -> tuple[list[tuple], list[tuple]]:
    """Two relations sharing exactly ``common_tuples`` identical tuples.

    The Figure 5.2 experiment intersects two 10 000-tuple relations with
    10 000 output tuples (identical content, independently shuffled block
    layouts). Smaller ``common_tuples`` give partial overlap: non-shared
    tuples get disjoint id ranges so they can never collide.
    """
    if not 0 <= common_tuples <= tuples:
        raise ReproError(
            f"common_tuples {common_tuples} outside [0, {tuples}]"
        )
    shared = [
        (i, int(rng.integers(0, 10_000)), int(rng.integers(0, 10_000)), _PAD)
        for i in range(common_tuples)
    ]
    only_r1 = [
        (1_000_000 + i, int(rng.integers(0, 10_000)), 0, _PAD)
        for i in range(tuples - common_tuples)
    ]
    only_r2 = [
        (2_000_000 + i, int(rng.integers(0, 10_000)), 0, _PAD)
        for i in range(tuples - common_tuples)
    ]
    r1 = _shuffled(shared + only_r1, rng)
    r2 = _shuffled(shared + only_r2, rng)
    return r1, r2


def join_relations(
    rng: np.random.Generator,
    tuples: int = PAPER_RELATION_TUPLES,
    fanout: int = 7,
) -> tuple[list[tuple], list[tuple], int]:
    """Two relations whose equi-join on ``a`` has a known output size.

    Both relations repeat each join value ``fanout`` times over
    ``tuples // fanout`` distinct values, so the join output is
    ``(tuples // fanout) · fanout²`` tuples — ``fanout=7`` gives 69 972 ≈
    the 70 000 output tuples of Figure 5.3. Leftover tuples get disjoint
    non-matching values. Returns ``(rows1, rows2, exact_join_count)``.
    """
    if fanout <= 0 or fanout > tuples:
        raise ReproError(f"fanout {fanout} outside [1, {tuples}]")
    distinct = tuples // fanout
    matched = distinct * fanout
    values = [v for v in range(distinct) for _ in range(fanout)]

    def build(id_base: int, orphan_base: int) -> list[tuple]:
        rows = [
            (id_base + i, values[i], int(rng.integers(0, 10_000)), _PAD)
            for i in range(matched)
        ]
        rows += [
            (id_base + matched + j, orphan_base + j, 0, _PAD)
            for j in range(tuples - matched)
        ]
        return _shuffled(rows, rng)

    r1 = build(0, 10_000_000)
    r2 = build(5_000_000, 20_000_000)
    return r1, r2, distinct * fanout * fanout


def uniform_relation(
    rng: np.random.Generator,
    tuples: int,
    a_range: int,
    b_range: int = 1_000_000,
) -> list[tuple]:
    """Generic relation with uniform ``a`` in [0, a_range)."""
    return _shuffled(
        [
            (
                i,
                int(rng.integers(0, a_range)),
                int(rng.integers(0, b_range)),
                _PAD,
            )
            for i in range(tuples)
        ],
        rng,
    )


def zipf_relation(
    rng: np.random.Generator,
    tuples: int,
    a_range: int,
    skew: float = 1.2,
) -> list[tuple]:
    """Relation with Zipf-skewed ``a`` — stresses projection/Goodman."""
    if skew <= 1.0:
        raise ReproError("numpy's zipf requires skew > 1")
    raw = rng.zipf(skew, size=tuples)
    a_values = (raw - 1) % a_range
    return _shuffled(
        [
            (i, int(a_values[i]), int(rng.integers(0, 1_000_000)), _PAD)
            for i in range(tuples)
        ],
        rng,
    )


def rows_chunked(rows: Sequence[tuple], chunk: int) -> Iterator[list[tuple]]:
    """Yield ``rows`` in chunks (loader convenience for huge relations)."""
    for start in range(0, len(rows), chunk):
        yield list(rows[start : start + chunk])
