"""The paper's experimental setups, packaged (Section 5).

Each ``make_*`` function returns a fully loaded :class:`Database` plus the
query expression and its exact answer, configured exactly like the
corresponding experiment:

* relations of 10 000 tuples × 200 bytes in 1 KB blocks (5 tuples/block,
  2 000 blocks), randomly distributed;
* selection with a single integer comparison (5.A);
* intersection of two identical-content relations — 10 000 output tuples
  (5.B), initial selectivity ``1/max(|r1|,|r2|)``;
* join with one join attribute and ≈70 000 output tuples (5.C), initial
  selectivity 0.1 ("if the maximum selectivity of 1 were assumed, the sample
  size was so small … that the system clock did not provide enough
  accuracy").

``scale`` shrinks everything proportionally (tuples and the implied quota
should shrink together) for fast unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import Database
from repro.relational.expression import Expression, intersect, join, rel, select
from repro.relational.predicate import cmp
from repro.timekeeping.profile import MachineProfile
from repro.workloads.generators import (
    PAPER_RELATION_TUPLES,
    intersection_relations,
    join_relations,
    paper_schema,
    selection_relation,
)

SELECTION_QUOTA = 10.0
INTERSECTION_QUOTA = 2.5
JOIN_QUOTA = 10.0
JOIN_INITIAL_SELECTIVITY = 0.1
D_BETA_GRID = (0.0, 12.0, 24.0, 48.0, 72.0)
"""The d_β sweep of every table in Section 5."""


@dataclass
class PaperSetup:
    """One ready-to-run experimental configuration."""

    database: Database
    query: Expression
    exact_count: int
    quota: float
    initial_selectivities: dict[str, float] | None = None

    def describe(self) -> str:
        return (
            f"{self.query} (exact COUNT = {self.exact_count}, "
            f"quota = {self.quota:g}s)"
        )


def _db(seed: int | None, profile: MachineProfile | None) -> Database:
    return Database(
        profile=profile if profile is not None else MachineProfile.sun3_60(),
        seed=seed,
    )


def make_selection_setup(
    output_tuples: int = 1_000,
    tuples: int = PAPER_RELATION_TUPLES,
    seed: int | None = 0,
    profile: MachineProfile | None = None,
    quota: float = SELECTION_QUOTA,
) -> PaperSetup:
    """Figure 5.1's selection experiment (one integer comparison)."""
    db = _db(seed, profile)
    rng = np.random.default_rng(seed)
    rows = selection_relation(rng, tuples=tuples, output_tuples=output_tuples)
    db.create_relation("r1", paper_schema(), rows)
    query = select(rel("r1"), cmp("a", "<", output_tuples))
    return PaperSetup(db, query, output_tuples, quota)


def make_intersection_setup(
    common_tuples: int = PAPER_RELATION_TUPLES,
    tuples: int = PAPER_RELATION_TUPLES,
    seed: int | None = 0,
    profile: MachineProfile | None = None,
    quota: float = INTERSECTION_QUOTA,
) -> PaperSetup:
    """Figure 5.2's intersection experiment (10 000 output tuples)."""
    db = _db(seed, profile)
    rng = np.random.default_rng(seed)
    r1, r2 = intersection_relations(
        rng, tuples=tuples, common_tuples=common_tuples
    )
    db.create_relation("r1", paper_schema(), r1)
    db.create_relation("r2", paper_schema(), r2)
    query = intersect(rel("r1"), rel("r2"))
    return PaperSetup(db, query, common_tuples, quota)


def make_join_setup(
    fanout: int = 7,
    tuples: int = PAPER_RELATION_TUPLES,
    seed: int | None = 0,
    profile: MachineProfile | None = None,
    quota: float = JOIN_QUOTA,
    initial_selectivity: float = JOIN_INITIAL_SELECTIVITY,
) -> PaperSetup:
    """Figure 5.3's join experiment (≈70 000 output tuples, one attribute)."""
    db = _db(seed, profile)
    rng = np.random.default_rng(seed)
    r1, r2, exact = join_relations(rng, tuples=tuples, fanout=fanout)
    db.create_relation("r1", paper_schema(), r1)
    db.create_relation("r2", paper_schema(), r2)
    query = join(rel("r1"), rel("r2"), on=["a"])
    return PaperSetup(
        db,
        query,
        exact,
        quota,
        initial_selectivities={"join": initial_selectivity},
    )
