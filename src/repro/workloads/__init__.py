"""Workload generators and the paper's experimental setups (system S16)."""

from repro.workloads.generators import (
    PAPER_RELATION_TUPLES,
    PAPER_TUPLE_BYTES,
    intersection_relations,
    join_relations,
    paper_schema,
    rows_chunked,
    selection_relation,
    uniform_relation,
    zipf_relation,
)
from repro.workloads.paper import (
    D_BETA_GRID,
    INTERSECTION_QUOTA,
    JOIN_INITIAL_SELECTIVITY,
    JOIN_QUOTA,
    SELECTION_QUOTA,
    PaperSetup,
    make_intersection_setup,
    make_join_setup,
    make_selection_setup,
)

__all__ = [
    "D_BETA_GRID",
    "INTERSECTION_QUOTA",
    "JOIN_INITIAL_SELECTIVITY",
    "JOIN_QUOTA",
    "PAPER_RELATION_TUPLES",
    "PAPER_TUPLE_BYTES",
    "SELECTION_QUOTA",
    "PaperSetup",
    "intersection_relations",
    "join_relations",
    "make_intersection_setup",
    "make_join_setup",
    "make_selection_setup",
    "paper_schema",
    "rows_chunked",
    "selection_relation",
    "uniform_relation",
    "zipf_relation",
]
