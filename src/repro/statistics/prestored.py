"""Prestored selectivity estimation from relation statistics.

The counterpart of the run-time approach (Figure 3.2's first implementation
decision): derive each operator's selectivity *before* execution from
analyzed statistics. As the paper observes, this "is best suited for
database environments where only a fixed set of query types are to be
issued" — it needs statistics maintenance and cannot cover every operator —
so the library offers it in two roles:

* **hybrid** — use the prestored value only as the *initial* selectivity
  (replacing the maximum-selectivity assumption of Figure 3.3), and let the
  run-time machinery refine it from stage 2 on: better stage-1 sizing at no
  loss of generality;
* **prestored** — pin every operator's selectivity to the prestored value
  for the whole run (no refinement, no ``d_β`` margin): the pure
  alternative the paper decided against, measurable in ablation A7.

A hint is the operator's *output fraction over its subtree's point space* —
exactly the tracker's selectivity semantics — computed compositionally:

====================  =====================================================
node                  hint
====================  =====================================================
``rel``               1
``select``            predicate selectivity (histogram) × child hint
``join``              per-attribute-pair histogram join selectivity ×
                      left hint × right hint (attribute independence)
``project``           min(distinct combinations, child output) / space
``intersect``         no hint (not derivable from single-attribute stats)
====================  =====================================================

Nodes the statistics cannot cover return ``None`` and fall back to the
run-time defaults.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.errors import EstimationError
from repro.relational.expression import (
    Expression,
    Intersect,
    Join,
    Project,
    RelationRef,
    Select,
)
from repro.relational.predicate import (
    And,
    Attr,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.statistics.stats import RelationStatistics


class SelectivityHinter:
    """Computes prestored selectivity hints for expression nodes."""

    def __init__(
        self,
        statistics: Mapping[str, RelationStatistics],
        catalog: Catalog,
    ) -> None:
        self.statistics = dict(statistics)
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def hint(self, expr: Expression) -> float | None:
        """Output fraction of ``expr`` over its point space, or ``None``."""
        value = self._hint(expr)
        if value is None:
            return None
        return min(max(value, 1e-12), 1.0)

    def require_statistics(self, expr: Expression) -> None:
        """Raise unless every base relation of ``expr`` was analyzed."""
        missing = [
            name
            for name in set(expr.base_relations())
            if name not in self.statistics
        ]
        if missing:
            raise EstimationError(
                f"no statistics for relations {sorted(missing)}; "
                "call Database.analyze() first"
            )

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def _hint(self, expr: Expression) -> float | None:
        if isinstance(expr, RelationRef):
            return 1.0
        if isinstance(expr, Select):
            child = self._hint(expr.child)
            if child is None:
                return None
            pred = self._predicate_selectivity(expr.predicate, expr.child)
            if pred is None:
                return None
            return pred * child
        if isinstance(expr, Join):
            left = self._hint(expr.left)
            right = self._hint(expr.right)
            if left is None or right is None:
                return None
            join_sel = 1.0
            for left_attr, right_attr in expr.on:
                pair = self._join_pair_selectivity(
                    expr.left, left_attr, expr.right, right_attr
                )
                if pair is None:
                    return None
                join_sel *= pair
            return join_sel * left * right
        if isinstance(expr, Project):
            return self._project_hint(expr)
        if isinstance(expr, Intersect):
            return None
        return None

    def _single_base(self, expr: Expression) -> str | None:
        """The sole base relation under ``expr``, or None if several."""
        bases = expr.base_relations()
        if len(bases) == 1:
            return bases[0]
        return None

    def _stats_for_attribute(
        self, expr: Expression, attribute: str
    ) -> RelationStatistics | None:
        """Statistics of the single base relation providing ``attribute``.

        Only attribute references that survive un-renamed to a single base
        relation are resolvable; joins of joins (where right-side renames
        apply) return None and fall back.
        """
        base = self._single_base(expr)
        if base is None or base not in self.statistics:
            return None
        stats = self.statistics[base]
        if not stats.has(attribute):
            return None
        return stats

    # ------------------------------------------------------------------
    # Selection formulas
    # ------------------------------------------------------------------
    def _predicate_selectivity(
        self, predicate: Predicate, child: Expression
    ) -> float | None:
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, Comparison):
            if isinstance(predicate.value, Attr):
                return None  # attribute-to-attribute: no joint statistics
            stats = self._stats_for_attribute(child, predicate.attr)
            if stats is None:
                return None
            return stats.histogram(predicate.attr).selectivity(
                predicate.op, float(predicate.value)
            )
        if isinstance(predicate, And):
            product = 1.0
            for part in predicate.parts:
                s = self._predicate_selectivity(part, child)
                if s is None:
                    return None
                product *= s
            return product
        if isinstance(predicate, Or):
            miss = 1.0
            for part in predicate.parts:
                s = self._predicate_selectivity(part, child)
                if s is None:
                    return None
                miss *= 1.0 - s
            return 1.0 - miss
        if isinstance(predicate, Not):
            s = self._predicate_selectivity(predicate.part, child)
            return None if s is None else 1.0 - s
        return None

    # ------------------------------------------------------------------
    # Joins and projections
    # ------------------------------------------------------------------
    def _join_pair_selectivity(
        self,
        left: Expression,
        left_attr: str,
        right: Expression,
        right_attr: str,
    ) -> float | None:
        left_stats = self._stats_for_attribute(left, left_attr)
        right_stats = self._stats_for_attribute(right, right_attr)
        if left_stats is None or right_stats is None:
            return None
        return left_stats.histogram(left_attr).join_selectivity(
            right_stats.histogram(right_attr)
        )

    def _project_hint(self, expr: Project) -> float | None:
        child = self._hint(expr.child)
        if child is None:
            return None
        base = self._single_base(expr.child)
        if base is None or base not in self.statistics:
            return None
        stats = self.statistics[base]
        if not all(stats.has(a) for a in expr.attrs):
            return None
        combos = math.prod(stats.distinct(a) for a in expr.attrs)
        output_tuples = child * stats.tuple_count
        distinct_out = min(combos, output_tuples)
        return distinct_out / stats.tuple_count
