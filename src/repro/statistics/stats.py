"""Relation statistics — the ANALYZE side of prestored selectivities.

The paper (Section 3.1): "Prestored selectivities … can be obtained by
pre-evaluating (partially or completely) the query with input relations.
This approach is simple and may have a very good performance. However, an
extra effort is needed to maintain the set of stored selectivities when
there are changes to the database." :func:`analyze` is that extra effort:
one offline pass per relation building per-attribute equi-depth histograms
and distinct counts. The estimation side lives in
:mod:`repro.statistics.prestored`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.catalog.types import AttributeType
from repro.errors import EstimationError
from repro.statistics.histogram import EquiDepthHistogram
from repro.storage.heapfile import HeapFile


@dataclass(frozen=True)
class RelationStatistics:
    """Prestored statistics of one relation."""

    relation: str
    tuple_count: int
    histograms: Mapping[str, EquiDepthHistogram] = field(default_factory=dict)

    def histogram(self, attribute: str) -> EquiDepthHistogram:
        try:
            return self.histograms[attribute]
        except KeyError:
            raise EstimationError(
                f"no histogram for {self.relation}.{attribute}; "
                "re-run analyze() after schema changes"
            ) from None

    def has(self, attribute: str) -> bool:
        return attribute in self.histograms

    def distinct(self, attribute: str) -> int:
        return self.histogram(attribute).distinct


def analyze(relation: HeapFile, buckets: int = 32) -> RelationStatistics:
    """Build statistics for every numeric attribute of ``relation``.

    Uncharged: statistics maintenance is offline work outside any quota,
    exactly as the paper frames the prestored approach.
    """
    rows = relation.all_rows()
    histograms: dict[str, EquiDepthHistogram] = {}
    for index, attribute in enumerate(relation.schema.attributes):
        if attribute.type not in (AttributeType.INT, AttributeType.FLOAT):
            continue
        values = [row[index] for row in rows]
        histograms[attribute.name] = EquiDepthHistogram.build(values, buckets)
    return RelationStatistics(
        relation=relation.name,
        tuple_count=relation.tuple_count,
        histograms=histograms,
    )
