"""Equi-depth histograms — the prestored-statistics substrate.

Section 3.1 lists prestored selectivities as the alternative to run-time
estimation, citing equi-depth histograms in particular ([MuDe 88],
[PsCo 84]). This module implements the classic single-attribute equi-depth
histogram: bucket boundaries chosen so each bucket holds (approximately) the
same number of tuples, which bounds the selectivity estimation error of
range predicates regardless of skew.

The histogram answers two questions the prestored selectivity layer needs:

* :meth:`selectivity` — what fraction of tuples satisfies
  ``attr <op> constant``;
* :meth:`join_selectivity` — what fraction of the cross product of two
  relations joins on this attribute, under the standard containment /
  uniform-within-bucket assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import EstimationError


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth histogram over one numeric attribute.

    ``boundaries`` holds ``buckets + 1`` ascending values; bucket ``i``
    covers ``[boundaries[i], boundaries[i+1])`` (the last bucket is closed
    on the right). ``depths`` holds the tuple count per bucket;
    ``distinct`` the number of distinct attribute values overall.
    """

    boundaries: tuple[float, ...]
    depths: tuple[int, ...]
    distinct: int
    total: int

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.depths) + 1:
            raise EstimationError("histogram boundary/depth lengths disagree")
        if any(
            a > b for a, b in zip(self.boundaries, self.boundaries[1:])
        ):
            raise EstimationError("histogram boundaries must be ascending")
        if self.total != sum(self.depths):
            raise EstimationError("histogram depths do not sum to total")
        if self.total > 0 and self.distinct <= 0:
            raise EstimationError("non-empty histogram needs distinct > 0")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, values: Sequence[float], buckets: int = 32) -> "EquiDepthHistogram":
        """Build from raw attribute values (one pass after a sort)."""
        if buckets <= 0:
            raise EstimationError(f"need at least one bucket, got {buckets}")
        ordered = sorted(float(v) for v in values)
        total = len(ordered)
        if total == 0:
            return cls(boundaries=(0.0, 0.0), depths=(0,), distinct=0, total=0)
        buckets = min(buckets, total)
        distinct = 1 + sum(
            1 for a, b in zip(ordered, ordered[1:]) if a != b
        )
        boundaries = [ordered[0]]
        depths = []
        taken = 0
        for i in range(buckets):
            target = round((i + 1) * total / buckets)
            depth = target - taken
            taken = target
            depths.append(depth)
            boundaries.append(ordered[min(taken, total) - 1])
        # Guard against zero-width trailing buckets from duplicates.
        return cls(
            boundaries=tuple(boundaries),
            depths=tuple(depths),
            distinct=distinct,
            total=total,
        )

    # ------------------------------------------------------------------
    # Range selectivity
    # ------------------------------------------------------------------
    def _fraction_below(self, value: float) -> float:
        """Fraction of tuples with attribute < value (linear in-bucket).

        Walks buckets rather than bisecting: heavily duplicated values
        produce several zero-width buckets sharing a boundary, and a bucket
        counts as "below" only when its whole range is (mass sitting exactly
        at ``value`` is not below it).
        """
        if self.total == 0:
            return 0.0
        if value <= self.boundaries[0]:
            return 0.0
        if value > self.boundaries[-1]:
            return 1.0
        below = 0.0
        for i, depth in enumerate(self.depths):
            left, right = self.boundaries[i], self.boundaries[i + 1]
            if right < value:
                below += depth
            elif left < value <= right:
                width = right - left
                if width > 0:
                    below += depth * (value - left) / width
            # left >= value: entirely at-or-above, contributes nothing.
        return below / self.total

    def selectivity(self, op: str, value: float) -> float:
        """Estimated fraction of tuples satisfying ``attr <op> value``."""
        if self.total == 0:
            return 0.0
        below = self._fraction_below(value)
        point = 1.0 / self.distinct if self.distinct else 0.0
        if op == "<":
            result = below
        elif op == ">=":
            result = 1.0 - below
        elif op == "<=":
            result = below + point
        elif op == ">":
            result = 1.0 - below - point
        elif op == "==":
            result = point if self._in_domain(value) else 0.0
        elif op == "!=":
            result = 1.0 - (point if self._in_domain(value) else 0.0)
        else:
            raise EstimationError(f"unknown comparison operator {op!r}")
        return min(max(result, 0.0), 1.0)

    def _in_domain(self, value: float) -> bool:
        return self.boundaries[0] <= value <= self.boundaries[-1]

    def mean(self) -> float:
        """Estimated attribute mean (bucket-midpoint weighted by depth).

        Feeds the serving layer's zero-sampling degraded answers for
        SUM/AVG (:mod:`repro.server.degrade`): with uniform-within-bucket
        values, the midpoint estimate is exact in expectation.
        """
        if self.total == 0:
            return 0.0
        weighted = sum(
            depth * 0.5 * (self.boundaries[i] + self.boundaries[i + 1])
            for i, depth in enumerate(self.depths)
        )
        return weighted / self.total

    # ------------------------------------------------------------------
    # Join selectivity
    # ------------------------------------------------------------------
    def join_selectivity(self, other: "EquiDepthHistogram") -> float:
        """Estimated ``|r1 ⋈ r2| / (|r1|·|r2|)`` for an equi-join on this
        attribute.

        Bucket-overlap refinement of the System-R ``1/max(d1, d2)`` rule:
        for each pair of overlapping buckets, matched tuples are estimated
        under containment (the smaller distinct set is contained in the
        larger) with values uniform within buckets.
        """
        if self.total == 0 or other.total == 0:
            return 0.0
        matched = 0.0
        for i in range(len(self.depths)):
            a_lo, a_hi = self.boundaries[i], self.boundaries[i + 1]
            a_depth = self.depths[i]
            a_width = max(a_hi - a_lo, 0.0)
            for j in range(len(other.depths)):
                b_lo, b_hi = other.boundaries[j], other.boundaries[j + 1]
                lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
                if hi < lo:
                    continue
                b_depth = other.depths[j]
                b_width = max(b_hi - b_lo, 0.0)
                # Tuples of each side falling inside the overlap window.
                a_share = a_depth * ((hi - lo) / a_width if a_width else 1.0)
                b_share = b_depth * ((hi - lo) / b_width if b_width else 1.0)
                # Distinct values available in the window (containment).
                a_distinct = max(
                    self.distinct * (hi - lo) / (self.boundaries[-1] - self.boundaries[0])
                    if self.boundaries[-1] > self.boundaries[0]
                    else self.distinct,
                    1.0,
                )
                b_distinct = max(
                    other.distinct * (hi - lo) / (other.boundaries[-1] - other.boundaries[0])
                    if other.boundaries[-1] > other.boundaries[0]
                    else other.distinct,
                    1.0,
                )
                matched += a_share * b_share / max(a_distinct, b_distinct)
        selectivity = matched / (self.total * other.total)
        return min(max(selectivity, 0.0), 1.0)
