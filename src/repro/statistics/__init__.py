"""Prestored statistics: histograms, ANALYZE, selectivity hints."""

from repro.statistics.histogram import EquiDepthHistogram
from repro.statistics.prestored import SelectivityHinter
from repro.statistics.stats import RelationStatistics, analyze

__all__ = [
    "EquiDepthHistogram",
    "RelationStatistics",
    "SelectivityHinter",
    "analyze",
]
