"""Staged query plans — wiring expressions to the staged engine.

A :class:`StagedPlan` optionally rewrites ``E`` through the logical
optimizer (:mod:`repro.planner`; ``optimize=True``), turns ``COUNT(E)``
into its inclusion–exclusion terms, lowers each term through
:class:`~repro.engine.physical.PhysicalPlanBuilder` into a staged operator
tree over **shared** per-relation scans, and exposes the three operations
the time-constrained executor needs:

* :meth:`predict_stage` — price a candidate sample fraction with the
  adaptive cost model (the ``QCOST(f, SEL⁺)`` of Section 3.3, summed over
  terms, shared scans priced once);
* :meth:`advance_stage` — execute one stage over fresh sample blocks;
* :meth:`estimate` — the current ``COUNT(E)`` estimate: per term the SRS
  point-space estimator ``û`` (or the revised Goodman estimator when the
  term's root is a projection), combined with the terms' ± coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.catalog.catalog import Catalog
from repro.costmodel.model import CostModel
from repro.engine.nodes import (
    PredictContext,
    SelProvider,
    StagedNode,
    StagedProject,
    StagedScan,
)
from repro.engine.physical import (
    DEFAULT_INITIAL_SELECTIVITY,
    PhysicalPlanBuilder,
)
from repro.errors import EstimationError
from repro.estimation.aggregates import (
    COUNT,
    AggregateSpec,
    StreamingMoments,
    avg_from_sum_count,
    srs_sum_estimate,
)
from repro.estimation.count_estimators import (
    combine_term_estimates,
    srs_count_estimate,
)
from repro.estimation.estimate import Estimate
from repro.estimation.goodman import goodman_estimate
from repro.estimation.selectivity import SelectivityTracker
from repro.kernels import kernels_enabled
from repro.observability.trace import (
    NULL_SINK,
    NullSink,
    OperatorAdvance,
    PlanOptimized,
    RuleApplied,
    ScanAdvance,
    TraceSink,
)
from repro.relational.expression import Expression
from repro.relational.inclusion_exclusion import expand_count
from repro.sampling.point_space import PointSpace
from repro.storage.events import ShardMerged, ShardScanStarted
from repro.storage.heapfile import DEFAULT_BLOCK_SIZE
from repro.timekeeping.charger import CostCharger

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.storage.bufferpool import BufferPool
    from repro.synopses.binder import SynopsisBinder

__all__ = [
    "DEFAULT_INITIAL_SELECTIVITY",  # re-exported from repro.engine.physical
    "PhysicalPlanBuilder",
    "StagedPlan",
    "StagedTerm",
    "StageStats",
]


@dataclass
class StagedTerm:
    """One signed SJIP term with its staged tree and point space."""

    coefficient: int
    root: StagedNode
    space: PointSpace
    value_index: int | None = None
    moments: StreamingMoments = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.moments is None:
            self.moments = StreamingMoments()

    def sum_estimate(self) -> Estimate:
        """Current SUM estimate of this term alone."""
        if self.root.points_so_far == 0:
            raise EstimationError("no stages completed yet")
        return srs_sum_estimate(
            self.space.total_points, self.root.points_so_far, self.moments
        )

    def estimate(self, rng: np.random.Generator | None = None) -> Estimate:
        """Current COUNT estimate of this term alone."""
        root = self.root
        if isinstance(root, StagedProject):
            return self._project_estimate(root, rng)
        if root.points_so_far == 0:
            raise EstimationError("no stages completed yet")
        return srs_count_estimate(
            self.space.total_points, root.points_so_far, root.cum_out_tuples
        )

    def _project_estimate(
        self, root: StagedProject, rng: np.random.Generator | None
    ) -> Estimate:
        points = root.points_so_far
        if points == 0:
            raise EstimationError("no stages completed yet")
        ones = root.observed_child_tuples
        if ones == 0:
            return Estimate(
                value=0.0,
                variance=0.0,
                sample_points=points,
                population_points=self.space.total_points,
                exact=points == self.space.total_points,
            )
        # Estimate the 1-point population, then the classes within it.
        ones_total = srs_count_estimate(self.space.total_points, points, ones)
        population = max(int(round(ones_total.value)), ones)
        return goodman_estimate(
            population, ones, list(root.occupancy.values()), rng=rng
        )


@dataclass
class StageStats:
    """Execution record of one completed stage of a plan."""

    stage: int
    fraction: float
    blocks_read: int
    new_points: int
    new_outputs: int


class StagedPlan:
    """The staged, multi-term evaluation plan of one COUNT query."""

    def __init__(
        self,
        expr: Expression,
        catalog: Catalog,
        charger: CostCharger,
        cost_model: CostModel,
        rng: np.random.Generator,
        block_size: int = DEFAULT_BLOCK_SIZE,
        full_fulfillment: bool = True,
        initial_selectivities: dict[str, float] | None = None,
        zero_fix_beta: float | None = None,
        aggregate: AggregateSpec = COUNT,
        hint_provider=None,
        pin_selectivities: bool = False,
        sink: TraceSink | None = None,
        vectorized: bool | None = None,
        injector: "FaultInjector | None" = None,
        optimize: bool = False,
        binder: "SynopsisBinder | None" = None,
        bufferpool: "BufferPool | None" = None,
        partitions: tuple[bool, int] | None = None,
    ) -> None:
        self.expr = expr
        self.bufferpool = bufferpool
        # None → honour the process-wide REPRO_KERNELS switch (default on).
        self.vectorized = kernels_enabled() if vectorized is None else vectorized
        self.sink: TraceSink = sink if sink is not None else NULL_SINK
        self.injector = injector
        self.aggregate = aggregate
        self._hint_provider = hint_provider
        self._pin_selectivities = pin_selectivities
        if pin_selectivities and hint_provider is None:
            raise EstimationError(
                "pin_selectivities needs a hint provider (prestored mode)"
            )
        self.catalog = catalog
        self.charger = charger
        self.cost_model = cost_model
        self.rng = rng
        self.block_size = block_size
        self.full_fulfillment = full_fulfillment

        expr.schema(catalog)  # validate the query up front
        # Phase 2 — logical optimization (the tree stays `expr` verbatim
        # with optimize=False, preserving the pre-planner engine bit for
        # bit; self.expr always keeps the query as written).
        self.optimize = optimize
        self.rule_applications = ()
        self.plan_cache_hit = False
        self.optimized_expr = expr
        if optimize:
            from repro.planner.rewrite import plan_logical

            planned = plan_logical(expr, catalog, hint=hint_provider)
            self.optimized_expr = planned.expression
            self.rule_applications = planned.applications
            self.plan_cache_hit = planned.cache_hit
            if planned.applications and not isinstance(self.sink, NullSink):
                for app in planned.applications:
                    self.sink.emit(
                        RuleApplied(
                            rule=app.rule, before=app.before, after=app.after
                        )
                    )
                self.sink.emit(
                    PlanOptimized(
                        before_hash=expr.structural_hash(),
                        after_hash=self.optimized_expr.structural_hash(),
                        rules=",".join(a.rule for a in planned.applications),
                        rules_applied=len(planned.applications),
                        cache_hit=planned.cache_hit,
                        operators_before=expr.operator_count(),
                        operators_after=self.optimized_expr.operator_count(),
                    )
                )

        # Phase 3 — physical lowering over shared scans.
        self._builder = PhysicalPlanBuilder(
            catalog=catalog,
            charger=charger,
            cost_model=cost_model,
            rng=rng,
            block_size=block_size,
            full_fulfillment=full_fulfillment,
            vectorized=self.vectorized,
            injector=injector,
            initial_selectivities=initial_selectivities,
            hint_provider=hint_provider,
            pin_selectivities=pin_selectivities,
            binder=binder,
            bufferpool=bufferpool,
            partitions=partitions,
        )
        self.binder = binder
        self.spool = self._builder.spool
        self.terms: list[StagedTerm] = []
        if aggregate.needs_values and expr.contains_projection():
            raise EstimationError(
                f"{aggregate.kind.upper()} over a projection is undefined "
                "(the population becomes groups, not tuples); aggregate "
                "before projecting or use COUNT"
            )
        for count_term in expand_count(self.optimized_expr):
            root = self._builder.build(count_term.expression)
            scans = root.base_scans()
            space = PointSpace(
                relation_names=tuple(s.relation.name for s in scans),
                tuple_counts=tuple(s.relation.tuple_count for s in scans),
                block_counts=tuple(s.relation.block_count for s in scans),
            )
            value_index = (
                root.schema.index_of(aggregate.attribute)
                if aggregate.needs_values
                else None
            )
            self.terms.append(
                StagedTerm(
                    count_term.coefficient, root, space, value_index=value_index
                )
            )
        for tracker in self.trackers():
            if zero_fix_beta is not None:
                tracker.zero_fix_beta = zero_fix_beta
            if not isinstance(self.sink, NullSink):
                tracker.sink = self.sink
        self.stages_completed = 0
        self.history: list[StageStats] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def scans(self) -> list[StagedScan]:
        return self._builder.scans

    def trackers(self) -> list[SelectivityTracker]:
        """All operator selectivity trackers, deduplicated, tree order."""
        seen: set[int] = set()
        out: list[SelectivityTracker] = []
        for term in self.terms:
            for node in term.root.iter_nodes():
                tracker = node.tracker
                if tracker is not None and id(tracker) not in seen:
                    seen.add(id(tracker))
                    out.append(tracker)
        return out

    def blocks_drawn(self) -> int:
        return sum(scan.blocks_drawn for scan in self.scans)

    def all_exhausted(self) -> bool:
        return all(scan.exhausted for scan in self.scans)

    def max_remaining_fraction(self) -> float:
        """Upper bisection bound: the largest per-relation fraction left."""
        fractions = [
            scan.sampler.remaining_blocks / scan.relation.block_count
            for scan in self.scans
            if scan.relation.block_count
        ]
        return max(fractions, default=0.0)

    def min_feasible_fraction(self) -> float:
        """Fraction that draws at least one new block somewhere."""
        fractions = [
            1.0 / scan.relation.block_count
            for scan in self.scans
            if not scan.exhausted
        ]
        return min(fractions, default=0.0)

    # ------------------------------------------------------------------
    # Controller operations
    # ------------------------------------------------------------------
    def predict_stage(self, fraction: float, sel_provider: SelProvider) -> float:
        """``QCOST(f, SEL)`` of the next stage across all terms (seconds)."""
        ctx = PredictContext(fraction, sel_provider)
        for term in self.terms:
            term.root.predict(ctx)
        return ctx.total_seconds

    def advance_stage(self, fraction: float) -> StageStats:
        """Execute the next stage at ``fraction``; returns its statistics."""
        if fraction <= 0:
            raise EstimationError(f"stage fraction must be positive: {fraction}")
        stage = self.stages_completed + 1
        trace = not isinstance(self.sink, NullSink)
        blocks_before = self.blocks_drawn()
        for scan in self.scans:
            scan_blocks_before = scan.blocks_drawn
            scan.advance(stage, fraction)
            if trace:
                # Shard events precede the merged ScanAdvance, mirroring
                # execution: shards read, then merge in global draw order.
                # They appear only on the sharded path — invariant 10 pins
                # estimates/costs/schedules, not traces, partitions on/off.
                if scan.sharded and scan.last_shard_stats:
                    for shard_stat in scan.last_shard_stats:
                        seed = (
                            scan.shard_seeds[shard_stat.shard]
                            if shard_stat.shard < len(scan.shard_seeds)
                            else 0
                        )
                        self.sink.emit(
                            ShardScanStarted(
                                relation=scan.relation.name,
                                shard=shard_stat.shard,
                                stage=stage,
                                blocks=shard_stat.blocks,
                                tuples=shard_stat.tuples,
                                seed=seed,
                            )
                        )
                    self.sink.emit(
                        ShardMerged(
                            relation=scan.relation.name,
                            stage=stage,
                            shards=len(scan.last_shard_stats),
                            blocks=scan.blocks_drawn - scan_blocks_before,
                            tuples=scan.new_tuples,
                        )
                    )
                self.sink.emit(
                    ScanAdvance(
                        stage=stage,
                        relation=scan.relation.name,
                        new_blocks=scan.blocks_drawn - scan_blocks_before,
                        new_tuples=scan.new_tuples,
                        cum_blocks=scan.blocks_drawn,
                        cum_tuples=scan.cum_tuples,
                    )
                )
        new_outputs = 0
        new_points = 0
        for term in self.terms:
            before_points = term.root.points_so_far
            before_out = term.root.cum_out_tuples
            node_before = (
                {
                    id(node): (node.cum_out_tuples, node.points_so_far)
                    for node in term.root.iter_nodes()
                    if not isinstance(node, StagedScan)
                }
                if trace
                else {}
            )
            new_rows = term.root.advance(stage)
            if term.value_index is not None:
                term.moments.add_many(row[term.value_index] for row in new_rows)
            if trace:
                for node in term.root.iter_nodes():
                    if isinstance(node, StagedScan):
                        continue
                    out_before, pts_before = node_before[id(node)]
                    label = (
                        node.tracker.label
                        if node.tracker is not None
                        else type(node).__name__
                    )
                    self.sink.emit(
                        OperatorAdvance(
                            stage=stage,
                            operator=label,
                            out_tuples=node.cum_out_tuples - out_before,
                            new_points=node.points_so_far - pts_before,
                            cum_out_tuples=node.cum_out_tuples,
                            cum_points=node.points_so_far,
                        )
                    )
            new_points += term.root.points_so_far - before_points
            new_outputs += term.root.cum_out_tuples - before_out
        self.stages_completed = stage
        stats = StageStats(
            stage=stage,
            fraction=fraction,
            blocks_read=self.blocks_drawn() - blocks_before,
            new_points=new_points,
            new_outputs=new_outputs,
        )
        self.history.append(stats)
        return stats

    # ------------------------------------------------------------------
    # Salvage support (fault injection)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the plan's full logical state at a stage boundary.

        Taken by the executor before each stage attempt when a fault
        injector is active. Everything an estimator reads rolls back on
        :meth:`restore` — node stages and counters, sampler cursors,
        selectivity observations, consolidated runs, spool files, term
        moments — while everything *physical* stays: charged time, the
        cost model's observations, and already-emitted trace events are
        the true record of work the fault wasted.
        """
        nodes: dict[int, tuple] = {}
        for term in self.terms:
            for node in term.root.iter_nodes():
                if id(node) not in nodes:  # scans/subtrees are shared
                    nodes[id(node)] = (node, node.snapshot())
        return {
            "stages_completed": self.stages_completed,
            "history": len(self.history),
            "spool": self.spool.snapshot(),
            "nodes": list(nodes.values()),
            "moments": [
                (t.moments.ones, t.moments.total, t.moments.total_sq)
                for t in self.terms
            ],
        }

    def restore(self, token: dict) -> None:
        """Roll back to a :meth:`snapshot` token (discard a faulted stage)."""
        for node, node_token in token["nodes"]:
            node.restore(node_token)
        self.spool.restore(token["spool"])
        self.stages_completed = token["stages_completed"]
        del self.history[token["history"] :]
        for term, (ones, total, total_sq) in zip(self.terms, token["moments"]):
            term.moments.ones = ones
            term.moments.total = total
            term.moments.total_sq = total_sq

    def estimate(self) -> Estimate:
        """Current combined f(E) estimate (per the configured aggregate)."""
        if self.aggregate.kind == "count":
            return self._count_estimate()
        if self.aggregate.kind == "sum":
            return self._sum_estimate()
        return self._avg_estimate()

    def _count_estimate(self) -> Estimate:
        pairs = [(t.coefficient, t.estimate(self.rng)) for t in self.terms]
        if len(pairs) == 1 and pairs[0][0] == 1:
            return pairs[0][1]
        return combine_term_estimates(pairs)

    def _sum_estimate(self) -> Estimate:
        pairs = [(t.coefficient, t.sum_estimate()) for t in self.terms]
        if len(pairs) == 1 and pairs[0][0] == 1:
            return pairs[0][1]
        return combine_term_estimates(pairs)

    def _avg_estimate(self) -> Estimate:
        count = self._count_estimate()
        total = self._sum_estimate()
        merged = StreamingMoments()
        for term in self.terms:
            merged.merge(term.moments.scaled(term.coefficient))
        return avg_from_sum_count(total, count, merged)
