"""Staged estimator-evaluation engine (full/partial fulfillment plans)."""

from repro.engine.nodes import (
    PredictContext,
    SelProvider,
    StagedIntersect,
    StagedJoin,
    StagedNode,
    StagedProject,
    StagedScan,
    StagedSelect,
    StagePrediction,
)
from repro.engine.plan import (
    DEFAULT_INITIAL_SELECTIVITY,
    StagedPlan,
    StagedTerm,
    StageStats,
)

__all__ = [
    "DEFAULT_INITIAL_SELECTIVITY",
    "PredictContext",
    "SelProvider",
    "StagePrediction",
    "StageStats",
    "StagedIntersect",
    "StagedJoin",
    "StagedNode",
    "StagedPlan",
    "StagedProject",
    "StagedScan",
    "StagedSelect",
    "StagedTerm",
]
