"""Staged operator nodes — the estimator-evaluation engine.

These nodes execute one SJIP term of a COUNT query *stage by stage* over
growing block samples, implementing the paper's full-fulfillment cluster
sampling plan (Section 4, Figure 4.1): at stage ``s`` a binary operator
combines its children's **new** sample outputs with everything seen before —
``(F_1s ⋈ F_2s) ∪ (F_1s ⋈ F_2i)_{i<s} ∪ (F_1i ⋈ F_2s)_{i<s}`` — so after
``s`` stages the evaluated region is the full cross product of all sampled
tuples. Partial fulfillment ("less costly", [HoOT 88a]) merges only
new×new.

Every node also serves the *controller*:

* it owns a :class:`~repro.estimation.selectivity.SelectivityTracker`
  (Revise-Selectivities state) fed with (output tuples, new points) per
  stage, where "points" live in the node's own point space — the cross
  product of the base relations under it (Section 3.1's operator
  selectivity);
* :meth:`predict` prices a candidate sample fraction using the adaptive
  :class:`~repro.costmodel.model.CostModel`, mirroring the per-step cost
  formulas (4.1)–(4.5) that the execution path actually charges;
* execution wraps each time-consuming step in ``charger.measure`` and feeds
  the measured seconds back into the cost model (the run-time coefficient
  adjustment of Section 4).

Scans are **shared**: when inclusion–exclusion expands a query into several
terms over the same base relation, one :class:`StagedScan` draws each
relation's blocks once per stage and every term reads the same sample, as
the paper's PIE evaluation does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import compress
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

from repro.catalog.schema import Schema
from repro.costmodel import steps as step_names
from repro.costmodel.model import CostModel
from repro.errors import TimeControlError
from repro.estimation.selectivity import SelectivityTracker
from repro.kernels import runs as _kernels
from repro.kernels.cache import cached_sort_key, compiled_predicate
from repro.kernels.columns import ColumnBatch
from repro.relational.operators import (
    apply_select,
    charge_external_sort,
    charge_merge,
    external_sort,
    merge_intersect,
    merge_join,
    project_rows,
    whole_row_key,
)
from repro.relational.predicate import Predicate
from repro.sampling.sampler import BlockSampler, blocks_for_fraction
from repro.storage.block import Row
from repro.storage.heapfile import HeapFile
from repro.storage.spool import Spool, SpoolFile
from repro.timekeeping.charger import CostCharger
from repro.timekeeping.profile import CostKind

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.storage.bufferpool import BufferPool
    from repro.storage.partitioned import ShardReadStats

SelProvider = Callable[[SelectivityTracker, int, int], float]
"""Strategy hook: (tracker, candidate_new_points, space_points) -> sel used."""


@dataclass
class StagePrediction:
    """Controller-side forecast of one node's next stage."""

    seconds: float
    new_out_tuples: float
    new_points: float


class PredictContext:
    """One prediction pass over a (possibly multi-term) staged plan.

    Caches per-node results so shared scans (and shared subtrees) are priced
    exactly once per pass, and carries the strategy's selectivity provider.
    """

    def __init__(self, fraction: float, sel_provider: SelProvider) -> None:
        if fraction <= 0:
            raise TimeControlError(f"candidate fraction must be positive: {fraction}")
        self.fraction = fraction
        self.sel_provider = sel_provider
        self._cache: dict[int, StagePrediction] = {}
        self.total_seconds = 0.0

    def cached(self, node: "StagedNode") -> StagePrediction | None:
        return self._cache.get(id(node))

    def store(
        self, node: "StagedNode", prediction: StagePrediction
    ) -> StagePrediction:
        self._cache[id(node)] = prediction
        self.total_seconds += prediction.seconds
        return prediction


def _nlogn(n: float) -> float:
    return n * math.log2(n) if n > 1 else 0.0


class StagedNode(Protocol):
    """Common protocol of all staged nodes (see module docstring)."""

    schema: Schema
    tracker: SelectivityTracker | None

    def advance(self, stage: int) -> list[Row]: ...

    def predict(self, ctx: PredictContext) -> StagePrediction: ...

    def base_scans(self) -> list["StagedScan"]: ...

    def iter_nodes(self) -> "list[StagedNode]": ...

    def snapshot(self) -> dict: ...

    def restore(self, token: dict) -> None: ...


class _NodeBase:
    """Shared region bookkeeping over the base relations under a node."""

    schema: Schema
    tracker: SelectivityTracker | None = None

    def __init__(
        self,
        charger: CostCharger,
        cost_model: CostModel,
        block_size: int,
        full_fulfillment: bool,
        spool: "Spool | None" = None,
        vectorized: bool = False,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.charger = charger
        self.cost_model = cost_model
        self.block_size = block_size
        self.full_fulfillment = full_fulfillment
        self.vectorized = vectorized
        self.injector = injector
        self.spool = spool if spool is not None else Spool(block_size)
        self.stage = 0  # completed stages
        self.cum_out_tuples = 0
        self.points_so_far = 0
        # Columnar view of this node's latest stage output; consumed by a
        # vectorized parent so columns decoded here aren't decoded twice.
        self.stage_columns: ColumnBatch | None = None

    def _child_batch(self, child: "StagedNode", rows: list[Row]) -> ColumnBatch:
        """The child's stage batch if it matches ``rows``, else a fresh one."""
        batch = getattr(child, "stage_columns", None)
        if batch is not None and batch.rows is rows:
            return batch
        return ColumnBatch(rows, child.schema)

    # -- region geometry ------------------------------------------------
    def base_scans(self) -> list["StagedScan"]:
        raise NotImplementedError

    def space_points(self) -> int:
        """Total points of this node's point space (Π N_j of its subtree)."""
        return math.prod(s.relation.tuple_count for s in self.base_scans())

    def _new_points_actual(self) -> int:
        """Newly covered points after the scans advanced this stage."""
        scans = self.base_scans()
        if self.full_fulfillment:
            after = math.prod(s.cum_tuples for s in scans)
            new = after - self.points_so_far
        else:
            new = math.prod(s.new_tuples for s in scans)
        return new

    def _new_points_predicted(self, ctx: PredictContext) -> float:
        scans = self.base_scans()
        news = [s.predict(ctx).new_out_tuples for s in scans]
        if self.full_fulfillment:
            after = math.prod(s.cum_tuples + n for s, n in zip(scans, news))
            before = math.prod(s.cum_tuples for s in scans)
            return after - before
        return math.prod(news)

    def _record(self, out_tuples: int) -> None:
        new_points = self._new_points_actual()
        self.points_so_far += new_points
        self.cum_out_tuples += out_tuples
        if self.tracker is not None:
            self.tracker.record_stage(out_tuples, new_points)

    def _bf(self) -> int:
        return self.schema.blocking_factor(self.block_size)

    def _check_stage(self, stage: int) -> None:
        if stage != self.stage + 1:
            raise TimeControlError(
                f"stage {stage} requested but node has completed {self.stage}"
            )

    # -- salvage support (fault injection) -------------------------------
    def snapshot(self) -> dict:
        """This node's logical estimator state, as a rollback token.

        Captured by :meth:`repro.engine.plan.StagedPlan.snapshot` before a
        stage attempt when a fault injector is active; on an injected
        fault, :meth:`restore` returns the node to the last consistent
        stage boundary (charged time stays spent — only estimator state
        rolls back). Subclasses extend the dict with their own fields.
        """
        return {
            "stage": self.stage,
            "cum_out_tuples": self.cum_out_tuples,
            "points_so_far": self.points_so_far,
            "stage_columns": self.stage_columns,
            "tracker": self.tracker.snapshot() if self.tracker else None,
        }

    def restore(self, token: dict) -> None:
        self.stage = token["stage"]
        self.cum_out_tuples = token["cum_out_tuples"]
        self.points_so_far = token["points_so_far"]
        self.stage_columns = token["stage_columns"]
        if self.tracker is not None:
            self.tracker.restore(token["tracker"])


class StagedScan(_NodeBase):
    """Shared sampling scan of one base relation.

    Draws ``max(1, round(f·D))`` new blocks per stage (clamped by what
    remains unsampled) and reads them, charging block I/O. All terms that
    reference the relation share this node, so blocks are drawn and read
    once per stage.
    """

    def __init__(
        self,
        relation: HeapFile,
        sampler: BlockSampler,
        charger: CostCharger,
        cost_model: CostModel,
        block_size: int,
        full_fulfillment: bool,
        spool: "Spool | None" = None,
        vectorized: bool = False,
        injector: "FaultInjector | None" = None,
        bufferpool: "BufferPool | None" = None,
        partitions: tuple[bool, int] | None = None,
        shard_seeds: tuple[int, ...] = (),
    ) -> None:
        super().__init__(
            charger,
            cost_model,
            block_size,
            full_fulfillment,
            spool,
            vectorized,
            injector,
        )
        self.relation = relation
        self.sampler = sampler
        self.bufferpool = bufferpool
        self.schema = relation.schema
        self.cum_tuples = 0
        self.new_tuples = 0
        self._stage_rows: list[Row] = []
        # Sharded execution: only when the switch is on AND the relation
        # actually is partitioned. The global sampler permutation is drawn
        # either way, so the switch never perturbs the session RNG stream.
        enabled, workers = partitions if partitions is not None else (False, 1)
        self.sharded = bool(enabled) and bool(getattr(relation, "shards", None))
        self.shard_workers = max(1, workers)
        self.shard_seeds = shard_seeds
        # Per-shard tallies of the latest sharded stage read; StagedPlan
        # turns them into ShardScanStarted/ShardMerged trace events.
        self.last_shard_stats: "list[ShardReadStats]" = []

    def base_scans(self) -> list["StagedScan"]:
        return [self]

    def iter_nodes(self) -> list["StagedNode"]:
        return [self]

    @property
    def blocks_drawn(self) -> int:
        return self.sampler.drawn_blocks

    @property
    def exhausted(self) -> bool:
        return self.sampler.exhausted

    def _blocks_for(self, fraction: float) -> int:
        wanted = blocks_for_fraction(self.relation, fraction)
        return min(wanted, self.sampler.remaining_blocks)

    def advance(self, stage: int, fraction: float | None = None) -> list[Row]:
        if stage == self.stage:  # another term already advanced us
            return self._stage_rows
        self._check_stage(stage)
        if fraction is None:
            raise TimeControlError("scan.advance needs the stage fraction")
        d = self._blocks_for(fraction)
        batch: ColumnBatch | None = None
        with self.charger.measure() as meter:
            block_ids = self.sampler.draw(d)
            if self.sharded:
                # Shard workers materialize each shard's drawn blocks in
                # parallel (wall-clock only); the relation replays the
                # reference bounds → charge → injector → pool sequence per
                # block in global draw order, so charged costs and fault
                # streams are bit-identical to the unsharded branches below.
                rows, batch, self.last_shard_stats = self.relation.read_sharded(
                    block_ids,
                    self.charger,
                    injector=self.injector,
                    pool=self.bufferpool,
                    workers=self.shard_workers,
                    decoded=self.vectorized,
                )
            elif self.bufferpool is not None and self.vectorized:
                # Pooled + columnar: resident blocks hand back their
                # decode-once arrays. Charges and injector consultations
                # are issued per block exactly as on the plain path.
                rows, batch = self.relation.read_blocks_decoded(
                    block_ids, self.charger, self.injector, self.bufferpool
                )
            else:
                rows = self.relation.read_blocks(
                    block_ids, self.charger, self.injector, self.bufferpool
                )
        if d:
            self.cost_model.observe(step_names.SCAN_READ, [d, 1.0], meter.elapsed)
        self._stage_rows = rows
        if self.vectorized:
            # Decode the stage's blocks into the columnar view once; every
            # term that shares this scan reuses the same batch. Uncharged:
            # the simulated block reads above already paid for the I/O.
            self.stage_columns = (
                batch if batch is not None else ColumnBatch(rows, self.schema)
            )
        self.new_tuples = len(rows)
        self.cum_tuples += len(rows)
        self.stage = stage
        self._record(len(rows))  # scan "outputs" everything it reads
        return rows

    def predict(self, ctx: PredictContext) -> StagePrediction:
        cached = ctx.cached(self)
        if cached is not None:
            return cached
        d = self._blocks_for(ctx.fraction)
        seconds = (
            self.cost_model.predict(step_names.SCAN_READ, [d, 1.0]) if d else 0.0
        )
        new_tuples = float(d * self.relation.blocking_factor)
        # The final block may be partially filled; clamp by what remains.
        new_tuples = min(new_tuples, self.relation.tuple_count - self.cum_tuples)
        return ctx.store(self, StagePrediction(seconds, new_tuples, new_tuples))

    def snapshot(self) -> dict:
        token = super().snapshot()
        token["sampler"] = self.sampler.snapshot()
        token["cum_tuples"] = self.cum_tuples
        token["new_tuples"] = self.new_tuples
        token["stage_rows"] = self._stage_rows
        return token

    def restore(self, token: dict) -> None:
        super().restore(token)
        self.sampler.restore(token["sampler"])
        self.cum_tuples = token["cum_tuples"]
        self.new_tuples = token["new_tuples"]
        self._stage_rows = token["stage_rows"]


class StagedSelect(_NodeBase):
    """Staged selection (Figure 4.3 / equation 4.1).

    ``predicate`` may be the :class:`~repro.relational.predicate.Predicate`
    AST — compiled exactly once at construction, through the process-wide
    kernel cache, into both the row function and the vectorized mask — or a
    pre-compiled row callable (legacy form), which forces this node onto
    the row-at-a-time path since no mask can be derived from it.
    """

    def __init__(
        self,
        child: "StagedNode",
        predicate: "Predicate | Callable[[Row], bool]",
        label: str,
        initial_selectivity: float,
        charger: CostCharger,
        cost_model: CostModel,
        block_size: int,
        full_fulfillment: bool,
        spool: "Spool | None" = None,
        vectorized: bool = False,
        injector: "FaultInjector | None" = None,
    ) -> None:
        super().__init__(
            charger,
            cost_model,
            block_size,
            full_fulfillment,
            spool,
            vectorized,
            injector,
        )
        self.child = child
        self.schema = child.schema
        if isinstance(predicate, Predicate):
            compiled = compiled_predicate(predicate, child.schema)
            self.predicate_fn = compiled.row_fn
            self._mask_fn = compiled.mask_fn
            self.comparison_count = compiled.comparison_count
        else:  # bare callable: no columnar counterpart available
            self.predicate_fn = predicate
            self._mask_fn = None
            self.comparison_count = 1
        self.tracker = SelectivityTracker(label, initial_selectivity)

    def base_scans(self) -> list[StagedScan]:
        return self.child.base_scans()

    def iter_nodes(self) -> list["StagedNode"]:
        return [self, *self.child.iter_nodes()]

    def _select_vectorized(self, rows: list[Row]) -> list[Row]:
        """Whole-stage filter: same charges as ``apply_select``, one mask."""
        self.charger.charge(CostKind.OP_INIT, 1)
        if rows:
            self.charger.charge(CostKind.SELECT_CHECK, len(rows))
        batch = self._child_batch(self.child, rows)
        mask = self._mask_fn(batch)
        out = list(compress(rows, mask.tolist()))
        if out:
            self.charger.charge(CostKind.PAGE_WRITE, -(-len(out) // self._bf()))
        self.stage_columns = ColumnBatch(out, self.schema)
        return out

    def advance(self, stage: int) -> list[Row]:
        self._check_stage(stage)
        rows = self.child.advance(stage)
        with self.charger.measure() as meter:
            if self.vectorized and self._mask_fn is not None:
                out = self._select_vectorized(rows)
            else:
                out = apply_select(
                    rows, self.predicate_fn, self.charger, self._bf()
                )
        pages = -(-len(out) // self._bf()) if out else 0
        self.cost_model.observe(
            step_names.SELECT_OP, [len(rows), pages, 1.0], meter.elapsed
        )
        self.stage = stage
        self._record(len(out))
        return out

    def predict(self, ctx: PredictContext) -> StagePrediction:
        cached = ctx.cached(self)
        if cached is not None:
            return cached
        child = self.child.predict(ctx)
        new_points = self._new_points_predicted(ctx)
        sel = ctx.sel_provider(
            self.tracker, max(int(new_points), 1), self.space_points()
        )
        out = sel * new_points
        pages = out / self._bf()
        seconds = self.cost_model.predict(
            step_names.SELECT_OP, [child.new_out_tuples, pages, 1.0]
        )
        return ctx.store(self, StagePrediction(seconds, out, new_points))


class _StagedBinary(_NodeBase):
    """Shared machinery of staged Join and Intersect (Figures 4.4/4.6).

    Keeps the per-stage sorted runs ``F_{j,i}`` of both children; stage ``s``
    writes + sorts the new runs and performs the full- or partial-fulfillment
    merges, charging equations (4.2)–(4.4).

    Two execution paths compute the same stage. The row-at-a-time reference
    path loops a pairwise sorted merge over every old run, so Python work
    per stage grows with the stage count. The vectorized path keeps **one
    consolidated sorted run per side** (:class:`repro.kernels.SortedRun`):
    all new x old pairs are answered by a single ``searchsorted`` probe and
    split back into per-old-run outputs by stage tag, after which the new
    run is merged in once. The *charged* simulated costs — temp writes,
    sorts, and one :func:`charge_merge` per (new, old-run) pair in run
    order — are issued identically on both paths, so estimates, traces,
    and charged times are bit-identical; only wall-clock time differs.
    """

    write_step: str
    sort_step: str
    merge_step: str

    def __init__(
        self,
        left: "StagedNode",
        right: "StagedNode",
        label: str,
        initial_selectivity: float,
        charger: CostCharger,
        cost_model: CostModel,
        block_size: int,
        full_fulfillment: bool,
        spool: "Spool | None" = None,
        vectorized: bool = False,
        injector: "FaultInjector | None" = None,
    ) -> None:
        super().__init__(
            charger,
            cost_model,
            block_size,
            full_fulfillment,
            spool,
            vectorized,
            injector,
        )
        self.left = left
        self.right = right
        self.tracker = SelectivityTracker(label, initial_selectivity)
        self._left_runs: list[SpoolFile] = []
        self._right_runs: list[SpoolFile] = []
        self.cum_left_in = 0
        self.cum_right_in = 0
        self._sort_key_pair: tuple[
            Callable[[Row], tuple], Callable[[Row], tuple]
        ] | None = None
        # Consolidated sorted runs (vectorized full fulfillment only;
        # partial fulfillment never revisits old runs).
        self._left_sorted = _kernels.SortedRun()
        self._right_sorted = _kernels.SortedRun()

    def base_scans(self) -> list[StagedScan]:
        return self.left.base_scans() + self.right.base_scans()

    def iter_nodes(self) -> list["StagedNode"]:
        return [self, *self.left.iter_nodes(), *self.right.iter_nodes()]

    # Subclass hooks ----------------------------------------------------
    def _sort_keys(self) -> tuple[Callable[[Row], tuple], Callable[[Row], tuple]]:
        """Row-path sort keys, built once at first use and cached."""
        if self._sort_key_pair is None:
            left_pos, right_pos = self._key_positions()
            self._sort_key_pair = (
                cached_sort_key(left_pos),
                cached_sort_key(right_pos),
            )
        return self._sort_key_pair

    def _key_positions(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(left, right) attribute positions forming the merge key."""
        raise NotImplementedError

    def _merge(self, left_run: list[Row], right_run: list[Row]) -> list[Row]:
        raise NotImplementedError

    def _vec_new_new(
        self, left: "_kernels.KeyedRows", right: "_kernels.KeyedRows"
    ) -> list[Row]:
        raise NotImplementedError

    def _vec_vs_run(
        self,
        new: "_kernels.KeyedRows",
        run: "_kernels.SortedRun",
        run_codes,
        new_on_left: bool,
    ) -> list[list[Row]]:
        raise NotImplementedError

    # Execution ----------------------------------------------------------
    def advance(self, stage: int) -> list[Row]:
        self._check_stage(stage)
        new_left = self.left.advance(stage)
        new_right = self.right.advance(stage)
        if self.vectorized:
            out, left_file, right_file = self._stage_vectorized(
                stage, new_left, new_right
            )
        else:
            out, left_file, right_file = self._stage_rowwise(new_left, new_right)

        if self.full_fulfillment:
            # The runs must survive for future cross-stage merges. (The
            # vectorized path reads them back via the consolidated runs but
            # retains the files so temp-space accounting is path-invariant.)
            self._left_runs.append(left_file)
            self._right_runs.append(right_file)
        else:
            # Partial fulfillment never revisits old runs: release at once.
            self.spool.release(left_file)
            self.spool.release(right_file)
        self.cum_left_in += len(new_left)
        self.cum_right_in += len(new_right)
        self.stage = stage
        self._record(len(out))
        return out

    def _spool_and_charge_writes(
        self, new_left: list[Row], new_right: list[Row]
    ) -> tuple[SpoolFile, SpoolFile]:
        # Step (1): write the stage's sample tuples to temporary files —
        # "all the intermediate relations are always kept on disks".
        left_file = self.spool.create(self.left.schema)
        right_file = self.spool.create(self.right.schema)
        with self.charger.measure() as meter:
            left_file.write(new_left, self.charger)
            right_file.write(new_right, self.charger)
        self.cost_model.observe(
            self.write_step, [len(new_left) + len(new_right), 1.0], meter.elapsed
        )
        return left_file, right_file

    def _stage_rowwise(
        self, new_left: list[Row], new_right: list[Row]
    ) -> tuple[list[Row], SpoolFile, SpoolFile]:
        """The reference path: pairwise merges against every old run."""
        left_file, right_file = self._spool_and_charge_writes(new_left, new_right)
        total_in = len(new_left) + len(new_right)

        # Step (2): sort the temporary files.
        left_key, right_key = self._sort_keys()
        with self.charger.measure() as meter:
            left_file.replace_rows(
                external_sort(left_file.rows, left_key, self.charger)
            )
            right_file.replace_rows(
                external_sort(right_file.rows, right_key, self.charger)
            )
        self.cost_model.observe(
            self.sort_step,
            [_nlogn(len(new_left)) + _nlogn(len(new_right)), total_in, 1.0],
            meter.elapsed,
        )

        # Step (3): merge — new×new always; cross-stage merges only under
        # full fulfillment (Figure 4.5).
        out: list[Row] = []
        reads = 0
        merges = 0
        with self.charger.measure() as meter:
            out.extend(self._merge(left_file.rows, right_file.rows))
            reads += len(left_file) + len(right_file)
            merges += 1
            if self.full_fulfillment:
                for old_right in self._right_runs:
                    out.extend(self._merge(left_file.rows, old_right.rows))
                    reads += len(left_file) + len(old_right)
                    merges += 1
                for old_left in self._left_runs:
                    out.extend(self._merge(old_left.rows, right_file.rows))
                    reads += len(old_left) + len(right_file)
                    merges += 1
        self.cost_model.observe(
            self.merge_step, [reads, len(out), merges], meter.elapsed
        )
        return out, left_file, right_file

    def _stage_vectorized(
        self, stage: int, new_left: list[Row], new_right: list[Row]
    ) -> tuple[list[Row], SpoolFile, SpoolFile]:
        """The kernel path: identical charges, bulk computation."""
        left_file, right_file = self._spool_and_charge_writes(new_left, new_right)
        total_in = len(new_left) + len(new_right)
        left_pos, right_pos = self._key_positions()
        left_keys = self._child_batch(self.left, new_left).key_columns(left_pos)
        right_keys = self._child_batch(self.right, new_right).key_columns(
            right_pos
        )

        # Step (2): sort the temporary files — equation (4.3) charged per
        # file exactly as external_sort would, ordering done columnar.
        with self.charger.measure() as meter:
            charge_external_sort(self.charger, len(new_left))
            left_order = _kernels.stable_lexsort(left_keys)
            sorted_left = _kernels.rows_array(new_left)[left_order]
            left_keys = [col[left_order] for col in left_keys]
            left_file.replace_rows(sorted_left.tolist())
            charge_external_sort(self.charger, len(new_right))
            right_order = _kernels.stable_lexsort(right_keys)
            sorted_right = _kernels.rows_array(new_right)[right_order]
            right_keys = [col[right_order] for col in right_keys]
            right_file.replace_rows(sorted_right.tolist())
        self.cost_model.observe(
            self.sort_step,
            [_nlogn(len(new_left)) + _nlogn(len(new_right)), total_in, 1.0],
            meter.elapsed,
        )

        # Step (3): merges. One joint code space over the new runs and both
        # consolidated runs prices every pair with one searchsorted probe;
        # charge_merge is then replayed per pair in the reference order
        # (new×new, new-left × old-rights, old-lefts × new-right).
        bf = self._bf()
        out: list[Row] = []
        reads = 0
        merges = 0
        with self.charger.measure() as meter:
            codes = _kernels.encode_columns(
                [
                    left_keys,
                    right_keys,
                    self._left_sorted.key_columns_or_empty(left_keys),
                    self._right_sorted.key_columns_or_empty(right_keys),
                ]
            )
            keyed_left = _kernels.KeyedRows(codes[0], sorted_left)
            keyed_right = _kernels.KeyedRows(codes[1], sorted_right)

            pair_out = self._vec_new_new(keyed_left, keyed_right)
            out.extend(pair_out)
            charge_merge(
                self.charger, len(left_file), len(right_file), pair_out, bf
            )
            reads += len(left_file) + len(right_file)
            merges += 1
            if self.full_fulfillment:
                right_outs = self._vec_vs_run(
                    keyed_left, self._right_sorted, codes[3], new_on_left=True
                )
                for (_s, run_len), pair_out in zip(
                    self._right_sorted.lengths, right_outs
                ):
                    out.extend(pair_out)
                    charge_merge(
                        self.charger, len(left_file), run_len, pair_out, bf
                    )
                    reads += len(left_file) + run_len
                    merges += 1
                left_outs = self._vec_vs_run(
                    keyed_right, self._left_sorted, codes[2], new_on_left=False
                )
                for (_s, run_len), pair_out in zip(
                    self._left_sorted.lengths, left_outs
                ):
                    out.extend(pair_out)
                    charge_merge(
                        self.charger, run_len, len(right_file), pair_out, bf
                    )
                    reads += run_len + len(right_file)
                    merges += 1
        self.cost_model.observe(
            self.merge_step, [reads, len(out), merges], meter.elapsed
        )

        if self.full_fulfillment:
            self._left_sorted.merge_in(left_keys, sorted_left, stage)
            self._right_sorted.merge_in(right_keys, sorted_right, stage)
        return out, left_file, right_file

    # Salvage support ----------------------------------------------------
    def snapshot(self) -> dict:
        token = super().snapshot()
        token["left_runs"] = len(self._left_runs)
        token["right_runs"] = len(self._right_runs)
        token["cum_left_in"] = self.cum_left_in
        token["cum_right_in"] = self.cum_right_in
        token["left_sorted"] = self._left_sorted.snapshot()
        token["right_sorted"] = self._right_sorted.snapshot()
        return token

    def restore(self, token: dict) -> None:
        super().restore(token)
        del self._left_runs[token["left_runs"] :]
        del self._right_runs[token["right_runs"] :]
        self.cum_left_in = token["cum_left_in"]
        self.cum_right_in = token["cum_right_in"]
        self._left_sorted.restore(token["left_sorted"])
        self._right_sorted.restore(token["right_sorted"])

    # Prediction ----------------------------------------------------------
    def predict(self, ctx: PredictContext) -> StagePrediction:
        cached = ctx.cached(self)
        if cached is not None:
            return cached
        left = self.left.predict(ctx)
        right = self.right.predict(ctx)
        n1, n2 = left.new_out_tuples, right.new_out_tuples
        s = self.stage + 1
        new_points = self._new_points_predicted(ctx)
        sel = ctx.sel_provider(
            self.tracker, max(int(new_points), 1), self.space_points()
        )
        out = sel * new_points
        if self.full_fulfillment:
            # Equation (4.4): N_{1,s−1} + N_{2,s−1} + s(n_1s + n_2s).
            reads = self.cum_left_in + self.cum_right_in + s * (n1 + n2)
            merges = 2 * s - 1
        else:
            reads = n1 + n2
            merges = 1
        seconds = (
            self.cost_model.predict(self.write_step, [n1 + n2, 1.0])
            + self.cost_model.predict(
                self.sort_step, [_nlogn(n1) + _nlogn(n2), n1 + n2, 1.0]
            )
            + self.cost_model.predict(self.merge_step, [reads, out, merges])
        )
        return ctx.store(self, StagePrediction(seconds, out, new_points))


class StagedIntersect(_StagedBinary):
    """Staged set intersection — the only set operation the estimator runs."""

    write_step = step_names.INTERSECT_WRITE
    sort_step = step_names.INTERSECT_SORT
    merge_step = step_names.INTERSECT_MERGE

    def __init__(self, left: "StagedNode", right: "StagedNode", **kwargs) -> None:
        super().__init__(left, right, **kwargs)
        left.schema.require_compatible(right.schema, "intersect")
        self.schema = left.schema

    def _sort_keys(self):
        return whole_row_key, whole_row_key

    def _key_positions(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        positions = tuple(range(len(self.schema.attributes)))
        return positions, positions

    def _merge(self, left_run: list[Row], right_run: list[Row]) -> list[Row]:
        return merge_intersect(left_run, right_run, self.charger, self._bf())

    def _vec_new_new(
        self, left: "_kernels.KeyedRows", right: "_kernels.KeyedRows"
    ) -> list[Row]:
        return _kernels.intersect_new_new(left, right)

    def _vec_vs_run(
        self,
        new: "_kernels.KeyedRows",
        run: "_kernels.SortedRun",
        run_codes,
        new_on_left: bool,
    ) -> list[list[Row]]:
        # Whole-row keys make both directions symmetric: representative
        # tuples are value-identical whichever side supplies them.
        return _kernels.intersect_vs_run(new, run, run_codes)


class StagedJoin(_StagedBinary):
    """Staged equi-join (Figure 4.6)."""

    write_step = step_names.JOIN_WRITE
    sort_step = step_names.JOIN_SORT
    merge_step = step_names.JOIN_MERGE

    def __init__(
        self,
        left: "StagedNode",
        right: "StagedNode",
        on: Sequence[tuple[str, str]],
        **kwargs,
    ) -> None:
        super().__init__(left, right, **kwargs)
        self.on = tuple(on)
        self._left_key = [left.schema.index_of(a) for a, _ in self.on]
        self._right_key = [right.schema.index_of(b) for _, b in self.on]
        self.schema = left.schema.join(right.schema)

    def _key_positions(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        return tuple(self._left_key), tuple(self._right_key)

    def _merge(self, left_run: list[Row], right_run: list[Row]) -> list[Row]:
        return merge_join(
            left_run,
            right_run,
            self._left_key,
            self._right_key,
            self.charger,
            self._bf(),
        )

    def _vec_new_new(
        self, left: "_kernels.KeyedRows", right: "_kernels.KeyedRows"
    ) -> list[Row]:
        return _kernels.join_new_new(left, right)

    def _vec_vs_run(
        self,
        new: "_kernels.KeyedRows",
        run: "_kernels.SortedRun",
        run_codes,
        new_on_left: bool,
    ) -> list[list[Row]]:
        return _kernels.join_vs_run(new, run, run_codes, new_on_left)


class StagedProject(_NodeBase):
    """Staged duplicate-eliminating projection (Figure 4.7).

    Maintains the global group-occupancy table across stages — the input to
    Goodman's estimator. Its per-stage "output tuples" are the groups first
    observed at that stage, so its selectivity is distinct-groups-per-point.
    """

    def __init__(
        self,
        child: "StagedNode",
        attrs: Sequence[str],
        label: str,
        initial_selectivity: float,
        charger: CostCharger,
        cost_model: CostModel,
        block_size: int,
        full_fulfillment: bool,
        spool: "Spool | None" = None,
        vectorized: bool = False,
        injector: "FaultInjector | None" = None,
    ) -> None:
        super().__init__(
            charger,
            cost_model,
            block_size,
            full_fulfillment,
            spool,
            vectorized,
            injector,
        )
        self.child = child
        self.attrs = tuple(attrs)
        self._positions = [child.schema.index_of(a) for a in self.attrs]
        self.schema = child.schema.project(self.attrs)
        self.tracker = SelectivityTracker(label, initial_selectivity)
        self.occupancy: dict[Row, int] = {}
        self.observed_child_tuples = 0

    def base_scans(self) -> list[StagedScan]:
        return self.child.base_scans()

    def iter_nodes(self) -> list["StagedNode"]:
        return [self, *self.child.iter_nodes()]

    def advance(self, stage: int) -> list[Row]:
        self._check_stage(stage)
        rows = self.child.advance(stage)
        projected = project_rows(rows, self._positions)

        # Step (1): spool the projected tuples to a temporary file.
        temp = self.spool.create(self.schema)
        with self.charger.measure() as meter:
            temp.write(projected, self.charger)
        self.cost_model.observe(
            step_names.PROJECT_WRITE, [len(projected), 1.0], meter.elapsed
        )

        # Step (2): sort the temporary file.
        with self.charger.measure() as meter:
            ordered = external_sort(temp.rows, whole_row_key, self.charger)
            temp.replace_rows(ordered)
        self.cost_model.observe(
            step_names.PROJECT_SORT,
            [_nlogn(len(projected)), len(projected), 1.0],
            meter.elapsed,
        )

        new_groups: list[Row] = []
        with self.charger.measure() as meter:
            if ordered:
                self.charger.charge(CostKind.DEDUPE_TUPLE, len(ordered))
            for row in ordered:
                if row in self.occupancy:
                    self.occupancy[row] += 1
                else:
                    self.occupancy[row] = 1
                    new_groups.append(row)
            if new_groups:
                self.charger.charge(
                    CostKind.PAGE_WRITE, -(-len(new_groups) // self._bf())
                )
        pages = -(-len(new_groups) // self._bf()) if new_groups else 0
        self.cost_model.observe(
            step_names.PROJECT_DEDUPE,
            [len(ordered), pages, 1.0],
            meter.elapsed,
        )

        self.spool.release(temp)  # folded into the occupancy table
        self.observed_child_tuples += len(projected)
        self.stage = stage
        self._record(len(new_groups))
        return new_groups

    def predict(self, ctx: PredictContext) -> StagePrediction:
        cached = ctx.cached(self)
        if cached is not None:
            return cached
        child = self.child.predict(ctx)
        n = child.new_out_tuples
        new_points = self._new_points_predicted(ctx)
        sel = ctx.sel_provider(
            self.tracker, max(int(new_points), 1), self.space_points()
        )
        out = sel * new_points
        pages = out / self._bf()
        seconds = (
            self.cost_model.predict(step_names.PROJECT_WRITE, [n, 1.0])
            + self.cost_model.predict(
                step_names.PROJECT_SORT, [_nlogn(n), n, 1.0]
            )
            + self.cost_model.predict(step_names.PROJECT_DEDUPE, [n, pages, 1.0])
        )
        return ctx.store(self, StagePrediction(seconds, out, new_points))

    def snapshot(self) -> dict:
        token = super().snapshot()
        # The occupancy table is mutated in place per stage, so it must be
        # copied. Snapshots only happen under an active fault injector, so
        # unfaulted runs never pay this.
        token["occupancy"] = dict(self.occupancy)
        token["observed_child_tuples"] = self.observed_child_tuples
        return token

    def restore(self, token: dict) -> None:
        super().restore(token)
        self.occupancy = dict(token["occupancy"])
        self.observed_child_tuples = token["observed_child_tuples"]
