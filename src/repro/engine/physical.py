"""Physical lowering — phase 3 of query planning.

:class:`PhysicalPlanBuilder` turns one logical SJIP expression (a term of
the inclusion–exclusion expansion) into a tree of staged operators over
**shared** per-relation sampling scans. It is deliberately dumb: no
rewriting happens here — the tree it receives, optimized or verbatim, is
the tree it lowers, node for node. All query *improvement* lives one phase
up in :mod:`repro.planner`; all query *execution* lives one phase down in
:mod:`repro.engine.nodes`.

One builder instance serves all terms of one :class:`~repro.engine.plan.
StagedPlan`, so every term referencing a relation shares the same
:class:`~repro.engine.nodes.StagedScan` (blocks drawn and read once per
stage regardless of how many terms consume them) and operator labels
(``select#1``, ``join#2``, …) number consecutively across terms in
construction order — exactly the behavior of the pre-refactor inline
``StagedPlan._build``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.catalog.catalog import Catalog
from repro.costmodel.model import CostModel
from repro.engine.nodes import (
    StagedIntersect,
    StagedJoin,
    StagedNode,
    StagedProject,
    StagedScan,
    StagedSelect,
)
from repro.errors import ExpressionError
from repro.relational.expression import (
    Expression,
    Intersect,
    Join,
    Project,
    RelationRef,
    Select,
)
from repro.sampling.sampler import BlockSampler, shard_seed
from repro.storage.spool import Spool
from repro.timekeeping.charger import CostCharger

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.storage.bufferpool import BufferPool
    from repro.synopses.binder import SynopsisBinder

DEFAULT_INITIAL_SELECTIVITY = {
    "select": 1.0,
    "join": 1.0,
    "project": 1.0,
    # Intersect defaults to 1/max(|r1|,|r2|) computed per node (Figure 3.3);
    # an entry here overrides that.
}


class PhysicalPlanBuilder:
    """Lowers logical SJIP trees to staged operator trees (shared scans)."""

    def __init__(
        self,
        catalog: Catalog,
        charger: CostCharger,
        cost_model: CostModel,
        rng: np.random.Generator,
        block_size: int,
        full_fulfillment: bool,
        vectorized: bool,
        injector: "FaultInjector | None" = None,
        initial_selectivities: dict[str, float] | None = None,
        hint_provider=None,
        pin_selectivities: bool = False,
        binder: "SynopsisBinder | None" = None,
        bufferpool: "BufferPool | None" = None,
        partitions: tuple[bool, int] | None = None,
    ) -> None:
        self.catalog = catalog
        self.charger = charger
        self.cost_model = cost_model
        self.rng = rng
        self.block_size = block_size
        self.full_fulfillment = full_fulfillment
        self.vectorized = vectorized
        self.injector = injector
        self.bufferpool = bufferpool
        self.partitions = partitions if partitions is not None else (False, 1)
        self._hint_provider = hint_provider
        self._pin_selectivities = pin_selectivities
        self._binder = binder
        self._initial = dict(DEFAULT_INITIAL_SELECTIVITY)
        if initial_selectivities:
            self._initial.update(initial_selectivities)
        self.spool = Spool(block_size)
        self._scans: dict[str, StagedScan] = {}
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Shared state exposed to the plan
    # ------------------------------------------------------------------
    @property
    def scans(self) -> list[StagedScan]:
        """Shared per-relation scans, in first-reference order."""
        return list(self._scans.values())

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _common_kwargs(self) -> dict:
        return dict(
            charger=self.charger,
            cost_model=self.cost_model,
            block_size=self.block_size,
            full_fulfillment=self.full_fulfillment,
            spool=self.spool,
            vectorized=self.vectorized,
            injector=self.injector,
        )

    def _next_label(self, kind: str) -> str:
        self._label_counter += 1
        return f"{kind}#{self._label_counter}"

    def _initial_for(self, expr: Expression, default: float) -> tuple[float, bool]:
        """Initial selectivity for an operator node and whether it came
        from a prestored hint (Figure 3.3's maximum otherwise)."""
        if self._hint_provider is not None:
            hinted = self._hint_provider(expr)
            if hinted is not None:
                return min(max(hinted, 1e-12), 1.0), True
        return default, False

    def _finish_node(
        self, node: StagedNode, hinted: bool, expr: Expression
    ) -> StagedNode:
        if hinted and self._pin_selectivities and node.tracker is not None:
            node.tracker.pinned = True
        # Warm-start from the synopsis catalog last: pinning wins (prestored
        # mode never borrows), and the prior only adds pseudo-counts — it
        # never changes the node's configured initial selectivity, so the
        # explicit/hinted/default precedence above is untouched.
        if self._binder is not None and node.tracker is not None:
            self._binder.bind(expr, node.tracker)
        return node

    def build(self, expr: Expression) -> StagedNode:
        """Lower one SJIP term verbatim to a staged operator tree."""
        if isinstance(expr, RelationRef):
            if expr.name not in self._scans:
                relation = self.catalog.get(expr.name)
                shards = getattr(relation, "shards", ())
                # Per-shard seeds derive from the session RNG's seed
                # material without consuming the stream: the sampler's
                # global permutation below draws identically with
                # partitions on or off (invariant 10).
                seeds = (
                    tuple(shard_seed(self.rng, i) for i in range(len(shards)))
                    if self.partitions[0] and shards
                    else ()
                )
                self._scans[expr.name] = StagedScan(
                    relation,
                    BlockSampler(relation, self.rng),
                    bufferpool=self.bufferpool,
                    partitions=self.partitions,
                    shard_seeds=seeds,
                    **self._common_kwargs(),
                )
            return self._scans[expr.name]
        if isinstance(expr, Select):
            child = self.build(expr.child)
            initial, hinted = self._initial_for(expr, self._initial["select"])
            return self._finish_node(
                StagedSelect(
                    child,
                    expr.predicate,
                    label=self._next_label("select"),
                    initial_selectivity=initial,
                    **self._common_kwargs(),
                ),
                hinted,
                expr,
            )
        if isinstance(expr, Project):
            child = self.build(expr.child)
            initial, hinted = self._initial_for(expr, self._initial["project"])
            return self._finish_node(
                StagedProject(
                    child,
                    expr.attrs,
                    label=self._next_label("project"),
                    initial_selectivity=initial,
                    **self._common_kwargs(),
                ),
                hinted,
                expr,
            )
        if isinstance(expr, Join):
            left = self.build(expr.left)
            right = self.build(expr.right)
            initial, hinted = self._initial_for(expr, self._initial["join"])
            return self._finish_node(
                StagedJoin(
                    left,
                    right,
                    expr.on,
                    label=self._next_label("join"),
                    initial_selectivity=initial,
                    **self._common_kwargs(),
                ),
                hinted,
                expr,
            )
        if isinstance(expr, Intersect):
            left = self.build(expr.left)
            right = self.build(expr.right)
            default = self._initial.get(
                "intersect", 1.0 / max(left.space_points(), right.space_points())
            )
            initial, hinted = self._initial_for(expr, default)
            return self._finish_node(
                StagedIntersect(
                    left,
                    right,
                    label=self._next_label("intersect"),
                    initial_selectivity=initial,
                    **self._common_kwargs(),
                ),
                hinted,
                expr,
            )
        raise ExpressionError(
            f"non-SJIP node {type(expr).__name__} survived inclusion–exclusion"
        )
