"""Server observability — counters and histograms over the event stream.

:class:`ServerMetrics` is a :class:`~repro.observability.TraceSink`: it
consumes the serving layer's typed events (:mod:`repro.server.events`) and
keeps the numbers an operator of a time-constrained database watches —
admit/reject/degrade/shed counts, the deadline hit-ratio among admitted
requests, queue-wait totals, and histograms of lateness and of the achieved
confidence-interval half-widths. Because it is just a sink, it composes
with the rest of the tracing layer: tee it next to a
:class:`~repro.observability.JsonlSink` and the same stream both updates
the live counters and lands on disk for replay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.observability.trace import TraceEvent
from repro.server.events import (
    AdmissionDecided,
    QueryPreempted,
    QueryResumed,
    RequestArrived,
    RequestCompleted,
)
from repro.server.request import Outcome
from repro.storage.events import BufferEvicted, BufferHit, BufferInvalidated

LATENESS_EDGES = (0.001, 0.01, 0.1, 1.0, 10.0)
"""Default lateness histogram bucket edges (seconds past the deadline)."""

CI_EDGES = (0.05, 0.1, 0.25, 0.5, 1.0)
"""Default bucket edges for achieved relative 95% CI half-widths."""


@dataclass
class BucketHistogram:
    """A fixed-edge histogram: ``len(edges) + 1`` buckets, last = overflow."""

    edges: Sequence[float]
    counts: list[int] = field(default_factory=list)
    observed: int = 0
    total: float = 0.0

    def __post_init__(self) -> None:
        if list(self.edges) != sorted(self.edges):
            raise ValueError(f"histogram edges must ascend: {self.edges}")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        self.observed += 1
        if math.isfinite(value):
            self.total += value
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.observed if self.observed else 0.0

    def as_dict(self) -> dict:
        labels = [f"<={e:g}" for e in self.edges] + [
            f">{self.edges[-1]:g}" if self.edges else "all"
        ]
        return {
            "buckets": dict(zip(labels, self.counts)),
            "observed": self.observed,
            "mean": self.mean,
        }


class ServerMetrics:
    """Live counters over the server's event stream (a ``TraceSink``).

    Unknown event kinds (e.g. per-query ``stage_end`` events when query
    tracing is threaded through the same sink) are ignored, so one sink can
    watch the whole tee'd stream.
    """

    def __init__(self) -> None:
        self.arrived = 0
        self.admitted = 0
        self.rejected_at_admission = 0
        self.degraded_at_admission = 0
        self.outcomes: dict[Outcome, int] = {o: 0 for o in Outcome}
        self.queue_wait_total = 0.0
        self.lateness = BucketHistogram(LATENESS_EDGES)
        self.achieved_ci = BucketHistogram(CI_EDGES)
        # Buffer-pool traffic (events arrive when the server points the
        # process-wide pool's sink at its own stream — see QueryServer).
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.buffer_evictions = 0
        self.buffer_invalidations = 0
        # Stage-boundary EDF preemption (REPRO_PREEMPT; zero when off).
        self.preempted = 0
        self.resumed = 0

    # ------------------------------------------------------------------
    # TraceSink
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        if isinstance(event, RequestArrived):
            self.arrived += 1
        elif isinstance(event, AdmissionDecided):
            if event.action == "admit":
                self.admitted += 1
            elif event.action == "reject":
                self.rejected_at_admission += 1
            elif event.action == "degrade":
                self.degraded_at_admission += 1
        elif isinstance(event, BufferHit):
            self.buffer_hits += event.hits
            self.buffer_misses += event.misses
        elif isinstance(event, BufferEvicted):
            self.buffer_evictions += 1
        elif isinstance(event, BufferInvalidated):
            self.buffer_invalidations += event.entries
        elif isinstance(event, QueryPreempted):
            self.preempted += 1
        elif isinstance(event, QueryResumed):
            self.resumed += 1
        elif isinstance(event, RequestCompleted):
            self.outcomes[Outcome(event.outcome)] += 1
            self.queue_wait_total += event.queue_wait
            if event.outcome in (Outcome.ANSWERED.value, Outcome.MISSED.value):
                self.lateness.observe(event.lateness)
            if event.relative_ci_halfwidth is not None:
                self.achieved_ci.observe(event.relative_ci_halfwidth)

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(self.outcomes.values())

    def count(self, outcome: Outcome) -> int:
        return self.outcomes[outcome]

    @property
    def hit_ratio_admitted(self) -> float | None:
        """ANSWERED / admitted — the benchmark's headline number.

        Shed and missed requests count against it (they were admitted and
        failed to produce an in-time estimate); ``None`` before any request
        was admitted.
        """
        if self.admitted == 0:
            return None
        return self.outcomes[Outcome.ANSWERED] / self.admitted

    @property
    def answered_ratio(self) -> float | None:
        """Requests that got *any* usable answer (sampled or degraded)."""
        if self.completed == 0:
            return None
        usable = (
            self.outcomes[Outcome.ANSWERED] + self.outcomes[Outcome.DEGRADED]
        )
        return usable / self.completed

    @property
    def mean_queue_wait(self) -> float:
        return self.queue_wait_total / self.completed if self.completed else 0.0

    @property
    def buffer_hit_ratio(self) -> float | None:
        """Pooled block reads served from cache; ``None`` before any read."""
        reads = self.buffer_hits + self.buffer_misses
        if reads == 0:
            return None
        return self.buffer_hits / reads

    def as_dict(self) -> dict:
        return {
            "arrived": self.arrived,
            "admitted": self.admitted,
            "rejected_at_admission": self.rejected_at_admission,
            "degraded_at_admission": self.degraded_at_admission,
            "outcomes": {o.value: n for o, n in self.outcomes.items()},
            "hit_ratio_admitted": self.hit_ratio_admitted,
            "answered_ratio": self.answered_ratio,
            "mean_queue_wait": self.mean_queue_wait,
            "lateness": self.lateness.as_dict(),
            "achieved_ci": self.achieved_ci.as_dict(),
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "buffer_evictions": self.buffer_evictions,
            "buffer_invalidations": self.buffer_invalidations,
            "buffer_hit_ratio": self.buffer_hit_ratio,
            "preempted": self.preempted,
            "resumed": self.resumed,
        }

    def render(self) -> str:
        """A small operator-facing text panel."""
        hit = self.hit_ratio_admitted
        usable = self.answered_ratio
        lines = [
            "server metrics:",
            f"  arrived {self.arrived}  admitted {self.admitted}  "
            f"rejected {self.rejected_at_admission}  "
            f"degraded {self.degraded_at_admission}",
            "  outcomes: "
            + "  ".join(
                f"{o.value} {n}" for o, n in self.outcomes.items() if n
            ),
            "  deadline hit-ratio (admitted): "
            + (f"{hit:.3f}" if hit is not None else "n/a"),
            "  answered ratio (all): "
            + (f"{usable:.3f}" if usable is not None else "n/a"),
            f"  mean queue wait: {self.mean_queue_wait:.4f}s",
            f"  mean lateness: {self.lateness.mean:.4f}s "
            f"over {self.lateness.observed} runs",
            f"  mean achieved CI half-width: {self.achieved_ci.mean:.3f} "
            f"over {self.achieved_ci.observed} answers",
        ]
        if self.preempted or self.resumed:
            lines.append(
                f"  preemption: {self.preempted} suspended, "
                f"{self.resumed} resumed"
            )
        ratio = self.buffer_hit_ratio
        if ratio is not None:
            lines.append(
                f"  buffer pool: {self.buffer_hits} hits / "
                f"{self.buffer_misses} misses (ratio {ratio:.3f}), "
                f"{self.buffer_evictions} evicted, "
                f"{self.buffer_invalidations} invalidated"
            )
        return "\n".join(lines)
