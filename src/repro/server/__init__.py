"""repro.server — deadline-aware admission control and scheduling.

The serving layer over :class:`~repro.core.database.Database`: many
clients, one machine, every request carrying its own time quota. See
:mod:`repro.server.scheduler` for the model and ``docs/architecture.md``
("Serving layer") for the request lifecycle.

Quickstart::

    from repro.server import QueryServer, QueryRequest, open_loop_requests
    from repro.server.workload import demo_database

    db = demo_database(seed=7)
    server = QueryServer(db)
    outcomes = server.process(open_loop_requests(
        count=50, quota=2.0, overload=2.0, seed=7))
    print(server.metrics.render())

Or from a shell: ``python -m repro.server --demo``.
"""

from repro.server.admission import (
    AdmissionAction,
    AdmissionDecision,
    AdmissionPolicy,
    AdmitAll,
    DegradeInfeasible,
    FeasibilityReport,
    RejectInfeasible,
    minimum_stage_cost,
)
from repro.server.degrade import degraded_estimate, synopsis_degraded_estimate
from repro.server.events import (
    AdmissionDecided,
    QueryPreempted,
    QueryResumed,
    RequestArrived,
    RequestCompleted,
    RequestRetried,
    RequestStarted,
)
from repro.server.metrics import BucketHistogram, ServerMetrics
from repro.server.preempt import PreemptDecision, should_preempt
from repro.server.request import Outcome, QueryRequest, RequestOutcome
from repro.server.scheduler import QueryServer
from repro.server.workload import (
    ClosedLoopClient,
    demo_database,
    open_loop_requests,
    run_closed_loop,
    selection_mix,
)

__all__ = [
    "AdmissionAction",
    "AdmissionDecided",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmitAll",
    "BucketHistogram",
    "ClosedLoopClient",
    "DegradeInfeasible",
    "FeasibilityReport",
    "Outcome",
    "PreemptDecision",
    "QueryPreempted",
    "QueryRequest",
    "QueryResumed",
    "QueryServer",
    "RejectInfeasible",
    "RequestArrived",
    "RequestCompleted",
    "RequestOutcome",
    "RequestRetried",
    "RequestStarted",
    "ServerMetrics",
    "degraded_estimate",
    "demo_database",
    "synopsis_degraded_estimate",
    "minimum_stage_cost",
    "open_loop_requests",
    "run_closed_loop",
    "selection_mix",
    "should_preempt",
]
