"""Serving-layer demo CLI.

Run an overloaded request stream through the deadline-aware server and
watch admission control work::

    python -m repro.server --demo                  # admission on, 2x overload
    python -m repro.server --demo --admission off  # the uncontrolled baseline
    python -m repro.server --demo --policy degrade # degrade instead of reject
    python -m repro.server --demo --requests 100 --overload 3 --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.server.admission import (
    AdmitAll,
    DegradeInfeasible,
    RejectInfeasible,
)
from repro.server.scheduler import QueryServer
from repro.server.workload import (
    demo_database,
    open_loop_requests,
    selection_mix,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Deadline-aware admission control & scheduling demo.",
    )
    parser.add_argument(
        "--demo", action="store_true", help="run the overload demo"
    )
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument(
        "--overload",
        type=float,
        default=2.0,
        help="arrival rate as a multiple of service capacity",
    )
    parser.add_argument("--quota", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tuples", type=int, default=2_000)
    parser.add_argument(
        "--admission",
        choices=("on", "off"),
        default="on",
        help="'off' runs the AdmitAll baseline (no control, no shedding)",
    )
    parser.add_argument(
        "--policy",
        choices=("reject", "degrade"),
        default="degrade",
        help="what to do with infeasible requests when admission is on",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print one line per request"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the metrics as JSON"
    )
    args = parser.parse_args(argv)
    if not args.demo:
        parser.error("nothing to do; pass --demo")

    if args.admission == "off":
        policy = AdmitAll()
    elif args.policy == "reject":
        policy = RejectInfeasible()
    else:
        policy = DegradeInfeasible()

    db = demo_database(seed=args.seed, tuples=args.tuples)
    server = QueryServer(db, policy=policy)
    requests = open_loop_requests(
        count=args.requests,
        quota=args.quota,
        overload=args.overload,
        make_query=selection_mix(args.tuples),
        tuples=args.tuples,
        seed=args.seed,
    )
    print(
        f"serving {len(requests)} requests, quota {args.quota:g}s each, "
        f"{args.overload:g}x overload, policy {policy.describe()}"
    )
    outcomes = server.process(requests)
    if args.verbose:
        for outcome in outcomes:
            print(" ", outcome.summary())
    print()
    print(server.metrics.render())
    sim_span = server.clock.now()
    throughput = (
        sum(1 for o in outcomes if o.answered) / sim_span if sim_span else 0.0
    )
    print(
        f"  simulated span: {sim_span:.1f}s, "
        f"useful throughput {throughput:.3f} answers/s"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(server.metrics.as_dict(), handle, indent=2)
        print(f"  metrics written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
