"""Slack-aware preemption decisions for the query server.

Run-to-completion EDF has one failure mode the paper's serving story
cannot tolerate: a long-budget query holding the single server while a
tight-deadline request expires in the queue. The fix is classic real-time
scheduling — preempt — applied at the only points where a sampled
aggregate can stop without bias: stage boundaries, where the executor
already snapshots plan state for fault salvage.

:func:`should_preempt` is the whole policy. It is deliberately pure and
duck-typed (tickets only need ``priority`` / ``deadline`` / ``min_cost`` /
``planned_spend``), so it can be unit-tested without a server and the
scheduler can evolve its ticket type freely. The rule:

* Only a **strictly earlier** EDF key — ``(priority, deadline)`` — may
  preempt. Ties never preempt, so two equal-deadline requests cannot
  ping-pong, and each preemption strictly decreases the running key,
  bounding preemptions per request by the number of distinct earlier
  arrivals.
* The runner must have **slack**: project when the earlier work would
  hand the server back (accumulating planned spends in dispatch order,
  the same arithmetic as overload shedding) and require the runner's
  residual budget at that instant to still cover its minimum useful
  stage. A runner without slack keeps the server — suspending it would
  trade a guaranteed answer for nothing, since its banked estimate would
  be all it ever gets.

Suspension itself is free and deterministic: it charges no simulated
time, draws no randomness, and keeps the original absolute deadline, so a
suspended-then-resumed run is bit-identical to an uninterrupted one
(invariant 11 in ``docs/architecture.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PreemptDecision:
    """Why the running ticket is being suspended, for the trace stream."""

    challenger_id: str
    """Request id of the earliest-deadline waiter that triggered this."""

    challenger_deadline: float
    """That waiter's absolute deadline."""

    projected_resume: float
    """Clock time at which the earlier work is projected to hand back."""

    residual_budget: float
    """The runner's budget at ``projected_resume`` (>= its min stage)."""


def should_preempt(
    running, queue: Sequence, now: float
) -> PreemptDecision | None:
    """Decide whether ``running`` should yield to the queue at ``now``.

    ``running`` and the queue entries are ticket-like: ``priority`` /
    ``deadline`` / ``min_cost`` attributes plus ``planned_spend(now)``.
    Returns a :class:`PreemptDecision` when a strictly-earlier-deadline
    ticket is waiting *and* the runner keeps enough slack to finish a
    useful stage after the earlier work drains; ``None`` otherwise.
    """
    key = (running.priority, running.deadline)
    earlier = sorted(
        t for t in queue if (t.priority, t.deadline) < key
    )
    if not earlier:
        return None
    projected = now
    for ticket in earlier:
        projected += ticket.planned_spend(projected)
    residual = running.deadline - projected
    if residual < running.min_cost:
        return None
    challenger = earlier[0]
    return PreemptDecision(
        challenger_id=challenger.request.request_id,
        challenger_deadline=challenger.deadline,
        projected_resume=projected,
        residual_budget=residual,
    )
