"""The deadline-aware query server: admit → queue → run → outcome.

:class:`QueryServer` multiplexes many clients' deadline-bearing aggregate
queries over one :class:`~repro.core.database.Database` — the serving layer
the paper motivates in Section 1: once each query's execution time is
pinned to its quota, transaction completion times become predictable and a
scheduler can enforce deadlines across a whole request stream.

The model is a single-server queue on the database's simulated clock:

* **Arrival.** Each request's absolute deadline is fixed at
  ``arrival + quota``. The admission controller prices the cheapest useful
  stage with the server's *shared, continuously calibrated* cost model
  (:func:`~repro.server.admission.minimum_stage_cost`) and projects the
  queue wait in front of the request; the pluggable policy then admits,
  degrades (zero-sampling prestored answer), or rejects.
* **Queueing.** The run queue is earliest-deadline-first within priority
  tiers. Queue wait is charged against each request's budget simply by the
  clock moving: budgets are measured from the absolute deadline, so a
  request that waits has less time to sample — exactly the paper's
  time-quota semantics applied at the queue.
* **Overload shedding.** Before each dispatch the queue is walked in EDF
  order accumulating planned spend; requests whose projected budget cannot
  cover their minimum stage are shed — necessarily the latest-deadline
  work, which under EDF overload is the right work to drop.
* **Execution.** The winner runs in a fresh
  :class:`~repro.core.session.QuerySession` under ``HardDeadline`` with
  live mid-stage interrupt semantics (``measure_overspend=False``), on the
  shared clock and shared cost model. The answer is whatever the last
  completed stage estimated.
* **Preemption** (``REPRO_PREEMPT``, default off). With the switch on,
  the runner is checkpointed at stage boundaries: arrivals the run has
  clocked past are admitted mid-flight, and when a strictly-earlier-
  deadline ticket is waiting while the runner still has slack
  (:func:`~repro.server.preempt.should_preempt`), the run suspends —
  plan snapshot, estimator state, and consumed budget park on its ticket
  — and is resumed bit-identically when it wins the queue again. Off is
  byte-identical to run-to-completion serving (invariant 11).

The server *never* raises to the submitting client and never drops a
request silently: every request ends in exactly one typed
:class:`~repro.server.request.RequestOutcome`, and every decision is
emitted as a trace event (:mod:`repro.server.events`).
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ContextManager, Iterable, Sequence

from repro.core.database import Database
from repro.core.switches import resolve_switch
from repro.costmodel.model import CostModel
from repro.errors import StorageError
from repro.observability.trace import NULL_SINK, TeeSink, TraceSink
from repro.server.admission import (
    AdmissionAction,
    AdmissionPolicy,
    FeasibilityReport,
    RejectInfeasible,
    minimum_stage_cost,
)
from repro.server.degrade import degraded_estimate, synopsis_degraded_estimate
from repro.server.events import (
    AdmissionDecided,
    QueryPreempted,
    QueryResumed,
    RequestArrived,
    RequestCompleted,
    RequestRetried,
    RequestStarted,
)
from repro.server.metrics import ServerMetrics
from repro.server.preempt import PreemptDecision, should_preempt
from repro.server.request import Outcome, QueryRequest, RequestOutcome
from repro.synopses.catalog import relation_fingerprint
from repro.synopses.events import SynopsisRefreshed
from repro.timecontrol.stopping import HardDeadline
from repro.timecontrol.strategies import (
    OneAtATimeInterval,
    TimeControlStrategy,
)
from repro.timekeeping.clock import SimulatedClock

if TYPE_CHECKING:
    from repro.core.session import QuerySession

OnComplete = Callable[[RequestOutcome], "QueryRequest | None"]


@dataclass(order=True)
class _Ticket:
    """One admitted request waiting in the run queue (heap-ordered).

    Only the EDF key — ``(priority, deadline, seq)`` — participates in
    ordering. The payload fields are ``compare=False``: a key tie (same
    priority and deadline, e.g. a preempted ticket re-queued next to an
    equal-deadline arrival) must break on ``seq``, not fall through to
    comparing ``QueryRequest`` payloads and raising ``TypeError``.
    """

    priority: int
    deadline: float
    seq: int
    request: QueryRequest = field(default=None, compare=False)  # type: ignore[assignment]
    arrival: float = field(default=0.0, compare=False)
    min_cost: float = field(default=0.0, compare=False)
    # Suspension state — populated only while parked by a preemption
    # (REPRO_PREEMPT): the checkpointed session plus the accounting
    # banked at first dispatch, so the resumed run reports the same
    # queue_wait/started_at/budget an uninterrupted run would have.
    session: "QuerySession | None" = field(default=None, compare=False)
    attempt: int = field(default=0, compare=False)
    preemptions: int = field(default=0, compare=False)
    queue_wait: float = field(default=0.0, compare=False)
    started_at: float = field(default=0.0, compare=False)
    budget: float = field(default=0.0, compare=False)
    decision: "PreemptDecision | None" = field(default=None, compare=False)

    def planned_spend(self, now: float) -> float:
        """How long this ticket will occupy the server once dispatched.

        A time-constrained query consumes its remaining budget (that is the
        point of the paper), so the planned spend is the time between now
        and its deadline, capped at the offered quota.
        """
        return min(max(self.deadline - now, 0.0), self.request.quota)


class QueryServer:
    """Serves a stream of time-constrained queries over one database.

    Parameters
    ----------
    database:
        The database all requests run against. Must use simulated clocks
        (the server owns the timeline).
    policy:
        Admission policy (default :class:`RejectInfeasible`). Use
        :class:`~repro.server.admission.DegradeInfeasible` after
        :meth:`Database.analyze` for graceful degradation, or
        :class:`~repro.server.admission.AdmitAll` to switch admission
        control off (the benchmark baseline).
    strategy_factory:
        Builds the per-session time-control strategy (default
        One-at-a-Time-Interval with the prototype's ``d_β = 24``).
    sink:
        Optional extra trace sink tee'd next to the built-in
        :class:`~repro.server.metrics.ServerMetrics`.
    trace_queries:
        Thread the server sink into each session too, interleaving
        per-stage query events with scheduling events on one stream.
    max_fault_retries:
        How many times a dispatched request defeated by transient
        (injected/storage) faults is re-executed within its own remaining
        budget (default 1; 0 disables retries). Retries that still fail
        fall back to the zero-sampling degraded answer when prestored
        statistics cover the query.
    retry_backoff:
        Simulated seconds charged to the request's own budget before each
        retry, scaled by the attempt number and capped at the remaining
        budget.
    shard_parallelism:
        Effective shard-read overlap admission pricing assumes for
        partitioned relations (default 1 — no discount). A server whose
        sessions run with ``partitions=W`` workers sets this to ``W`` so
        the feasibility floor reflects the shorter wall-clock slot a
        sharded scan actually occupies; charged simulated costs are
        unaffected (invariant 10).
    preempt:
        ``None`` → honour ``REPRO_PREEMPT`` (default off). When on,
        dispatched queries may be suspended at stage boundaries in favour
        of strictly-earlier-deadline arrivals and resumed bit-identically
        later (see :mod:`repro.server.preempt`); when off the server is
        byte-identical to the run-to-completion scheduler.
    """

    def __init__(
        self,
        database: Database,
        policy: AdmissionPolicy | None = None,
        strategy_factory: Callable[[], TimeControlStrategy] | None = None,
        sink: TraceSink | None = None,
        share_cost_model: bool = True,
        trace_queries: bool = False,
        session_kwargs: dict | None = None,
        max_fault_retries: int = 1,
        retry_backoff: float = 0.05,
        synopses: bool | None = None,
        bufferpool: bool | None = None,
        shard_parallelism: float = 1.0,
        preempt: bool | None = None,
    ) -> None:
        if database.clock_kind != "simulated":
            raise ValueError(
                "QueryServer schedules on the simulated clock; "
                "construct the Database with clock='simulated'"
            )
        self.database = database
        self.policy = policy if policy is not None else RejectInfeasible()
        self.strategy_factory = strategy_factory or (
            lambda: OneAtATimeInterval(d_beta=24.0)
        )
        self.clock = SimulatedClock()
        self.metrics = ServerMetrics()
        self.sink: TraceSink = (
            TeeSink([self.metrics, sink]) if sink is not None else self.metrics
        )
        self._cost_model: CostModel | None = (
            database.default_cost_model() if share_cost_model else None
        )
        self.trace_queries = trace_queries
        self.session_kwargs = dict(session_kwargs or {})
        if max_fault_retries < 0:
            raise ValueError(f"max_fault_retries cannot be negative: {max_fault_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff cannot be negative: {retry_backoff}")
        self.max_fault_retries = max_fault_retries
        self.retry_backoff = retry_backoff
        if shard_parallelism < 1.0:
            raise ValueError(
                f"shard_parallelism must be >= 1: {shard_parallelism}"
            )
        self.shard_parallelism = shard_parallelism
        # None → honour REPRO_SYNOPSES (default off). When on, every
        # session the server opens reads/feeds the database's synopsis
        # catalog, degrade answers prefer recorded synopses, and the
        # catalog's invalidation events join the server's trace stream.
        self.synopses = resolve_switch(synopses, "REPRO_SYNOPSES", default=False)
        if self.synopses:
            self.database.synopses.sink = self.sink
        # None → honour REPRO_BUFFERPOOL (default on). When on, every
        # session the server opens shares the process-wide buffer pool —
        # concurrent requests sampling the same relation hit each other's
        # decoded blocks — and, while *this* server is processing, the
        # pool's hit/miss/eviction events are routed onto the server's
        # metrics stream (never the per-session traces, which stay
        # bit-identical pool on/off). Routing is scoped per call rather
        # than a permanent sink reassignment: the pool outlives any one
        # server, and a later server must not inherit a torn-down sink.
        self.bufferpool = resolve_switch(
            bufferpool, "REPRO_BUFFERPOOL", default=True
        )
        from repro.storage.bufferpool import BufferPool, default_pool

        pool_setting = self.session_kwargs.get("bufferpool", self.bufferpool)
        self._pool: BufferPool | None
        if isinstance(pool_setting, BufferPool):
            self._pool = pool_setting
        elif resolve_switch(pool_setting, "REPRO_BUFFERPOOL", default=True):
            self._pool = default_pool()
        else:
            self._pool = None
        self.preempt = resolve_switch(preempt, "REPRO_PREEMPT", default=False)
        self._seq = itertools.count()
        self._refresh_counter = itertools.count(1)
        self.outcomes: list[RequestOutcome] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def process(
        self,
        requests: Iterable[QueryRequest],
        on_complete: OnComplete | None = None,
    ) -> list[RequestOutcome]:
        """Serve ``requests`` (sorted by arrival) until the system drains.

        ``on_complete`` implements closed-loop clients: called with each
        terminal outcome, it may return a follow-up request (arrival no
        earlier than the current clock) to feed back into the stream.
        Returns this call's outcomes in decision order; they are also
        appended to :attr:`outcomes`.
        """
        arrivals: list[QueryRequest] = sorted(
            requests, key=lambda r: (r.arrival, r.priority)
        )
        queue: list[_Ticket] = []
        produced: list[RequestOutcome] = []

        def finish(outcome: RequestOutcome) -> None:
            produced.append(outcome)
            self.outcomes.append(outcome)
            if on_complete is not None:
                follow = on_complete(outcome)
                if follow is not None:
                    self._insert_arrival(arrivals, follow)

        with self._pool_routing():
            while arrivals or queue:
                if not queue and arrivals:
                    # Idle server: sleep until the next arrival.
                    self.clock.advance_to(arrivals[0].arrival)
                now = self.clock.now()
                while arrivals and arrivals[0].arrival <= now:
                    self._on_arrival(arrivals.pop(0), queue, finish)
                if not queue:
                    continue
                for shed in self._shed_overload(queue):
                    finish(shed)
                if not queue:
                    continue
                ticket = heapq.heappop(queue)
                # None means the runner was preempted and re-queued —
                # its terminal outcome comes from a later dispatch.
                outcome = self._dispatch(ticket, queue, arrivals, finish)
                if outcome is not None:
                    finish(outcome)
        return produced

    def _pool_routing(self) -> ContextManager:
        """Scope the shared pool's events onto this server's sink.

        Buffer hits raised while this server runs requests land on *its*
        :class:`~repro.server.metrics.ServerMetrics`; outside the scope
        the pool falls back to its own sink, so two servers over one
        process-wide pool never see each other's counters (and a closed
        sink from a torn-down server can never poison a later one)."""
        if self._pool is None:
            return nullcontext()
        return self._pool.route_events(self.sink)

    def serve(self, request: QueryRequest) -> RequestOutcome:
        """Serve one request immediately (arrival = now); returns its outcome."""
        if request.arrival < self.clock.now():
            request = QueryRequest(
                expr=request.expr,
                quota=request.quota,
                client_id=request.client_id,
                aggregate=request.aggregate,
                priority=request.priority,
                arrival=self.clock.now(),
                seed=request.seed,
                request_id=request.request_id,
            )
        return self.process([request])[0]

    # ------------------------------------------------------------------
    # Arrival and admission
    # ------------------------------------------------------------------
    @staticmethod
    def _insert_arrival(
        arrivals: list[QueryRequest], request: QueryRequest
    ) -> None:
        index = len(arrivals)
        for i, pending in enumerate(arrivals):
            if (pending.arrival, pending.priority) > (
                request.arrival,
                request.priority,
            ):
                index = i
                break
        arrivals.insert(index, request)

    def _session_overrides(self) -> dict:
        """Per-session keyword overrides: the synopses and bufferpool
        flags, then the caller's ``session_kwargs`` (which win on
        conflict)."""
        overrides = {"synopses": self.synopses, "bufferpool": self.bufferpool}
        overrides.update(self.session_kwargs)
        return overrides

    def _minimum_cost(self, request: QueryRequest) -> float:
        """Price the cheapest useful stage with the calibrated cost model.

        The probe session is never run: construction charges nothing, so
        pricing is free on the server timeline. A fixed probe seed keeps
        the database's master seed sequence untouched (probe RNG streams
        are never drawn from). With synopses on, lowering the probe
        warm-starts its trackers from the catalog, so the price reflects
        the posterior selectivities the run would actually start from.
        """
        probe = self.database.open_session(
            request.expr,
            quota=request.quota,
            aggregate=request.aggregate,
            cost_model=self._cost_model,
            seed=0,
            clock=self.clock,
            **self._session_overrides(),
        )
        return minimum_stage_cost(
            probe, shard_parallelism=self.shard_parallelism
        )

    def _on_arrival(
        self,
        request: QueryRequest,
        queue: list[_Ticket],
        finish: Callable[[RequestOutcome], None],
        running: _Ticket | None = None,
    ) -> None:
        now = self.clock.now()
        deadline = request.deadline
        self.sink.emit(
            RequestArrived(
                request_id=request.request_id,
                client_id=request.client_id,
                quota=request.quota,
                deadline=deadline,
                priority=request.priority,
                clock=now,
            )
        )
        try:
            min_cost = self._minimum_cost(request)
        except Exception as exc:
            # A query the engine cannot even plan gets a typed rejection.
            self._decide_event(request, "reject", f"unplannable: {exc}", 0, 0, 0)
            finish(
                self._finish_unrun(
                    request,
                    Outcome.REJECTED,
                    f"query cannot be planned: {exc}",
                    queue_wait=0.0,
                )
            )
            return
        projected_wait = self._projected_wait(
            request, deadline, queue, now, running=running
        )
        feasibility = FeasibilityReport(
            min_stage_cost=min_cost,
            projected_wait=projected_wait,
            budget_now=deadline - now,
        )
        decision = self.policy.decide(request, feasibility)
        self._decide_event(
            request,
            decision.action.value,
            decision.reason,
            min_cost,
            projected_wait,
            feasibility.budget_at_start,
        )
        if decision.action is AdmissionAction.ADMIT:
            heapq.heappush(
                queue,
                _Ticket(
                    priority=request.priority,
                    deadline=deadline,
                    seq=next(self._seq),
                    request=request,
                    arrival=request.arrival,
                    min_cost=min_cost,
                ),
            )
            return
        if decision.action is AdmissionAction.DEGRADE:
            finish(self._degrade(request, decision.reason))
            return
        finish(
            self._finish_unrun(
                request, Outcome.REJECTED, decision.reason, queue_wait=0.0
            )
        )

    def _projected_wait(
        self,
        request: QueryRequest,
        deadline: float,
        queue: Sequence[_Ticket],
        now: float,
        running: _Ticket | None = None,
    ) -> float:
        """Expected queue delay: planned spend of work dispatched first.

        Spends accumulate in dispatch (EDF) order — each ticket's spend
        is priced at the clock position *its* turn would start, the same
        arithmetic :meth:`_shed_overload` uses. (Summing every spend at a
        fixed ``now`` instead, as this method once did, over-prices the
        queue: a later ticket's spend is capped by a deadline that has
        drifted closer by the time its turn comes, so admission
        over-estimated wait and over-rejected under load.)

        ``running`` is the mid-flight ticket when admission happens at a
        preemption checkpoint: it occupies the server ahead of this
        arrival unless the arrival's EDF key would preempt it.
        """
        key = (request.priority, deadline)
        projected = now
        if running is not None and (running.priority, running.deadline) <= key:
            projected += running.planned_spend(projected)
        ahead = sorted(
            ticket
            for ticket in queue
            if (ticket.priority, ticket.deadline) <= key
        )
        for ticket in ahead:
            projected += ticket.planned_spend(projected)
        return projected - now

    def _decide_event(
        self,
        request: QueryRequest,
        action: str,
        reason: str,
        min_cost: float,
        projected_wait: float,
        budget_at_start: float,
    ) -> None:
        self.sink.emit(
            AdmissionDecided(
                request_id=request.request_id,
                action=action,
                reason=reason,
                min_stage_cost=min_cost,
                projected_wait=projected_wait,
                budget_at_start=budget_at_start,
                clock=self.clock.now(),
            )
        )

    # ------------------------------------------------------------------
    # Degraded answers
    # ------------------------------------------------------------------
    def _zero_sampling_estimate(self, request: QueryRequest):
        """Best instant answer: synopsis first, prestored statistics next.

        Returns ``(estimate, source)``; ``(None, None)`` when neither
        source covers the query.
        """
        if self.synopses:
            estimate = synopsis_degraded_estimate(
                self.database,
                request.expr,
                aggregate=request.aggregate,
                sink=self.sink,
            )
            if estimate is not None:
                return estimate, "synopsis"
        estimate = degraded_estimate(
            self.database, request.expr, aggregate=request.aggregate
        )
        if estimate is not None:
            return estimate, "prestored statistics"
        return None, None

    def _degrade(self, request: QueryRequest, reason: str) -> RequestOutcome:
        now = self.clock.now()
        estimate, source = self._zero_sampling_estimate(request)
        if estimate is None:
            # The policy chose degradation but no instant answer exists —
            # a coverage gap, reported as its own terminal state rather
            # than masquerading as an ordinary rejection.
            return self._finish_unrun(
                request,
                Outcome.UNCOVERED,
                reason
                + " — but neither the synopsis catalog nor prestored "
                "statistics cover this query (run it once with synopses "
                "on, or run Database.analyze())",
                queue_wait=now - request.arrival,
            )
        outcome = RequestOutcome(
            request=request,
            outcome=Outcome.DEGRADED,
            reason=f"{reason} ({source} answer)",
            admitted=False,
            queue_wait=now - request.arrival,
            started_at=now,
            finished_at=now,
            estimate=estimate,
        )
        self._completed_event(outcome)
        return outcome

    # ------------------------------------------------------------------
    # Idle-capacity synopsis refresh
    # ------------------------------------------------------------------
    def refresh_synopses(self, budget: float) -> int:
        """Re-derive invalidated answer synopses within a time budget.

        Each :class:`~repro.synopses.events.SynopsisInvalidated` mutation
        queues the dropped answers for refresh; an operator (or an idle
        loop) grants the server ``budget`` simulated seconds and the server
        re-runs queued shapes as ordinary time-constrained sessions *on its
        own clock* — refresh time is real capacity spent, charged exactly
        like served requests, never free. Maintenance work carries no
        client deadline, so refresh runs use soft-deadline semantics
        (``measure_overspend=True``): an overrunning final stage is allowed
        to finish — its time still charged — rather than killed with
        nothing to show, and the overrun estimate is deposited. Runs until
        the queue drains or the budget is spent; a run that still produced
        no estimate (faults ate it) is re-queued, not lost. Returns how
        many entries were refreshed. No-op unless the server was built
        with synopses on.
        """
        if not self.synopses or budget <= 0:
            return 0
        with self._pool_routing():
            return self._refresh_synopses(budget)

    def _refresh_synopses(self, budget: float) -> int:
        refreshed = 0
        while True:
            entry = self.database.synopses.pop_refresh()
            if entry is None:
                break
            started = self.clock.now()
            quota = budget
            session = self.database.open_session(
                entry.expr,
                quota=quota,
                strategy=self.strategy_factory(),
                stopping=HardDeadline(),
                measure_overspend=True,
                aggregate=entry.aggregate,
                cost_model=self._cost_model,
                seed=next(self._refresh_counter),
                clock=self.clock,
                **self._session_overrides(),
            )
            result = session.run()
            spent = self.clock.now() - started
            budget -= spent
            report = result.report
            estimate = report.estimate or report.estimate_with_overrun
            if estimate is None:
                # Not even the overspend estimate survived (faults ate the
                # run). Put the entry back for the next idle grant instead
                # of silently losing it, and stop burning this one.
                self.database.synopses.requeue_refresh(entry)
                break
            if report.estimate is None:
                # Only the overrun stage produced an answer, so the
                # session's binder had nothing to absorb — deposit it here.
                relations = sorted(set(entry.expr.base_relations()))
                self.database.synopses.record_answer(
                    entry.expr,
                    entry.aggregate,
                    relation_fingerprint(self.database.catalog, relations),
                    estimate,
                    blocks=sum(s.blocks_read for s in report.stages),
                )
            refreshed += 1
            self.sink.emit(
                SynopsisRefreshed(
                    key=entry.expr.structural_hash()[:16],
                    aggregate=entry.aggregate.kind,
                    quota=quota,
                    blocks=sum(s.blocks_read for s in report.stages),
                    clock=self.clock.now(),
                )
            )
            if budget <= 0:
                break
        return refreshed

    # ------------------------------------------------------------------
    # Overload shedding
    # ------------------------------------------------------------------
    def _shed_overload(self, queue: list[_Ticket]) -> list[RequestOutcome]:
        """Shed queued work that can no longer get a useful budget.

        Walk the queue in dispatch (EDF) order accumulating planned spend;
        a ticket whose projected budget at its turn is below its minimum
        stage cost would reach the server only to return nothing — it is
        shed now, freeing its spend for the rest. Later-deadline work is
        the work that fails this test first, so overload sheds from the
        tail, as a real-time scheduler should. Only policies that enforce
        feasibility shed; :class:`AdmitAll` keeps the doomed work queued.
        """
        if not self.policy.enforce_at_dispatch or not queue:
            return []
        now = self.clock.now()
        shed: list[RequestOutcome] = []
        keep: list[_Ticket] = []
        projected = now
        for ticket in sorted(queue):
            if ticket.session is not None:
                # A parked (preempted) ticket has banked stages and a
                # live estimate; shedding it would discard work the clock
                # already paid for. It keeps its slot — resume finalizes
                # it even with no budget left — and its residual spend
                # stays in the projection for the tickets behind it.
                keep.append(ticket)
                projected += ticket.planned_spend(projected)
                continue
            budget_at_turn = ticket.deadline - projected
            if budget_at_turn < ticket.min_cost:
                shed.append(
                    self._finish_unrun(
                        ticket.request,
                        Outcome.SHED,
                        "overload: projected budget "
                        f"{budget_at_turn:.3f}s at dispatch < minimum stage "
                        f"cost {ticket.min_cost:.3f}s",
                        queue_wait=now - ticket.arrival,
                        admitted=True,
                    )
                )
            else:
                keep.append(ticket)
                projected += ticket.planned_spend(projected)
        if shed:
            queue[:] = keep
            heapq.heapify(queue)
        return shed

    # ------------------------------------------------------------------
    # Dispatch and execution
    # ------------------------------------------------------------------
    def _checkpoint_hook(
        self,
        ticket: _Ticket,
        queue: list[_Ticket],
        arrivals: list[QueryRequest],
        finish: Callable[[RequestOutcome], None],
    ) -> Callable:
        """Build the stage-boundary callback for one dispatched ticket.

        The executor calls it *between* stages. First any arrivals the run
        has clocked past are admitted mid-flight (their deadlines are
        absolute, so the wait they already suffered is charged by the
        clock alone); then the slack-aware policy rules. ``True`` tells
        the executor to suspend.
        """

        def checkpoint(report) -> bool:
            now = self.clock.now()
            while arrivals and arrivals[0].arrival <= now:
                self._on_arrival(
                    arrivals.pop(0), queue, finish, running=ticket
                )
            decision = should_preempt(ticket, queue, now)
            if decision is None:
                return False
            ticket.decision = decision
            return True

        return checkpoint

    def _park(
        self,
        ticket: _Ticket,
        session: "QuerySession",
        attempt: int,
        queue: list[_Ticket],
    ) -> None:
        """Stash the suspended session on its ticket and re-queue it.

        The ticket keeps its EDF key (and original ``seq``, so key ties
        still break by admission order); the challenger, whose key is
        strictly earlier, is dispatched first. Returns ``None`` — the
        ticket's terminal outcome comes from a later dispatch.
        """
        now = self.clock.now()
        ticket.session = session
        ticket.attempt = attempt
        ticket.preemptions += 1
        decision, ticket.decision = ticket.decision, None
        self.sink.emit(
            QueryPreempted(
                request_id=ticket.request.request_id,
                challenger_id=(
                    decision.challenger_id if decision is not None else ""
                ),
                stages_completed=session.plan.stages_completed,
                residual_budget=max(ticket.deadline - now, 0.0),
                clock=now,
            )
        )
        heapq.heappush(queue, ticket)
        return None

    def _dispatch(
        self,
        ticket: _Ticket,
        queue: list[_Ticket],
        arrivals: list[QueryRequest],
        finish: Callable[[RequestOutcome], None],
    ) -> RequestOutcome | None:
        request = ticket.request
        now = self.clock.now()
        if ticket.session is not None:
            # A parked run: admission, RequestStarted, and the budget
            # question were all settled at first dispatch. Resume always —
            # even with the deadline past, the executor finalizes the
            # banked estimate instead of discarding paid-for work.
            queue_wait = ticket.queue_wait
            started = ticket.started_at
            budget = ticket.budget
        else:
            queue_wait = now - ticket.arrival
            budget = ticket.deadline - now
            if budget <= 0 or (
                self.policy.enforce_at_dispatch and budget < ticket.min_cost
            ):
                outcome = (
                    Outcome.SHED
                    if self.policy.enforce_at_dispatch
                    else Outcome.MISSED
                )
                return self._finish_unrun(
                    request,
                    outcome,
                    f"budget exhausted in queue: {budget:.3f}s left of "
                    f"{request.quota:g}s quota after {queue_wait:.3f}s wait",
                    queue_wait=queue_wait,
                    admitted=True,
                )
            self.sink.emit(
                RequestStarted(
                    request_id=request.request_id,
                    queue_wait=queue_wait,
                    budget=budget,
                    clock=now,
                )
            )
            started = now
            ticket.queue_wait = queue_wait
            ticket.started_at = started
            ticket.budget = budget
        checkpoint = (
            self._checkpoint_hook(ticket, queue, arrivals, finish)
            if self.preempt
            else None
        )
        result = None
        failure: str | None = None
        attempt = ticket.attempt
        while True:
            session = None
            if ticket.session is not None:
                session, ticket.session = ticket.session, None
                self.sink.emit(
                    QueryResumed(
                        request_id=request.request_id,
                        stages_completed=session.plan.stages_completed,
                        residual_budget=max(
                            ticket.deadline - self.clock.now(), 0.0
                        ),
                        preemptions=ticket.preemptions,
                        clock=self.clock.now(),
                    )
                )
            else:
                remaining = ticket.deadline - self.clock.now()
                attempt_quota = min(max(remaining, 0.0), budget)
                if attempt_quota <= 0:
                    break
            result = None
            failure = None
            transient = False
            try:
                if session is not None:
                    out = session.resume(checkpoint=checkpoint)
                else:
                    session = self.database.open_session(
                        request.expr,
                        quota=attempt_quota,
                        strategy=self.strategy_factory(),
                        stopping=HardDeadline(),
                        measure_overspend=False,
                        aggregate=request.aggregate,
                        cost_model=self._cost_model,
                        seed=self._retry_seed(request.seed, attempt),
                        clock=self.clock,
                        sink=self.sink if self.trace_queries else None,
                        **self._session_overrides(),
                    )
                    out = session.run_preemptible(checkpoint=checkpoint)
                if out is None:
                    # The checkpoint accepted a preemption: park and hand
                    # the server to the earlier-deadline challenger.
                    return self._park(ticket, session, attempt, queue)
                result = out
            except StorageError as exc:
                # A fault that escaped salvage (no injector armed, or a real
                # storage failure) is worth one deterministic re-execution.
                failure = f"{type(exc).__name__}: {exc}"
                transient = True
            except Exception as exc:  # the scheduler never raises to the caller
                failure = f"{type(exc).__name__}: {exc}"
            if result is not None:
                if result.estimate is not None:
                    break
                # A run that produced nothing *because faults ate it* is
                # transient; an undisturbed empty run is a genuine miss.
                transient = result.faulted
            if not transient or attempt >= self.max_fault_retries:
                break
            remaining = ticket.deadline - self.clock.now()
            backoff = min(
                self.retry_backoff * (attempt + 1), max(remaining, 0.0)
            )
            if remaining - backoff <= 0:
                # The backoff would eat everything that is left: no retry
                # could run afterwards, so charging it (and emitting a
                # RequestRetried that promises an attempt) would be pure
                # waste. Terminal classification proceeds from this
                # attempt's evidence.
                break
            attempt += 1
            self.sink.emit(
                RequestRetried(
                    request_id=request.request_id,
                    attempt=attempt,
                    reason=(
                        failure
                        if failure is not None
                        else f"{len(result.faults)} fault(s), no estimate"
                    ),
                    backoff_seconds=backoff,
                    clock=self.clock.now(),
                )
            )
            if backoff > 0:
                self.clock.advance(backoff)
        finished = self.clock.now()
        if failure is not None:
            # Persistent failure: same zero-sampling fallback the faulted
            # branch below gets — a crash-eaten run and a fault-eaten run
            # deserve the same degraded answer when coverage exists.
            fallback, source = self._zero_sampling_estimate(request)
            if fallback is not None:
                outcome = RequestOutcome(
                    request=request,
                    outcome=Outcome.DEGRADED,
                    reason=(
                        f"execution failed ({failure}); "
                        f"zero-sampling {source} answer"
                    ),
                    admitted=True,
                    queue_wait=queue_wait,
                    started_at=started,
                    finished_at=finished,
                    estimate=fallback,
                )
            else:
                outcome = RequestOutcome(
                    request=request,
                    outcome=Outcome.MISSED,
                    reason=f"execution failed: {failure}",
                    admitted=True,
                    queue_wait=queue_wait,
                    started_at=started,
                    finished_at=finished,
                )
        elif result is None or result.estimate is None:
            fallback = source = None
            if result is not None and result.faulted:
                fallback, source = self._zero_sampling_estimate(request)
            if fallback is not None:
                outcome = RequestOutcome(
                    request=request,
                    outcome=Outcome.DEGRADED,
                    reason=(
                        f"faults defeated {attempt + 1} attempt(s); "
                        f"zero-sampling {source} answer"
                    ),
                    admitted=True,
                    queue_wait=queue_wait,
                    started_at=started,
                    finished_at=finished,
                    result=result,
                    estimate=fallback,
                )
            else:
                termination = (
                    result.termination if result is not None else "unrun"
                )
                outcome = RequestOutcome(
                    request=request,
                    outcome=Outcome.MISSED,
                    reason=(
                        "no stage completed within the remaining budget "
                        f"({budget:.3f}s; termination: {termination})"
                    ),
                    admitted=True,
                    queue_wait=queue_wait,
                    started_at=started,
                    finished_at=finished,
                    result=result,
                )
        else:
            outcome = RequestOutcome(
                request=request,
                outcome=Outcome.ANSWERED,
                reason=(
                    f"{result.stages} stages, {result.blocks} blocks within "
                    f"budget {budget:.3f}s (termination: {result.termination})"
                ),
                admitted=True,
                queue_wait=queue_wait,
                started_at=started,
                finished_at=finished,
                result=result,
            )
        self._completed_event(outcome)
        return outcome

    @staticmethod
    def _retry_seed(seed: int | None, attempt: int) -> int | None:
        """Deterministic per-attempt seed: replayable, but not a verbatim
        re-run (a retry with the identical stream would hit the identical
        injected fault)."""
        if seed is None or attempt == 0:
            return seed
        return (seed + 0x9E3779B1 * attempt) & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # Terminal bookkeeping
    # ------------------------------------------------------------------
    def _finish_unrun(
        self,
        request: QueryRequest,
        outcome: Outcome,
        reason: str,
        queue_wait: float,
        admitted: bool = False,
    ) -> RequestOutcome:
        terminal = RequestOutcome(
            request=request,
            outcome=outcome,
            reason=reason,
            admitted=admitted,
            queue_wait=queue_wait,
            finished_at=self.clock.now() if admitted else None,
        )
        self._completed_event(terminal)
        return terminal

    def _completed_event(self, outcome: RequestOutcome) -> None:
        self.sink.emit(
            RequestCompleted(
                request_id=outcome.request.request_id,
                outcome=outcome.outcome.value,
                reason=outcome.reason,
                queue_wait=outcome.queue_wait,
                lateness=outcome.lateness,
                relative_ci_halfwidth=outcome.relative_ci_halfwidth,
                clock=self.clock.now(),
            )
        )
