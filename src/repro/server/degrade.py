"""Zero-sampling degraded answers — synopsis-backed, then prestored.

When a request cannot afford even one sampling stage, the server can still
answer it *instantly* instead of failing. Two sources exist, in precedence
order:

1. **Answer synopses** (:func:`synopsis_degraded_estimate`): if the
   synopsis catalog retains a completed run of the *same query shape over
   the same data sizes*, its recorded estimate is returned with the
   confidence interval derived from the recorded sample variance — an
   honest interval earned by real past sampling, usually far tighter than
   any made-up width.
2. **Prestored statistics** (:func:`degraded_estimate`): the
   prestored-selectivity machinery (:mod:`repro.statistics.prestored` —
   Figure 3.2's "prestored" implementation decision) prices the query's
   output fraction from analyzed histograms, and multiplying by the
   point-space size gives a COUNT guess with zero I/O inside the quota.
   The price of paying nothing is precision: the answer carries a
   deliberately wide confidence interval (``relative_halfwidth`` of the
   estimate, 100% by default) so downstream consumers cannot mistake it
   for a sampled estimate. SUM adds the histogram attribute mean
   (``COUNT × mean``); AVG is the mean itself.

Queries neither source covers return ``None`` and the scheduler records
the distinct ``UNCOVERED`` outcome.
"""

from __future__ import annotations

import math

from repro.core.database import Database
from repro.estimation.aggregates import COUNT, AggregateSpec
from repro.estimation.estimate import Estimate, normal_quantile
from repro.observability.trace import NULL_SINK, NullSink, TraceSink
from repro.relational.expression import Expression
from repro.statistics.prestored import SelectivityHinter
from repro.synopses.catalog import relation_fingerprint
from repro.synopses.events import SynopsisHit

DEGRADED_RELATIVE_HALFWIDTH = 1.0
"""Default relative 95% CI half-width attached to degraded answers."""


def _point_space(database: Database, expr: Expression) -> int:
    """Cross-product cardinality of the expression's base relations."""
    return math.prod(
        database.catalog.get(name).tuple_count
        for name in expr.base_relations()
    )


def _attribute_mean(
    database: Database, expr: Expression, attribute: str
) -> float | None:
    """Histogram mean of ``attribute``, resolvable only over one relation."""
    bases = set(expr.base_relations())
    carriers = [
        name
        for name in bases
        if name in database.statistics
        and database.statistics[name].has(attribute)
    ]
    if len(carriers) != 1:
        return None
    return database.statistics[carriers[0]].histogram(attribute).mean()


def synopsis_degraded_estimate(
    database: Database,
    expr: Expression,
    aggregate: AggregateSpec = COUNT,
    sink: TraceSink | None = None,
) -> Estimate | None:
    """A zero-sampling estimate from the synopsis catalog, or ``None``.

    Covers exactly the queries the catalog holds an answer synopsis for:
    the same structural hash, aggregate, and base-relation sizes as a
    completed earlier run (mutations since then dropped the entry, so a hit
    is never stale). The returned estimate carries the recorded run's value
    and sample variance verbatim — the interval a consumer computes from it
    is the one that run actually earned.
    """
    fingerprint = relation_fingerprint(database.catalog, expr.base_relations())
    entry = database.synopses.answer(
        expr.structural_hash(), aggregate, fingerprint
    )
    if entry is None:
        return None
    resolved = sink if sink is not None else NULL_SINK
    if not isinstance(resolved, NullSink):
        resolved.emit(
            SynopsisHit(
                scope="degraded_answer",
                key=expr.structural_hash()[:16],
                relations=",".join(sorted(set(expr.base_relations()))),
                prior_points=float(entry.sample_points),
                prior_mean=entry.value,
                runs=entry.runs,
            )
        )
    return entry.estimate()


def degraded_estimate(
    database: Database,
    expr: Expression,
    aggregate: AggregateSpec = COUNT,
    relative_halfwidth: float = DEGRADED_RELATIVE_HALFWIDTH,
    confidence: float = 0.95,
) -> Estimate | None:
    """A zero-sampling estimate of ``aggregate`` over ``expr``, or ``None``.

    Requires :meth:`Database.analyze` to have been run on the involved
    relations. The returned estimate's variance is sized so that its
    ``confidence``-level interval half-width equals ``relative_halfwidth``
    of the value — wide by construction, honest about knowing little.
    """
    hinter = SelectivityHinter(database.statistics, database.catalog)
    missing = [
        name
        for name in set(expr.base_relations())
        if name not in database.statistics
    ]
    if missing:
        return None
    hint = hinter.hint(expr)
    if hint is None:
        return None
    count = hint * _point_space(database, expr)

    if aggregate.kind == "count":
        value = count
    else:
        mean = _attribute_mean(database, expr, aggregate.attribute)
        if mean is None:
            return None
        value = count * mean if aggregate.kind == "sum" else mean

    z = normal_quantile(0.5 + confidence / 2.0)
    # Half-width relative to the value; a floor of 1.0 keeps zero-valued
    # answers from claiming a zero-width (i.e. exact) interval.
    halfwidth = relative_halfwidth * max(abs(value), 1.0)
    return Estimate(value=value, variance=(halfwidth / z) ** 2)
