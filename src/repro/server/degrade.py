"""Zero-sampling degraded answers from prestored statistics.

When a request cannot afford even one sampling stage, the server can still
answer it *instantly* instead of failing: the prestored-selectivity
machinery (:mod:`repro.statistics.prestored` — Figure 3.2's "prestored"
implementation decision) prices the query's output fraction from analyzed
histograms, and multiplying by the point-space size gives a COUNT guess
with zero I/O inside the quota. The price of paying nothing is precision:
the answer carries a deliberately wide confidence interval
(``relative_halfwidth`` of the estimate, 100% by default) so downstream
consumers cannot mistake it for a sampled estimate.

SUM adds the histogram attribute mean (``COUNT × mean``); AVG is the mean
itself. Queries the statistics cannot cover — un-analyzed relations,
intersections, attribute-to-attribute predicates — return ``None`` and the
policy falls back to rejection, with that stated as the reason.
"""

from __future__ import annotations

import math

from repro.core.database import Database
from repro.estimation.aggregates import COUNT, AggregateSpec
from repro.estimation.estimate import Estimate, normal_quantile
from repro.relational.expression import Expression
from repro.statistics.prestored import SelectivityHinter

DEGRADED_RELATIVE_HALFWIDTH = 1.0
"""Default relative 95% CI half-width attached to degraded answers."""


def _point_space(database: Database, expr: Expression) -> int:
    """Cross-product cardinality of the expression's base relations."""
    return math.prod(
        database.catalog.get(name).tuple_count
        for name in expr.base_relations()
    )


def _attribute_mean(
    database: Database, expr: Expression, attribute: str
) -> float | None:
    """Histogram mean of ``attribute``, resolvable only over one relation."""
    bases = set(expr.base_relations())
    carriers = [
        name
        for name in bases
        if name in database.statistics
        and database.statistics[name].has(attribute)
    ]
    if len(carriers) != 1:
        return None
    return database.statistics[carriers[0]].histogram(attribute).mean()


def degraded_estimate(
    database: Database,
    expr: Expression,
    aggregate: AggregateSpec = COUNT,
    relative_halfwidth: float = DEGRADED_RELATIVE_HALFWIDTH,
    confidence: float = 0.95,
) -> Estimate | None:
    """A zero-sampling estimate of ``aggregate`` over ``expr``, or ``None``.

    Requires :meth:`Database.analyze` to have been run on the involved
    relations. The returned estimate's variance is sized so that its
    ``confidence``-level interval half-width equals ``relative_halfwidth``
    of the value — wide by construction, honest about knowing little.
    """
    hinter = SelectivityHinter(database.statistics, database.catalog)
    missing = [
        name
        for name in set(expr.base_relations())
        if name not in database.statistics
    ]
    if missing:
        return None
    hint = hinter.hint(expr)
    if hint is None:
        return None
    count = hint * _point_space(database, expr)

    if aggregate.kind == "count":
        value = count
    else:
        mean = _attribute_mean(database, expr, aggregate.attribute)
        if mean is None:
            return None
        value = count * mean if aggregate.kind == "sum" else mean

    z = normal_quantile(0.5 + confidence / 2.0)
    # Half-width relative to the value; a floor of 1.0 keeps zero-valued
    # answers from claiming a zero-width (i.e. exact) interval.
    halfwidth = relative_halfwidth * max(abs(value), 1.0)
    return Estimate(value=value, variance=(halfwidth / z) ** 2)
