"""Workload drivers — request streams over the paper's relations.

Two classic arrival disciplines feed :class:`~repro.server.QueryServer`:

* **Open loop** (:func:`open_loop_requests`): a Poisson process of
  independent requests. Arrival rate is set relative to the server's
  service capacity, so ``overload=2.0`` means work arrives twice as fast
  as it can be served — the regime where admission control earns its keep.
* **Closed loop** (:func:`run_closed_loop`): ``N`` clients that each wait
  for their previous answer, think, and submit again — the multiuser
  database shape from the paper's Section 1 motivation.

Queries are drawn from a mix over the paper's Section 5 relations (scaled
down): selections with randomized thresholds by default, with optional
intersection heavy-hitters stirred in to vary per-request cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.database import Database
from repro.relational.expression import Expression, intersect, rel, select
from repro.relational.predicate import cmp
from repro.server.request import QueryRequest
from repro.server.scheduler import QueryServer
from repro.workloads.generators import (
    intersection_relations,
    paper_schema,
)

QueryFactory = Callable[[np.random.Generator], Expression]


def demo_database(
    seed: int = 0,
    tuples: int = 2_000,
    analyze: bool = True,
) -> Database:
    """A serving-layer database: two paper-style relations, analyzed.

    ``r1`` and ``r2`` share ``tuples // 2`` common tuples (so intersections
    have non-trivial answers); :meth:`Database.analyze` is run so degraded
    answers and prestored hints are available out of the box.
    """
    db = Database(seed=seed)
    rng = np.random.default_rng(seed)
    r1, r2 = intersection_relations(
        rng, tuples=tuples, common_tuples=tuples // 2
    )
    db.create_relation("r1", paper_schema(), r1)
    db.create_relation("r2", paper_schema(), r2)
    if analyze:
        db.analyze()
    return db


def selection_mix(
    tuples: int = 2_000, intersect_fraction: float = 0.0
) -> QueryFactory:
    """Random-threshold selections over ``r1``, optionally mixed with
    ``r1 ∩ r2`` heavy requests (``intersect_fraction`` of draws)."""

    def make(rng: np.random.Generator) -> Expression:
        if intersect_fraction > 0 and rng.random() < intersect_fraction:
            return intersect(rel("r1"), rel("r2"))
        threshold = int(rng.integers(tuples // 10, tuples))
        return select(rel("r1"), cmp("a", "<", threshold))

    return make


def open_loop_requests(
    count: int,
    quota: float,
    overload: float = 1.0,
    make_query: QueryFactory | None = None,
    tuples: int = 2_000,
    seed: int = 0,
    client_id: str = "open",
    priority: int = 0,
) -> list[QueryRequest]:
    """A Poisson arrival stream of ``count`` requests.

    Service capacity is one request per ``quota`` seconds (a
    time-constrained query consumes its budget), so the mean interarrival
    is ``quota / overload``: ``overload > 1`` queues work faster than the
    server drains it.
    """
    if count <= 0:
        raise ValueError(f"count must be positive: {count}")
    if overload <= 0:
        raise ValueError(f"overload must be positive: {overload}")
    rng = np.random.default_rng(seed)
    make = make_query if make_query is not None else selection_mix(tuples)
    mean_interarrival = quota / overload
    clock = 0.0
    requests = []
    for index in range(count):
        clock += float(rng.exponential(mean_interarrival))
        requests.append(
            QueryRequest(
                expr=make(rng),
                quota=quota,
                client_id=client_id,
                priority=priority,
                arrival=clock,
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return requests


@dataclass
class ClosedLoopClient:
    """One think-submit-wait client of the closed-loop driver."""

    client_id: str
    quota: float
    think_time: float
    make_query: QueryFactory
    requests_left: int
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def next_request(self, not_before: float) -> QueryRequest | None:
        if self.requests_left <= 0:
            return None
        self.requests_left -= 1
        return QueryRequest(
            expr=self.make_query(self.rng),
            quota=self.quota,
            client_id=self.client_id,
            arrival=not_before + self.think_time,
            seed=int(self.rng.integers(0, 2**31)),
        )


def run_closed_loop(
    server: QueryServer,
    clients: Sequence[ClosedLoopClient],
) -> list:
    """Drive ``server`` with closed-loop clients until all are done.

    Each client keeps exactly one request in flight: its next submission
    happens ``think_time`` after its previous outcome, whatever that
    outcome was (rejected clients re-think and retry with a fresh query,
    modelling an interactive analyst).
    """
    by_id = {client.client_id: client for client in clients}
    initial = [
        request
        for client in clients
        if (request := client.next_request(0.0)) is not None
    ]

    def on_complete(outcome) -> QueryRequest | None:
        client = by_id.get(outcome.request.client_id)
        if client is None:
            return None
        return client.next_request(server.clock.now())

    return server.process(initial, on_complete=on_complete)
