"""Admission control — is this request feasible inside its quota?

The test is the paper's own machinery pointed at a new question. For one
query, Figure 3.4 bisection asks "what fraction fits the remaining time?";
for a *stream* of queries, the server asks the inverse: "does the smallest
possible useful stage fit the time this request will have left once it
reaches the head of the queue?" Both are priced by the same calibrated
adaptive cost model (Section 4), so admission gets sharper as the server
executes queries and the model refits its coefficients.

:func:`minimum_stage_cost` prices the cheapest non-trivial stage — stage
overhead plus ``QCOST`` at the smallest fraction that draws one new block —
using the plan's initial selectivities (prestored hints when available,
Figure 3.3's maximum otherwise). A request whose projected budget at
dispatch cannot cover even that is infeasible: running it would burn server
time to return nothing.

What to *do* with an infeasible request is policy:

* :class:`RejectInfeasible` — turn it away at arrival (the client can retry
  with a bigger quota);
* :class:`DegradeInfeasible` — answer it instantly from prestored
  statistics with a wide confidence interval (:mod:`repro.server.degrade`);
* :class:`AdmitAll` — no admission control at all: every request is queued
  and dispatched regardless of feasibility. This is the measured baseline
  the overload benchmark compares against, not a recommended mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.session import QuerySession
from repro.planner.explain import predicted_stage_costs
from repro.server.request import QueryRequest


class AdmissionAction(enum.Enum):
    """What the policy decided to do with an arriving request."""

    ADMIT = "admit"
    DEGRADE = "degrade"
    REJECT = "reject"


@dataclass(frozen=True)
class FeasibilityReport:
    """The numbers an admission policy rules on.

    ``budget_now`` is the time between now and the request's absolute
    deadline; ``projected_wait`` is the expected queue delay in front of it
    (work with earlier effective deadlines, accumulated in dispatch order
    so each ticket's spend is priced at the clock position its turn would
    start); their difference is the budget the request will actually have
    when dispatched, to be compared against ``min_stage_cost`` — the
    cost-model price of the cheapest useful stage. Under preemption
    (``REPRO_PREEMPT``) the same projection covers mid-flight arrivals: a
    request that would preempt the runner excludes the runner's residual
    spend from its wait, while one that would queue behind it includes it.
    """

    min_stage_cost: float
    projected_wait: float
    budget_now: float

    @property
    def budget_at_start(self) -> float:
        return self.budget_now - self.projected_wait

    def feasible(self, safety_margin: float = 1.0) -> bool:
        """Can the request afford at least one stage, with margin to spare?"""
        return self.budget_at_start >= safety_margin * self.min_stage_cost


@dataclass(frozen=True)
class AdmissionDecision:
    """The policy's ruling plus the reason handed back to the client."""

    action: AdmissionAction
    reason: str


def minimum_stage_cost(
    session: QuerySession, shard_parallelism: float = 1.0
) -> float:
    """Price of the cheapest useful stage of ``session``'s plan (seconds).

    Stage overhead plus ``QCOST`` at the minimum feasible fraction (one new
    block on the smallest relation), under the plan's initial selectivities.
    Evaluated on a probe session that is never run, so pricing charges
    nothing to any clock. The pricing routine is shared with
    ``Database.explain`` (:func:`repro.planner.explain.
    predicted_stage_costs`), and the probe plan is built exactly like the
    dispatch plan — optimizer included — so admission rules on the plan
    that will actually execute.

    ``shard_parallelism > 1`` discounts the *scan* portion of the price
    for partitioned relations: a relation split into K shards read by W
    workers overlaps its block I/O up to ``min(W, K)``-way, so the wall
    clock a dispatch slot actually occupies shrinks even though the
    *charged* simulated cost is invariant (invariant 10). The discount
    applies only to scans over relations that really have more than one
    shard; operator compute and stage overhead are priced undiscounted.
    """
    costs = predicted_stage_costs(session.plan)
    if shard_parallelism <= 1.0:
        return costs.total
    shard_counts = {
        scan.relation.name: len(getattr(scan.relation, "shards", ()) or ())
        for scan in session.plan.scans
    }
    discount = 0.0
    for node in costs.nodes:
        if not (node.label.startswith("scan(") and node.label.endswith(")")):
            continue
        shards = shard_counts.get(node.label[len("scan(") : -1], 0)
        if shards > 1:
            overlap = min(shard_parallelism, float(shards))
            discount += node.seconds - node.seconds / overlap
    return costs.total - discount


class AdmissionPolicy:
    """Base policy: rule on a request given its feasibility report.

    ``enforce_at_dispatch`` additionally applies the feasibility floor when
    the request reaches the head of the queue (budgets shrink while
    waiting); policies that model "no admission control" turn it off so the
    scheduler faithfully burns time on doomed work, as an uncontrolled
    server would.
    """

    enforce_at_dispatch: bool = True

    def decide(
        self, request: QueryRequest, feasibility: FeasibilityReport
    ) -> AdmissionDecision:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class RejectInfeasible(AdmissionPolicy):
    """Admit feasible requests; reject the rest at the door.

    ``safety_margin`` scales the feasibility floor: the budget at projected
    dispatch must cover ``safety_margin ×`` the minimum stage cost. Values
    above 1 absorb cost-model optimism and execution jitter at the price of
    rejecting marginal requests.
    """

    safety_margin: float = 1.5

    def decide(
        self, request: QueryRequest, feasibility: FeasibilityReport
    ) -> AdmissionDecision:
        if feasibility.feasible(self.safety_margin):
            return AdmissionDecision(
                AdmissionAction.ADMIT,
                f"budget {feasibility.budget_at_start:.3f}s covers "
                f"minimum stage {feasibility.min_stage_cost:.3f}s",
            )
        return AdmissionDecision(
            AdmissionAction.REJECT,
            f"infeasible: budget at dispatch "
            f"{feasibility.budget_at_start:.3f}s < "
            f"{self.safety_margin:g}× minimum stage cost "
            f"{feasibility.min_stage_cost:.3f}s",
        )

    def describe(self) -> str:
        return f"RejectInfeasible(margin={self.safety_margin:g})"


@dataclass
class DegradeInfeasible(AdmissionPolicy):
    """Admit feasible requests; answer the rest without sampling.

    The zero-sampling fallback (:mod:`repro.server.degrade`) returns a wide
    confidence interval instantly instead of failing — the serving-layer
    analogue of the paper's observation that prestored selectivities suit
    fixed query mixes: they are free at run time. Requests the statistics
    cannot cover are rejected with that reason.
    """

    safety_margin: float = 1.5

    def decide(
        self, request: QueryRequest, feasibility: FeasibilityReport
    ) -> AdmissionDecision:
        if feasibility.feasible(self.safety_margin):
            return AdmissionDecision(
                AdmissionAction.ADMIT,
                f"budget {feasibility.budget_at_start:.3f}s covers "
                f"minimum stage {feasibility.min_stage_cost:.3f}s",
            )
        return AdmissionDecision(
            AdmissionAction.DEGRADE,
            f"infeasible within quota {request.quota:g}s; answering "
            "without sampling",
        )

    def describe(self) -> str:
        return f"DegradeInfeasible(margin={self.safety_margin:g})"


class AdmitAll(AdmissionPolicy):
    """No admission control — the overload benchmark's 'off' arm."""

    enforce_at_dispatch = False

    def decide(
        self, request: QueryRequest, feasibility: FeasibilityReport
    ) -> AdmissionDecision:
        return AdmissionDecision(
            AdmissionAction.ADMIT, "admission control disabled"
        )
