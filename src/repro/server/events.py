"""Typed trace events of the serving layer.

Every scheduling decision the server takes is emitted through the existing
observability layer (:mod:`repro.observability`), so a server run is
replayable and auditable the same way a single query run is: the metrics
sink (:mod:`repro.server.metrics`) is just one consumer; a
:class:`~repro.observability.JsonlSink` tee'd next to it captures the whole
request stream for offline analysis, and :func:`~repro.observability.trace.
event_from_dict` rebuilds these events because they are registered with
:func:`~repro.observability.register_event_type`.

The lifecycle of one request reads as an event sequence::

    request_arrived → admission_decided → [request_started]
        → [request_retried …] → request_completed

``request_started`` only appears for requests that were admitted and
actually dispatched to a :class:`~repro.core.session.QuerySession`;
rejected, degraded, and shed requests jump straight to their
``request_completed`` terminal event (with the outcome naming why).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.observability.trace import TraceEvent, register_event_type


@register_event_type
@dataclass(frozen=True)
class RequestArrived(TraceEvent):
    """A deadline-bearing request entered the server."""

    kind: ClassVar[str] = "request_arrived"
    request_id: str = ""
    client_id: str = ""
    quota: float = 0.0
    deadline: float = 0.0
    priority: int = 0
    clock: float = 0.0


@register_event_type
@dataclass(frozen=True)
class AdmissionDecided(TraceEvent):
    """The admission controller ruled on a request (Figure 3.4 priced it)."""

    kind: ClassVar[str] = "admission_decided"
    request_id: str = ""
    action: str = ""
    reason: str = ""
    min_stage_cost: float = 0.0
    projected_wait: float = 0.0
    budget_at_start: float = 0.0
    clock: float = 0.0


@register_event_type
@dataclass(frozen=True)
class RequestStarted(TraceEvent):
    """An admitted request left the run queue and began executing."""

    kind: ClassVar[str] = "request_started"
    request_id: str = ""
    queue_wait: float = 0.0
    budget: float = 0.0
    clock: float = 0.0


@register_event_type
@dataclass(frozen=True)
class RequestRetried(TraceEvent):
    """A dispatched request hit a transient fault and was re-executed.

    Only injected/storage faults trigger retries (see :mod:`repro.faults`);
    the backoff is charged to the request's own remaining budget.
    """

    kind: ClassVar[str] = "request_retried"
    request_id: str = ""
    attempt: int = 0
    reason: str = ""
    backoff_seconds: float = 0.0
    clock: float = 0.0


@register_event_type
@dataclass(frozen=True)
class QueryPreempted(TraceEvent):
    """A running request was checkpointed at a stage boundary and parked.

    Fired only with the ``REPRO_PREEMPT`` switch on, when a
    strictly-earlier-deadline admitted request is waiting and the runner
    still has slack. The suspended run keeps its seed material and charged
    costs; resuming it is bit-identical to never having stopped.
    """

    kind: ClassVar[str] = "query_preempted"
    request_id: str = ""
    challenger_id: str = ""
    stages_completed: int = 0
    residual_budget: float = 0.0
    clock: float = 0.0


@register_event_type
@dataclass(frozen=True)
class QueryResumed(TraceEvent):
    """A parked request won the queue again and continued from its
    checkpoint, against its original absolute deadline."""

    kind: ClassVar[str] = "query_resumed"
    request_id: str = ""
    stages_completed: int = 0
    residual_budget: float = 0.0
    preemptions: int = 0
    clock: float = 0.0


@register_event_type
@dataclass(frozen=True)
class RequestCompleted(TraceEvent):
    """A request reached its terminal outcome (one per request, always)."""

    kind: ClassVar[str] = "request_completed"
    request_id: str = ""
    outcome: str = ""
    reason: str = ""
    queue_wait: float = 0.0
    lateness: float = 0.0
    relative_ci_halfwidth: float | None = None
    clock: float = 0.0
