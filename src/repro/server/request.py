"""Requests and typed outcomes of the serving layer.

The unit of work a client submits is a :class:`QueryRequest`: a relational
expression with an aggregate, an *offered quota* (how many seconds of
processing the client pays for, which fixes the absolute deadline at
``arrival + quota``), and a priority. The server answers every request with
a :class:`RequestOutcome` whose :class:`Outcome` is one of six terminal
states — the contract is total: no request is ever silently dropped and no
scheduling failure ever surfaces as an exception to the submitting client.

=============  ==========================================================
outcome        meaning
=============  ==========================================================
``ANSWERED``   ran to its deadline; a sampling estimate was produced
``DEGRADED``   infeasible to sample in time; answered instantly from a
               synopsis or prestored statistics with an honest (wide)
               confidence interval
``REJECTED``   turned away at admission (no capacity, or infeasible)
``UNCOVERED``  the policy chose degradation, but neither the synopsis
               catalog nor prestored statistics cover the query — no
               instant answer exists, so the request was turned away
               with the coverage gap named
``SHED``       admitted but dropped from the queue under overload before
               useful work could start
``MISSED``     dispatched but produced no estimate inside the deadline
=============  ==========================================================
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.result import QueryResult
from repro.errors import TimeControlError
from repro.estimation.aggregates import COUNT, AggregateSpec
from repro.estimation.estimate import Estimate
from repro.relational.expression import Expression


class Outcome(enum.Enum):
    """Terminal state of one served request."""

    ANSWERED = "answered"
    DEGRADED = "degraded"
    REJECTED = "rejected"
    UNCOVERED = "uncovered"
    SHED = "shed"
    MISSED = "missed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_request_counter = itertools.count(1)


def _next_request_id(client_id: str) -> str:
    return f"{client_id}/{next(_request_counter)}"


@dataclass(frozen=True)
class QueryRequest:
    """One deadline-bearing aggregate query from one client.

    ``quota`` is the offered processing budget in (simulated) seconds; the
    absolute deadline is ``arrival + quota`` and queue wait is charged
    against it — a request that waits has less time left to sample.
    ``priority`` breaks deadline ties and tiers the run queue (lower value
    = more urgent, 0 default). ``seed`` pins the session's RNG stream for
    replayable runs; ``None`` derives one from the database's master seed.
    """

    expr: Expression
    quota: float
    client_id: str = "client"
    aggregate: AggregateSpec = COUNT
    priority: int = 0
    arrival: float = 0.0
    seed: int | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.quota <= 0:
            raise TimeControlError(
                f"request quota must be positive: {self.quota}"
            )
        if self.arrival < 0:
            raise TimeControlError(
                f"request arrival cannot be negative: {self.arrival}"
            )
        if not self.request_id:
            object.__setattr__(
                self, "request_id", _next_request_id(self.client_id)
            )

    @property
    def deadline(self) -> float:
        """Absolute completion deadline on the server clock."""
        return self.arrival + self.quota


@dataclass
class RequestOutcome:
    """What the server did with one request, and why.

    Every field needed to audit the decision is here: the admission verdict,
    how long the request waited, when it ran, what it cost, and the answer
    (a full :class:`~repro.core.result.QueryResult` for sampled runs, a
    wide-interval :class:`~repro.estimation.estimate.Estimate` for degraded
    ones).
    """

    request: QueryRequest
    outcome: Outcome
    reason: str
    admitted: bool = False
    queue_wait: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    result: QueryResult | None = None
    estimate: Estimate | None = field(default=None)

    def __post_init__(self) -> None:
        if self.estimate is None and self.result is not None:
            self.estimate = self.result.estimate

    @property
    def answered(self) -> bool:
        """True when the client got a usable estimate (sampled or degraded)."""
        return self.outcome in (Outcome.ANSWERED, Outcome.DEGRADED)

    @property
    def lateness(self) -> float:
        """Seconds past the deadline at completion (0 = on time / never ran)."""
        if self.finished_at is None:
            return 0.0
        return max(self.finished_at - self.request.deadline, 0.0)

    @property
    def relative_ci_halfwidth(self) -> float | None:
        """Achieved 95% CI half-width relative to the estimate, if any."""
        if self.estimate is None:
            return None
        return self.estimate.relative_error_bound(0.95)

    def summary(self) -> str:
        """One human-readable line per request."""
        head = (
            f"{self.request.request_id} [{self.outcome.value.upper()}] "
            f"quota {self.request.quota:g}s, wait {self.queue_wait:.3f}s"
        )
        if self.estimate is not None:
            lo, hi = self.estimate.confidence_interval(0.95)
            head += (
                f", ≈{self.estimate.value:.1f} (95% CI [{lo:.1f}, {hi:.1f}])"
            )
        return f"{head} — {self.reason}"
