"""Sorted-run kernels — the vectorized heart of the staged binary operators.

Full-fulfillment stage ``s`` must combine the stage's new sorted run with
every run produced at stages ``1..s-1`` (Figures 4.4/4.6). The reference
path loops over the old runs and merges each pair tuple-at-a-time, so the
Python work per stage grows with the stage count. Here each operand side
keeps **one consolidated sorted run** (:class:`SortedRun`): the new run is
merged in once per stage, and all ``new x old`` pairs are answered by a
single ``np.searchsorted`` probe against the consolidated keys, with a
per-row *stage tag* recovering the per-old-run outputs the cost formulas
(and the trace) are defined over.

Everything here is uncharged by design: callers replay the reference
path's exact charge sequence (see
:meth:`repro.engine.nodes._StagedBinary.advance`), so charged simulated
time is bit-identical while wall-clock time stops scaling with stages.

Key comparisons go through lexicographic integer *codes*:
:func:`encode_columns` ranks every distinct key across all participating
column sets at once, so one ``searchsorted`` on an ``int64`` array replaces
tuple-at-a-time comparisons while preserving Python's tuple ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.storage.block import Row

# Mixed-radix code combination densifies before it could overflow int64.
_CODE_LIMIT = np.int64(1) << 60


def rows_array(rows: Sequence[Row]) -> np.ndarray:
    """Row tuples as a 1-D ``object`` array (C-speed gather/reorder)."""
    return np.fromiter(rows, dtype=object, count=len(rows))


def stable_lexsort(key_cols: Sequence[np.ndarray]) -> np.ndarray:
    """Indices sorting rows lexicographically by ``key_cols``, stably.

    Equivalent to ``sorted(rows, key=tuple_of_positions)``: successive
    stable argsorts from the least-significant key column, which also
    works for ``object``-dtype columns (Python comparisons).
    """
    if not key_cols:
        return np.arange(0)
    order = np.arange(len(key_cols[0]))
    for col in reversed(list(key_cols)):
        order = order[np.argsort(col[order], kind="stable")]
    return order


def _densify(codes_per_set: list[np.ndarray]) -> tuple[list[np.ndarray], int]:
    """Re-rank codes into ``0..k-1`` order-preservingly; returns cardinality."""
    concat = np.concatenate(codes_per_set) if codes_per_set else np.empty(0)
    uniques, inverse = np.unique(concat, return_inverse=True)
    out, start = [], 0
    for codes in codes_per_set:
        out.append(inverse[start : start + len(codes)].astype(np.int64))
        start += len(codes)
    return out, len(uniques)


def encode_columns(
    column_sets: Sequence[Sequence[np.ndarray]],
) -> list[np.ndarray]:
    """Lexicographic ``int64`` key codes, consistent across column sets.

    ``column_sets`` holds one sequence of parallel key-column arrays per
    participant (e.g. new-left, new-right, consolidated-left,
    consolidated-right). The returned code arrays order exactly like the
    original key tuples: ``code_a < code_b`` iff ``key_a < key_b``, across
    *all* sets, so they can be merged, searched, and compared directly.
    """
    n_positions = len(column_sets[0])
    codes = [np.zeros(len(s[0]) if s else 0, dtype=np.int64) for s in column_sets]
    cardinality = 1
    for position in range(n_positions):
        concat = np.concatenate(
            [np.asarray(s[position]) for s in column_sets]
        )
        uniques, inverse = np.unique(concat, return_inverse=True)
        radix = max(len(uniques), 1)
        if cardinality > 1 and cardinality * radix >= _CODE_LIMIT:
            codes, cardinality = _densify(codes)
        start = 0
        for i, s in enumerate(column_sets):
            n = len(s[position])
            codes[i] = codes[i] * radix + inverse[start : start + n].astype(
                np.int64
            )
            start += n
        cardinality *= radix
    return codes


def match_pairs(
    a_codes: np.ndarray, b_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (i, j) with ``a_codes[i] == b_codes[j]``, enumerated a-major.

    ``b_codes`` must be sorted ascending. Pairs come out in the order the
    reference sorted-merge emits them: ascending ``i``, and ascending ``j``
    within each ``i`` — which, when ``a_codes`` is sorted too, is exactly
    (key ascending, left row, right row).
    """
    lo = np.searchsorted(b_codes, a_codes, side="left")
    hi = np.searchsorted(b_codes, a_codes, side="right")
    counts = hi - lo
    total = int(counts.sum())
    l_idx = np.repeat(np.arange(len(a_codes)), counts)
    if total == 0:
        return l_idx, np.empty(0, dtype=np.int64)
    starts = np.repeat(lo, counts)
    group_starts = np.repeat(np.cumsum(counts) - counts, counts)
    r_idx = starts + (np.arange(total) - group_starts)
    return l_idx, r_idx


def first_occurrence(sorted_codes: np.ndarray) -> np.ndarray:
    """Positions of the first row of each distinct code (input sorted)."""
    n = len(sorted_codes)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    mask = np.empty(n, dtype=bool)
    mask[0] = True
    mask[1:] = sorted_codes[1:] != sorted_codes[:-1]
    return np.flatnonzero(mask)


@dataclass
class KeyedRows:
    """One sorted run ready for kernel merging: key codes + row objects."""

    codes: np.ndarray  # int64, ascending
    rows: np.ndarray  # object array of Row tuples, parallel to codes


class SortedRun:
    """One side's consolidated sorted run across all completed stages.

    Holds the union of every per-stage sorted run, globally sorted on the
    merge key, with a per-row *stage tag* and the append-order run lengths
    — enough to reconstruct any per-old-run merge output (and its charged
    cost features) without revisiting the runs individually.
    """

    __slots__ = ("key_cols", "rows", "stages", "lengths")

    def __init__(self) -> None:
        self.key_cols: list[np.ndarray] | None = None
        self.rows: np.ndarray = np.empty(0, dtype=object)
        self.stages: np.ndarray = np.empty(0, dtype=np.int64)
        self.lengths: list[tuple[int, int]] = []  # (stage, run length)

    def __len__(self) -> int:
        return len(self.rows)

    def snapshot(self) -> tuple:
        """Opaque rollback token (cheap: references, not copies).

        Safe because :meth:`merge_in` *replaces* ``key_cols``/``rows``/
        ``stages`` with fresh arrays rather than mutating them in place;
        only ``lengths`` is appended to, so it alone needs copying.
        """
        return (self.key_cols, self.rows, self.stages, list(self.lengths))

    def restore(self, token: tuple) -> None:
        """Roll back to a :meth:`snapshot` token."""
        self.key_cols, self.rows, self.stages, lengths = token
        self.lengths = list(lengths)

    def key_columns_or_empty(
        self, template: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Key columns, or empty arrays shaped like ``template`` pre-merge."""
        if self.key_cols is not None:
            return self.key_cols
        return [col[:0] for col in template]

    def merge_in(
        self,
        key_cols: Sequence[np.ndarray],
        rows: np.ndarray,
        stage: int,
    ) -> None:
        """Fold stage ``stage``'s sorted run into the consolidated run.

        Both the run and the new batch are key-sorted; a single stable
        argsort over joint codes merges them while preserving each side's
        internal (hence per-stage) order.
        """
        self.lengths.append((stage, len(rows)))
        tags = np.full(len(rows), stage, dtype=np.int64)
        if self.key_cols is None:
            self.key_cols = [np.asarray(c) for c in key_cols]
            self.rows = rows
            self.stages = tags
            return
        old_codes, new_codes = encode_columns([self.key_cols, list(key_cols)])
        order = np.argsort(
            np.concatenate([old_codes, new_codes]), kind="stable"
        )
        self.key_cols = [
            np.concatenate([old, new])[order]
            for old, new in zip(self.key_cols, key_cols)
        ]
        self.rows = np.concatenate([self.rows, rows])[order]
        self.stages = np.concatenate([self.stages, tags])[order]


def join_rows(
    left_rows: np.ndarray,
    right_rows: np.ndarray,
    l_idx: np.ndarray,
    r_idx: np.ndarray,
) -> list[Row]:
    """Materialize concatenated join tuples for the given index pairs."""
    return [
        left + right
        for left, right in zip(
            left_rows[l_idx].tolist(), right_rows[r_idx].tolist()
        )
    ]


def join_new_new(left: KeyedRows, right: KeyedRows) -> list[Row]:
    """The stage's new x new equi-join (reference: ``merge_join``)."""
    l_idx, r_idx = match_pairs(left.codes, right.codes)
    return join_rows(left.rows, right.rows, l_idx, r_idx)


def join_vs_run(
    new: KeyedRows,
    run: SortedRun,
    run_codes: np.ndarray,
    new_on_left: bool,
) -> list[list[Row]]:
    """New run joined against every old run, in one probe.

    Returns one output list per old run, in ``run.lengths`` (append)
    order, each identical — rows *and* row order — to the reference
    pairwise ``merge_join`` of the new run with that old run.
    """
    if new_on_left:
        l_idx, r_idx = match_pairs(new.codes, run_codes)
        tags = run.stages[r_idx]
    else:
        l_idx, r_idx = match_pairs(run_codes, new.codes)
        tags = run.stages[l_idx]
    order = np.argsort(tags, kind="stable")
    l_idx, r_idx, tags = l_idx[order], r_idx[order], tags[order]
    outputs: list[list[Row]] = []
    for stage, _length in run.lengths:
        lo = np.searchsorted(tags, stage, side="left")
        hi = np.searchsorted(tags, stage, side="right")
        if new_on_left:
            outputs.append(
                join_rows(new.rows, run.rows, l_idx[lo:hi], r_idx[lo:hi])
            )
        else:
            outputs.append(
                join_rows(run.rows, new.rows, l_idx[lo:hi], r_idx[lo:hi])
            )
    return outputs


def intersect_new_new(left: KeyedRows, right: KeyedRows) -> list[Row]:
    """The stage's new x new set intersection (reference: ``merge_intersect``)."""
    left_first = first_occurrence(left.codes)
    distinct_left = left.codes[left_first]
    distinct_right = right.codes[first_occurrence(right.codes)]
    if len(distinct_right) == 0 or len(distinct_left) == 0:
        return []
    pos = np.searchsorted(distinct_right, distinct_left)
    pos_clipped = np.minimum(pos, len(distinct_right) - 1)
    found = (pos < len(distinct_right)) & (
        distinct_right[pos_clipped] == distinct_left
    )
    return left.rows[left_first[found]].tolist()


def intersect_vs_run(
    new: KeyedRows, run: SortedRun, run_codes: np.ndarray
) -> list[list[Row]]:
    """New run intersected with every old run, in one probe.

    Returns one output list per old run in append order; each is the
    ascending distinct common values, matching the reference pairwise
    ``merge_intersect`` output as a value sequence (representative row
    tuples are value-identical by definition of whole-row intersection).
    """
    new_first = first_occurrence(new.codes)
    distinct = new.codes[new_first]
    l_idx, r_idx = match_pairs(distinct, run_codes)
    tags = run.stages[r_idx]
    width = max(len(distinct), 1)
    combined = np.unique(tags * width + l_idx)
    tag_of = combined // width
    left_of = combined % width
    outputs: list[list[Row]] = []
    for stage, _length in run.lengths:
        lo = np.searchsorted(tag_of, stage, side="left")
        hi = np.searchsorted(tag_of, stage, side="right")
        outputs.append(new.rows[new_first[left_of[lo:hi]]].tolist())
    return outputs
