"""Column decoding — Python row tuples to typed NumPy arrays.

The storage layer hands the engine lists of Python tuples (the paper's
fixed-size records). The kernels work column-wise: each attribute becomes
one contiguous array whose dtype follows the attribute type (``int64`` for
INT, ``float64`` for FLOAT, unicode for STR). Integers too wide for
``int64`` fall back to ``object`` arrays, which keep exact Python
comparison semantics at reduced speed — correctness never depends on the
fast dtype being available.

:class:`ColumnBatch` is the lazy per-stage view a node attaches to its
output: columns materialize on first access and are cached, so a parent
that only needs the join-key columns never pays for the rest.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.catalog.schema import Schema
from repro.catalog.types import AttributeType
from repro.storage.block import Row


def column_array(values: Sequence, attr_type: AttributeType) -> np.ndarray:
    """One attribute's values as a typed array (see module docstring)."""
    if not len(values):
        if attr_type is AttributeType.INT:
            return np.empty(0, dtype=np.int64)
        if attr_type is AttributeType.FLOAT:
            return np.empty(0, dtype=np.float64)
        return np.empty(0, dtype="<U1")
    if attr_type is AttributeType.INT:
        try:
            return np.asarray(values, dtype=np.int64)
        except OverflowError:
            return np.asarray(values, dtype=object)
    if attr_type is AttributeType.FLOAT:
        return np.asarray(values, dtype=np.float64)
    return np.asarray(values)  # STR -> '<U…', code-point order == Python's


_MATRIX_DTYPES = {
    AttributeType.INT: np.int64,
    AttributeType.FLOAT: np.float64,
}


def _matrix_dtype(schema: Schema) -> "np.dtype | None":
    """The 2-D dtype for a uniform fast-dtype schema, else ``None``."""
    types = {a.type for a in schema.attributes}
    if len(types) == 1:
        return _MATRIX_DTYPES.get(next(iter(types)))
    return None


def columnize(rows: Sequence[Row], schema: Schema) -> list[np.ndarray]:
    """Decode ``rows`` into one array per attribute of ``schema``.

    Uniform all-INT / all-FLOAT schemas transpose through one 2-D NumPy
    conversion (a single C-level pass) instead of ``zip(*rows)``; the
    resulting columns are value-identical to :func:`column_array`'s. INT
    values too wide for ``int64`` make the matrix conversion overflow, and
    the per-column path below takes over with its exact ``object``-array
    fallback — correctness never depends on the fast path applying.
    """
    if not rows:
        return [column_array((), a.type) for a in schema.attributes]
    dtype = _matrix_dtype(schema)
    if dtype is not None:
        try:
            matrix = np.asarray(rows, dtype=dtype)
        except (OverflowError, TypeError, ValueError):
            matrix = None
        if matrix is not None and matrix.ndim == 2:
            return [
                np.ascontiguousarray(matrix[:, i])
                for i in range(len(schema.attributes))
            ]
    transposed = list(zip(*rows))
    return [
        column_array(values, attr.type)
        for values, attr in zip(transposed, schema.attributes)
    ]


class ColumnBatch:
    """Lazy columnar view over one stage's row list.

    Columns are decoded on first access and cached; ``rows`` stays the
    authoritative representation (the engine still passes Python tuples
    between nodes, so estimates and traces are untouched).
    """

    __slots__ = ("rows", "schema", "_cols")

    def __init__(self, rows: Sequence[Row], schema: Schema) -> None:
        self.rows = rows
        self.schema = schema
        self._cols: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, position: int) -> np.ndarray:
        """The array for attribute ``position`` (decoded once, cached)."""
        col = self._cols.get(position)
        if col is None:
            attr = self.schema.attributes[position]
            col = column_array([r[position] for r in self.rows], attr.type)
            self._cols[position] = col
        return col

    def key_columns(self, positions: Sequence[int]) -> list[np.ndarray]:
        """The arrays for the given attribute positions, in order."""
        return [self.column(p) for p in positions]
