"""Columnar kernels — bulk evaluation for the staged engine's hot paths.

The paper charges *simulated* time through the cost formulas of Section 4;
how fast the host Python process grinds through a stage is invisible to the
controller. This package exploits that separation: it provides NumPy-backed
bulk primitives (vectorized predicate masks, lexicographic sorts,
``searchsorted``-based merge-joins and intersections over one consolidated
sorted run per operand side) that the staged nodes use to *compute* each
stage, while every charged cost — block reads, comparisons, sort and merge
steps — is issued in exactly the sequence and amounts of the row-at-a-time
reference path. Estimates, trace events, and charged simulated times are
bit-identical with kernels on or off; only wall-clock time changes.

Switching the kernels off (``REPRO_KERNELS=0`` in the environment, or
``open_session(vectorized=False)``) routes execution through the original
row-at-a-time operators, which remain the reference implementation.
"""

from __future__ import annotations

from repro.core.switches import env_switch
from repro.kernels.cache import (
    CompiledPredicate,
    KernelCacheInfo,
    cached_sort_key,
    clear_kernel_cache,
    compiled_predicate,
    kernel_cache_info,
)
from repro.kernels.columns import ColumnBatch, column_array, columnize
from repro.kernels.runs import (
    KeyedRows,
    SortedRun,
    encode_columns,
    first_occurrence,
    match_pairs,
    stable_lexsort,
)

def kernels_enabled() -> bool:
    """Process-wide default for the vectorized kernels (env-controlled).

    ``REPRO_KERNELS=0`` (or ``false``/``off``/``no``) forces the
    row-at-a-time fallback; anything else — including the variable being
    unset — enables the kernels. Read at plan construction time, so tests
    can flip it per query. Resolution lives in
    :func:`repro.core.switches.env_switch`, shared with ``REPRO_OPTIMIZE``.
    """
    return env_switch("REPRO_KERNELS", default=True)


__all__ = [
    "ColumnBatch",
    "CompiledPredicate",
    "KernelCacheInfo",
    "KeyedRows",
    "SortedRun",
    "cached_sort_key",
    "clear_kernel_cache",
    "column_array",
    "columnize",
    "compiled_predicate",
    "encode_columns",
    "first_occurrence",
    "kernel_cache_info",
    "kernels_enabled",
    "match_pairs",
    "stable_lexsort",
]
